//! Integration and property tests for `netfence-faults` (vendored
//! proptest shim).
//!
//! * The empty `FaultPlan` is a perfect no-op: for every `DefenseKind` and
//!   both the Static and Shrew attacker strategies, a run with an
//!   explicitly empty plan reproduces the fault-free `Record`
//!   byte-for-byte — and so does a plan whose faults all land *after* the
//!   end of the run (the engine never applies them).
//! * No fault plan panics any defense: a randomized grid of
//!   (defense × fault kind × severity × seed) cells — random targets,
//!   multi-window plans — runs to completion on the dumbbell.
//! * Recovery: NetFence goodput re-converges to ≥ 90% of its pre-fault
//!   baseline after a single access-router reboot on the dumbbell, and the
//!   record's recovery metric reports the re-convergence.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Memoization ledger for a proptest: the shim replays 256 deterministic
/// cases over a much smaller input grid, so each distinct cell runs once.
type SeenCells<K> = OnceLock<Mutex<HashSet<K>>>;

use netfence::experiments::prelude::*;
use netfence::faults::FaultTarget;
use netfence::sim::time::{MILLI, SEC};
use proptest::proptest;

/// Host 0 of source AS 1 on the classic dumbbell (`src_host_addr(1, 0)`),
/// a legitimate user whenever `legit_per_as >= 1`.
const FIRST_USER: u32 = 0x0A00_0101;

fn tiny(seed: u64) -> Scale {
    Scale { src_ases: 2, hosts_per_as: 2, sim_time: 3 * SEC, seed }
}

fn base_spec(kind: DefenseKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec::dumbbell(tiny(seed))
        .named("faults-property")
        .defense(kind)
        .fair_share(100_000)
        .users(TrafficSpec::repeated_file(20_000, SEC))
        .attackers(TrafficSpec::cbr(500_000), AttackTarget::Colluders { ases: 1 })
        .sampled(SEC)
}

fn kind_of(index: u8) -> DefenseKind {
    DefenseKind::EVERY[index as usize % DefenseKind::EVERY.len()]
}

fn strategy_of(index: u8) -> AttackStrategy {
    if index.is_multiple_of(2) {
        AttackStrategy::static_cbr(500_000)
    } else {
        AttackStrategy::shrew_tuned(500_000)
    }
}

proptest! {
    /// Empty plan ≡ no plan, byte-for-byte, for every defense × strategy.
    /// A plan whose only window lands beyond the end of the run is equally
    /// invisible: the engine stops before applying it.
    #[test]
    fn empty_fault_plan_reproduces_the_legacy_record(
        kind_idx in 0u8..5,
        strat_idx in 0u8..2,
        seed in 0u64..3,
    ) {
        // Memoized: the shim replays 256 cases over 30 distinct inputs.
        static DONE: SeenCells<(u8, u8, u64)> = OnceLock::new();
        let done = DONE.get_or_init(|| Mutex::new(HashSet::new()));
        if !done.lock().unwrap().insert((kind_idx, strat_idx, seed)) {
            return;
        }
        let kind = kind_of(kind_idx);
        let spec = base_spec(kind, seed).adversary(strategy_of(strat_idx));
        let legacy = Runner::new(spec.clone()).run();

        let empty = Runner::new(spec.clone().fault_plan(FaultPlan::empty())).run();
        assert_eq!(legacy, empty, "{} empty-plan record diverged", kind.label());

        let mut late = FaultPlan::empty();
        late.router_reboot(FaultTarget::Random, 100 * SEC)
            .link_failure(FaultTarget::Random, 100 * SEC, 101 * SEC);
        let mut late = Runner::new(spec.fault_plan(late)).run();
        // Declared-window metadata is the one permitted difference: the
        // plan's windows are recorded even though the engine stops before
        // applying them. Everything behavioral must match byte-for-byte.
        assert_eq!(late.faults.len(), 2, "{} late plan lost its declared windows", kind.label());
        late.faults.clear();
        assert_eq!(legacy, late, "{} post-run faults leaked into the record", kind.label());
    }
}

/// A deterministic pseudo-random multi-window plan for the no-panic grid.
fn grid_plan(fault_idx: u8, severity: u8, seed: u64) -> FaultPlan {
    let mut p = FaultPlan::empty();
    let windows = 1 + (severity as usize);
    for w in 0..windows {
        let at = SEC + (w as u64) * SEC + (seed % 3) * 500 * MILLI;
        match (fault_idx as usize + w) % 5 {
            0 => {
                p.link_failure(FaultTarget::Random, at, at + SEC);
            }
            1 => {
                p.router_reboot(FaultTarget::Random, at);
            }
            2 => {
                p.key_desync(FaultTarget::Random, at);
            }
            3 => {
                let skew = if severity == 0 { 50 * MILLI as i64 } else { -(2 * SEC as i64) };
                p.clock_skew(FaultTarget::Random, skew, at, at + 2 * SEC);
            }
            _ => {
                p.memory_pressure(FaultTarget::Random, 1 + seed as usize * 100, at);
            }
        }
    }
    p
}

proptest! {
    /// No randomized fault plan panics any defense; every cell runs to
    /// completion and yields a well-formed record.
    #[test]
    fn no_fault_plan_panics_any_defense(
        kind_idx in 0u8..5,
        fault_idx in 0u8..5,
        severity in 0u8..2,
        seed in 0u64..2,
    ) {
        static DONE: SeenCells<(u8, u8, u8, u64)> = OnceLock::new();
        let done = DONE.get_or_init(|| Mutex::new(HashSet::new()));
        if !done.lock().unwrap().insert((kind_idx, fault_idx, severity, seed)) {
            return;
        }
        let scale = Scale { src_ases: 2, hosts_per_as: 2, sim_time: 5 * SEC, seed: seed + 1 };
        let spec = ScenarioSpec::dumbbell(scale)
            .named("faults-grid")
            .defense(kind_of(kind_idx))
            .key_ttl(2 * SEC)
            .fair_share(100_000)
            .users(TrafficSpec::cbr(50_000))
            .attackers(TrafficSpec::cbr(500_000), AttackTarget::Victim)
            .fault_plan(grid_plan(fault_idx, severity, seed))
            .sampled(SEC);
        let r = Runner::new(spec).run();
        assert_eq!(r.faults.len(), 1 + severity as usize);
        assert!(r.engine.events > 0);
    }
}

/// Per-window user goodput deltas of a record's samples.
fn window_deltas(r: &Record) -> Vec<u64> {
    r.samples
        .iter()
        .scan(0u64, |prev, s| {
            let d = s.user_bytes - *prev;
            *prev = s.user_bytes;
            Some(d)
        })
        .collect()
}

#[test]
fn netfence_reconverges_after_an_access_router_reboot() {
    // A defended dumbbell in steady state: demand-bounded users, a CBR
    // flood, NetFence with TTL'd keys riding the asynchronous control
    // plane. At 12 s the users' own access router reboots — AIMD
    // limiters, AS keys and held capability state all vanish. Recovery
    // must be closed-loop: peers re-announce keys on the TTL/2 cadence,
    // stale feedback re-bootstraps through the request channel, and user
    // goodput must return to >= 90% of its pre-fault level well before
    // the end of the run.
    let reboot_at = 12 * SEC;
    let mut plan = FaultPlan::empty();
    plan.router_reboot(FaultTarget::AccessRouterOf(FIRST_USER), reboot_at);
    let spec =
        ScenarioSpec::dumbbell(Scale { src_ases: 3, hosts_per_as: 3, sim_time: 30 * SEC, seed: 7 })
            .named("faults-reboot-reconvergence")
            .defense(DefenseKind::NetFence)
            .key_ttl(3 * SEC)
            .control(netfence::ctrl::config::CtrlConfig::ideal())
            .fair_share(100_000)
            .legit_per_as(1)
            .users(TrafficSpec::cbr(50_000))
            .user_start(StartSchedule::staggered(10, 100 * MILLI))
            .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Victim)
            .fault_plan(plan)
            .sampled(SEC);
    let r = Runner::new(spec).run();

    assert_eq!(r.faults.len(), 1);
    assert_eq!(r.faults[0].kind, "reboot");
    assert_eq!(r.faults[0].at, reboot_at);

    // The recovery metric must report a re-convergence within the run.
    let recovery = r
        .fault_recovery_secs(0)
        .expect("NetFence goodput must re-converge after the access-router reboot");
    assert!(recovery < 15.0, "recovery took {recovery} s, expected well under 15 s");

    // And independently of the metric's sustained-window rule: the last
    // 5 windows of the run must average >= 90% of the pre-fault level.
    let deltas = window_deltas(&r);
    let pre: Vec<u64> = deltas.iter().copied().take((reboot_at / SEC) as usize).collect();
    let baseline = pre.iter().rev().take(5).sum::<u64>() as f64 / 5.0;
    let tail = deltas.iter().rev().take(5).sum::<u64>() as f64 / 5.0;
    assert!(baseline > 0.0, "users were delivering before the reboot");
    assert!(
        tail >= 0.9 * baseline,
        "post-reboot goodput {tail} B/s never re-converged to 90% of {baseline} B/s"
    );

    assert!(r.availability().is_some());
    assert!(r.worst_fault_recovery_secs().is_some());
}

#[test]
fn fault_marks_flow_into_scenario_telemetry() {
    // The `fault` timeline series and the flight recorder's Fault marks
    // survive the whole spec → runner → dump pipeline.
    let mut plan = FaultPlan::empty();
    plan.link_failure(FaultTarget::Random, 2 * SEC, 3 * SEC);
    let spec = ScenarioSpec::dumbbell(tiny(7))
        .named("faults-telemetry")
        .defense(DefenseKind::Fq)
        .fault_plan(plan)
        .sampled(SEC)
        .traced(TelemetryConfig::full(0));
    let (r, dump) = Runner::new(spec).run_with_telemetry();
    assert_eq!(r.faults.len(), 1);
    let fault_rows: Vec<&str> =
        dump.timeline_jsonl.lines().filter(|l| l.contains("\"series\":\"fault\"")).collect();
    assert!(
        fault_rows.iter().any(|l| l.contains("link-down")),
        "no link-down fault mark in timeline: {fault_rows:?}"
    );
    assert!(
        fault_rows.iter().any(|l| l.contains("link-up")),
        "no link-up fault mark in timeline: {fault_rows:?}"
    );
    assert!(
        dump.trace_jsonl.lines().any(|l| l.contains("\"fault\"")),
        "no Fault hop marks in flight recorder"
    );
}

#[test]
fn key_desync_surfaces_as_invalid_feedback_then_heals() {
    // Rotating the access router's secret out from under held feedback
    // must surface as typed invalid-feedback demotions (stale stamps fail
    // MAC validation and fall back to the request channel), not as a
    // silent goodput dip — and the fresh stamps the request channel hands
    // out must heal the users afterwards. (Demoted packets travel at
    // request level 0, which the §4.2 limiter always passes, so the
    // faithful observable is the access router's typed demotion counter —
    // `DropCause::InvalidMac` fires only when a demoted packet also
    // exhausts request tokens.)
    let mut plan = FaultPlan::empty();
    plan.key_desync(FaultTarget::AccessRouterOf(FIRST_USER), 6 * SEC);
    let spec =
        ScenarioSpec::dumbbell(Scale { src_ases: 2, hosts_per_as: 2, sim_time: 16 * SEC, seed: 7 })
            .named("faults-key-desync")
            .defense(DefenseKind::NetFence)
            .fair_share(100_000)
            .users(TrafficSpec::cbr(50_000))
            .attackers(TrafficSpec::cbr(500_000), AttackTarget::Victim)
            .fault_plan(plan)
            .sampled(SEC);
    let baseline = Runner::new(spec.clone().fault_plan(FaultPlan::empty())).run();
    let desynced = Runner::new(spec).run();
    assert!(
        desynced.report.invalid_feedback > baseline.report.invalid_feedback,
        "key desync produced no additional typed invalid-feedback demotions \
         (baseline {}, desynced {})",
        baseline.report.invalid_feedback,
        desynced.report.invalid_feedback
    );
    // The rotation is a hiccup, not an outage: users re-converge.
    let recovery = desynced.fault_recovery_secs(0);
    assert!(recovery.is_some(), "user goodput never re-converged after the key rotation");
}
