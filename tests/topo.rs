//! Integration tests for the `netfence-topo` subsystem and the
//! AS-aggregated routing rewrite.
//!
//! * Property tests (vendored proptest shim): every generated `TopoSpec`
//!   yields a connected graph with unique link addresses, every host has an
//!   access router, and every sender→victim route crosses at least one
//!   designated bottleneck.
//! * Degenerate-case regression: the fig8/fig9 dumbbell and the fig10
//!   parking lot built through `TopoSpec` are byte-identical to the classic
//!   builders — networks *and* the `Record`s the `Runner` produces on them.
//! * Scale: a ≥ 50 K-host transit-stub network (including all routes)
//!   builds in well under the 5 s budget in release mode.

use std::time::Instant;

use netfence::experiments::fig8::fig8_spec;
use netfence::experiments::fig9::{fig9_spec, UserTraffic};
use netfence::experiments::prelude::*;
use netfence::sim::time::SEC;
use netfence::topo::{classic, BuiltTopo, MultiBottleneckSpec, TopoSpec, TransitStubSpec};
use proptest::proptest;

/// Walk the route from `src` to `dst`; returns the link indices, or None if
/// the walk does not reach `dst` within a generous hop bound.
fn route(built: &BuiltTopo, src: u32, dst: u32) -> Option<Vec<usize>> {
    let net = &built.net;
    let mut node = net.host_node(src);
    let mut hops = Vec::new();
    for _ in 0..128 {
        match net.next_hop(node, dst) {
            Some(l) => {
                hops.push(l);
                node = net.links[l].to;
            }
            None => return None,
        }
        if net.nodes[node.0].host_addr() == Some(dst) {
            return Some(hops);
        }
    }
    None
}

/// The shared invariants every generated topology must satisfy.
fn check_invariants(built: &BuiltTopo) {
    // Unique link addresses, all resolvable through the O(1) index.
    let mut addrs: Vec<_> = built.net.links.iter().map(|l| l.addr).collect();
    addrs.sort_unstable();
    addrs.dedup();
    assert_eq!(addrs.len(), built.net.links.len(), "duplicate link addresses");
    for (i, l) in built.net.links.iter().enumerate() {
        assert_eq!(built.net.link_by_addr(l.addr), Some(i));
    }
    // Every host has an access router, and it is an access-marked router.
    for host in built.net.hosts() {
        let r = built.net.access_router_of(host).expect("host without access router");
        assert!(built.net.nodes[r.0].host_addr().is_none(), "access router of {host:#x} is a host");
    }
    let bottleneck_links: Vec<usize> =
        built.bottlenecks.iter().map(|b| built.net.link_by_addr(b.addr).unwrap()).collect();
    for g in &built.groups {
        for h in g.senders() {
            // Connected: every sender reaches its victim and the victim
            // reaches it back.
            let path = route(built, h, g.victim)
                .unwrap_or_else(|| panic!("no route {h:#x} -> victim {:#x}", g.victim));
            assert!(route(built, g.victim, h).is_some(), "no reverse route to {h:#x}");
            // Every sender→victim route crosses a designated bottleneck.
            assert!(
                path.iter().any(|l| bottleneck_links.contains(l)),
                "route {h:#x} -> {:#x} misses every designated bottleneck",
                g.victim
            );
            // Colluding destinations are reachable too.
            for &c in &g.colluders {
                assert!(route(built, h, c).is_some(), "no route {h:#x} -> colluder {c:#x}");
            }
        }
    }
}

proptest! {
    /// Transit-stub graphs satisfy the structural invariants across the
    /// whole parameter space: core shape, Zipf skew, multihoming, colluder
    /// count and seed.
    #[test]
    fn transit_stub_invariants(
        transit_ases in 1usize..4,
        routers_per_transit in 1usize..4,
        stub_ases in 1usize..8,
        extra_hosts in 0usize..40,
        legit_per_stub in 1usize..3,
        zipf_milli_alpha in 0u32..1800,
        multihoming in 1usize..4,
        colluder_ases in 0usize..3,
        seed in 0u64..,
    ) {
        let spec = TransitStubSpec {
            transit_ases,
            routers_per_transit,
            stub_ases,
            hosts: stub_ases + extra_hosts,
            legit_per_stub,
            zipf_milli_alpha,
            multihoming,
            bottleneck_bps: 5_000_000,
            stub_bps: 0,
            core_bps: 0,
            colluder_ases,
            seed,
        };
        let built = TopoSpec::TransitStub(spec).build();
        proptest::prop_assert_eq!(built.senders(), stub_ases + extra_hosts);
        proptest::prop_assert_eq!(built.source_ases.len(), stub_ases);
        check_invariants(&built);
    }

    /// Multi-bottleneck meshes satisfy the invariants, and the local /
    /// branch groups cross exactly one designated bottleneck while the
    /// long group crosses every chain link.
    #[test]
    fn multi_bottleneck_invariants(
        bottlenecks in 1usize..5,
        branches in 0usize..4,
        hosts_per_group in 1usize..6,
        bps in 1_000_000u64..10_000_000,
    ) {
        let spec = MultiBottleneckSpec {
            bottlenecks,
            branches,
            hosts_per_group,
            legit_per_group: 1,
            bottleneck_bps: bps,
        };
        let built = TopoSpec::MultiBottleneck(spec).build();
        proptest::prop_assert_eq!(built.groups.len(), 1 + bottlenecks + branches);
        check_invariants(&built);
        // The long group crosses all chain links; every other group crosses
        // exactly one designated bottleneck.
        let bneck_links: Vec<usize> =
            built.bottlenecks.iter().map(|b| built.net.link_by_addr(b.addr).unwrap()).collect();
        for (gi, g) in built.groups.iter().enumerate() {
            let path = route(&built, g.users[0], g.victim).unwrap();
            let crossed = path.iter().filter(|l| bneck_links.contains(l)).count();
            if gi == 0 {
                proptest::prop_assert_eq!(crossed, bottlenecks, "long group misses chain links");
            } else {
                proptest::prop_assert_eq!(crossed, 1, "group {} not isolated", g.label);
            }
        }
    }
}

/// The fig8 dumbbell built through `TopoSpec` is the classic builder's
/// network byte for byte, and the `Runner` produces byte-identical
/// `Record`s on both (the routing rewrite and the `BuiltTopo` unification
/// are behavior-preserving).
#[test]
fn fig8_dumbbell_via_topospec_matches_classic_byte_for_byte() {
    let scale = Scale { src_ases: 3, hosts_per_as: 4, sim_time: 20 * SEC, seed: 11 };
    let spec = fig8_spec(&scale, DefenseKind::NetFence, 100_000);
    let via_topospec = Runner::new(spec.clone()).run();

    // Rebuild the same dumbbell with the classic builder directly and run
    // the identical scenario on it.
    let classic_built = classic::build_dumbbell(
        scale.src_ases,
        scale.hosts_per_as,
        spec.legit_per_as,
        spec.resolved_bottleneck_bps(),
        0,
    )
    .into_built();
    let via_classic = Runner::new(spec).run_on(classic_built);
    assert_eq!(via_topospec, via_classic, "fig8 record diverged from the classic builder");
}

/// Same regression for the fig9 colluding scenario (extra colluder ASes on
/// the dumbbell) and the fig10 parking lot.
#[test]
fn fig9_and_parking_lot_via_topospec_match_classic_byte_for_byte() {
    let scale = Scale { src_ases: 3, hosts_per_as: 4, sim_time: 20 * SEC, seed: 11 };
    let spec = fig9_spec(&scale, DefenseKind::StopIt, UserTraffic::LongRunning, 100_000);
    let via_topospec = Runner::new(spec.clone()).run();
    let colluder_ases = match spec.attack_target {
        AttackTarget::Colluders { ases } => ases.max(1),
        AttackTarget::Victim => 0,
    };
    let classic_built = classic::build_dumbbell(
        scale.src_ases,
        scale.hosts_per_as,
        spec.legit_per_as,
        spec.resolved_bottleneck_bps(),
        colluder_ases,
    )
    .into_built();
    assert_eq!(via_topospec, Runner::new(spec).run_on(classic_built));

    let lot = ScenarioSpec::parking_lot(scale, 3_200_000, 1_600_000).defense(DefenseKind::Tva);
    let via_topospec = Runner::new(lot.clone()).run();
    let per_group = scale.hosts_per_as.max(4);
    let classic_built = classic::build_parking_lot(
        per_group,
        lot.legit_per_as.min(per_group),
        3_200_000,
        1_600_000,
    )
    .into_built();
    assert_eq!(via_topospec, Runner::new(lot).run_on(classic_built));
}

/// Every defense kind runs end to end on a small generated internet and on
/// a multi-bottleneck mesh (the CI guard that graph generation cannot rot).
#[test]
fn every_defense_kind_runs_on_generated_topologies() {
    let scale = Scale { src_ases: 4, hosts_per_as: 4, sim_time: 10 * SEC, seed: 5 };
    for kind in DefenseKind::EVERY {
        let spec = ScenarioSpec::internet(scale, InternetShape::default())
            .defense(kind)
            .fair_share(100_000)
            .users(TrafficSpec::repeated_file(20_000, 2 * SEC))
            .attackers(TrafficSpec::cbr(500_000), AttackTarget::Victim);
        let r = Runner::new(spec).run();
        assert_eq!(r.senders, 16, "{kind:?}");
        assert_eq!(r.links.len(), 1, "{kind:?}");
        let moved: u64 =
            r.users().chain(r.attackers()).map(|p| p.delivered_bytes + p.packets_sent).sum();
        assert!(moved > 0, "{kind:?}: nothing was simulated on the internet topology");

        let spec = ScenarioSpec::multi_bottleneck(scale, 2, 1, 2_000_000).defense(kind);
        let r = Runner::new(spec).run();
        assert_eq!(r.roles.len(), 8, "{kind:?}"); // A, C1, C2, B1 × users/attackers
        assert_eq!(r.links.len(), 3, "{kind:?}");
    }
}

/// Generated-topology runs are deterministic: same spec + seed, identical
/// `Record`s; a different seed reshuffles the Zipf/multihoming draws.
#[test]
fn internet_records_are_deterministic_and_seed_sensitive() {
    let scale = Scale { src_ases: 5, hosts_per_as: 4, sim_time: 10 * SEC, seed: 21 };
    let spec = || {
        ScenarioSpec::internet(scale, InternetShape::default())
            .defense(DefenseKind::NetFence)
            .fair_share(100_000)
            .attackers(TrafficSpec::cbr(400_000), AttackTarget::Colluders { ases: 2 })
    };
    let a = Runner::new(spec()).run();
    let b = Runner::new(spec()).run();
    assert_eq!(a, b, "two runs of the same generated internet diverged");
    let c = Runner::new(spec().seed(99)).run();
    assert_ne!(a, c, "the seed does not reach the topology generator");
}

/// The scalability acceptance bar: a ≥ 50 K-host transit-stub network —
/// including every route — builds in under 5 s in release mode (the old
/// per-host-BFS routing needed minutes at this size).
#[test]
fn transit_stub_50k_hosts_builds_fast() {
    let spec = TransitStubSpec {
        transit_ases: 3,
        routers_per_transit: 2,
        stub_ases: 500,
        hosts: 50_000,
        legit_per_stub: 1,
        zipf_milli_alpha: 900,
        multihoming: 2,
        bottleneck_bps: 2_500_000_000,
        stub_bps: 0,
        core_bps: 0,
        colluder_ases: 2,
        seed: 7,
    };
    // lint:allow(wall-clock): asserts the 50K-host build stays under the release-mode time bar; pure test-side measurement
    let start = Instant::now();
    let built = TopoSpec::TransitStub(spec).build();
    let elapsed = start.elapsed();
    assert_eq!(built.senders(), 50_000);
    assert!(built.net.nodes.len() > 50_000);
    // Spot-check routing without walking all 50 K hosts.
    let g = &built.groups[0];
    for &h in [g.users.first(), g.users.last(), g.attackers.first(), g.attackers.last()]
        .into_iter()
        .flatten()
    {
        assert!(route(&built, h, g.victim).is_some());
    }
    if !cfg!(debug_assertions) {
        assert!(elapsed.as_secs_f64() < 5.0, "50K-host build took {elapsed:?}");
    }
}
