//! End-to-end integration tests spanning the crypto, core, sim and systems
//! crates: small packet-level simulations asserting the paper's qualitative
//! claims.

use netfence_core::config::Config;
use netfence_sim::prelude::*;
use netfence_systems::NetFenceDefense;

const USER: u32 = 0x0a_00_00_01;
const ATTACKER: u32 = 0x0a_00_00_02;
const VICTIM: u32 = 0x0b_00_00_01;
const COLLUDER: u32 = 0x0b_00_00_02;

fn small_net(bottleneck: u64) -> (Network, LinkAddr) {
    let mut b = Network::builder();
    let ra = b.router(1, true);
    let rb = b.router(2, false);
    let rc = b.router(3, true);
    let (fwd, _) = b.duplex(ra, rb, bottleneck, 10 * MILLI, QueueKind::Red);
    b.duplex(rb, rc, bottleneck * 10, 10 * MILLI, QueueKind::Red);
    b.host(USER, 1, ra, 100_000_000, MILLI);
    b.host(ATTACKER, 1, ra, 100_000_000, MILLI);
    b.host(VICTIM, 3, rc, 100_000_000, MILLI);
    b.host(COLLUDER, 3, rc, 100_000_000, MILLI);
    let net = b.build();
    let addr = net.links[fwd].addr;
    (net, addr)
}

/// Without any defense, a 1 Mbps UDP flood starves a TCP user on a 1 Mbps
/// bottleneck; with NetFence the user gets a comparable share (the §3.4
/// guarantee).
#[test]
fn netfence_restores_fair_share_under_collusion() {
    let run = |defended: bool| -> (f64, f64) {
        let (net, _) = small_net(1_000_000);
        let deployment = if defended {
            NetFenceDefense::new(Config::short_timers()).deploy(&net, &DeploymentSpec::full())
        } else {
            Deployment::undefended(&net)
        };
        let mut sim = Simulator::new(
            net,
            deployment,
            SimConfig { end_time: 100 * SEC, ..Default::default() },
        );
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 1_000_000)));
        sim.run();
        (
            sim.progress(user).goodput_bps(0, 100 * SEC),
            sim.progress(attacker).goodput_bps(0, 100 * SEC),
        )
    };
    let (user_undef, attacker_undef) = run(false);
    let (user_def, attacker_def) = run(true);
    assert!(
        user_undef < 0.3 * attacker_undef,
        "undefended TCP should lose to the flood ({user_undef:.0} vs {attacker_undef:.0})"
    );
    assert!(
        user_def > 0.5 * attacker_def,
        "NetFence should restore a comparable share ({user_def:.0} vs {attacker_def:.0})"
    );
    assert!(user_def > 3.0 * user_undef, "NetFence should improve the user substantially");
}

/// Feedback-as-capability: a victim that withholds feedback reduces an
/// unwanted 1 Mbps flood to the strictly limited request channel.
#[test]
fn withholding_feedback_suppresses_unwanted_traffic() {
    let (net, _) = small_net(1_000_000);
    let mut defense = NetFenceDefense::new(Config::short_timers());
    defense.suppress_sender(VICTIM, ATTACKER);
    let deployment = defense.deploy(&net, &DeploymentSpec::full());
    let mut sim =
        Simulator::new(net, deployment, SimConfig { end_time: 30 * SEC, ..Default::default() });
    let attacker = sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
    sim.run();
    let delivered = sim.progress(attacker).goodput_bps(0, 30 * SEC);
    assert!(delivered < 150_000.0, "unwanted traffic not suppressed: {delivered:.0} bps");
}

/// The per-AS scalability claim: the bottleneck-side state NetFence keeps is
/// bounded by ASes and monitoring links, not by hosts; per-host state lives
/// only at access routers.
#[test]
fn bottleneck_state_is_not_per_host() {
    let (net, bottleneck) = small_net(1_000_000);
    let defense = NetFenceDefense::new(Config::short_timers());
    let deployment = defense.deploy(&net, &DeploymentSpec::full());
    let mut sim =
        Simulator::new(net, deployment, SimConfig { end_time: 60 * SEC, ..Default::default() });
    sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 1_000_000)));
    sim.add_flow(0, |id| {
        Box::new(TcpFlow::new(
            id,
            USER,
            VICTIM,
            TcpWorkload::LongRunning,
            TcpConfig::default(),
            SimRng::new(1),
        ))
    });
    sim.run();
    let report = sim.report();
    assert!(report.link_in_mon(bottleneck));
    // Access routers keep per-(sender, bottleneck) limiters; with 2 senders
    // and a handful of monitored links this is a small number that scales
    // with senders-behind-this-access-router, not with all hosts at the
    // bottleneck.
    assert!(report.rate_limiters >= 2);
    assert!(report.rate_limiters <= 16);
}
