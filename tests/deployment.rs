//! Partial-deployment regression tests for the per-node defense deployment
//! API.
//!
//! * Property tests (vendored proptest shim): for every `DefenseKind`, a
//!   `coverage = 1.0` deployment reproduces the default full-deployment
//!   `Record` byte-for-byte, and `coverage = 0.0` produces exactly the
//!   traffic outcome of `DefenseKind::None`.
//! * Sweep regression: legitimate goodput is monotonically non-decreasing
//!   in deploying-source-AS coverage for NetFence on the dumbbell (the
//!   adoption incentive of §5.3).

use netfence::experiments::deployment::run_deployment_cell;
use netfence::experiments::prelude::*;
use netfence::sim::time::SEC;
use proptest::proptest;

fn tiny(seed: u64) -> Scale {
    Scale { src_ases: 2, hosts_per_as: 2, sim_time: 3 * SEC, seed }
}

fn spec(kind: DefenseKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec::dumbbell(tiny(seed))
        .named("deployment-property")
        .defense(kind)
        .fair_share(100_000)
        .users(TrafficSpec::repeated_file(20_000, SEC))
        .attackers(TrafficSpec::cbr(500_000), AttackTarget::Colluders { ases: 1 })
}

fn kind_of(index: u8) -> DefenseKind {
    DefenseKind::EVERY[index as usize % DefenseKind::EVERY.len()]
}

proptest! {
    /// `coverage = 1.0` is the same deployment as the default (full):
    /// records must be byte-for-byte identical for every defense kind.
    #[test]
    fn full_coverage_reproduces_full_deployment(seed in 1u64..64, kind_idx in 0u8..5) {
        let kind = kind_of(kind_idx);
        let full = Runner::new(spec(kind, seed)).run();
        let covered = Runner::new(spec(kind, seed).coverage(1.0)).run();
        proptest::prop_assert_eq!(full, covered);
    }

    /// `coverage = 0.0` deploys nothing: the traffic outcome (per-flow
    /// series and link statistics) must equal an undefended run.
    #[test]
    fn zero_coverage_equals_no_defense(seed in 1u64..64, kind_idx in 0u8..5) {
        let kind = kind_of(kind_idx);
        let none = Runner::new(spec(DefenseKind::None, seed)).run();
        let covered = Runner::new(spec(kind, seed).coverage(0.0)).run();
        proptest::prop_assert_eq!(&none.roles, &covered.roles);
        proptest::prop_assert_eq!(&none.links, &covered.links);
        proptest::prop_assert_eq!(covered.report.deployed_ases, 0);
        proptest::prop_assert_eq!(covered.report.total_defense_drops(), 0);
    }
}

/// The deployment-sweep regression of the §5.3 adoption incentive:
/// legitimate goodput is monotonically non-decreasing in the fraction of
/// deploying source ASes for NetFence on the dumbbell.
#[test]
fn netfence_goodput_monotone_in_coverage() {
    let scale = Scale { src_ases: 4, hosts_per_as: 4, sim_time: 60 * SEC, seed: 7 };
    let mut last = f64::NEG_INFINITY;
    let mut series = Vec::new();
    for coverage in [0.0, 0.5, 1.0] {
        let p = run_deployment_cell(&scale, DefenseKind::NetFence, coverage);
        series.push((coverage, p.avg_user_bps));
        assert!(p.avg_user_bps >= last, "goodput dropped as coverage grew: {series:?}");
        last = p.avg_user_bps;
    }
    // Universal deployment must actually help: the paper's fair-share
    // guarantee holds, while a pure legacy network starves the users.
    let zero = series[0].1;
    let full = series[2].1;
    assert!(
        full > 2.0 * zero.max(1_000.0),
        "full deployment should clearly beat a legacy network: {series:?}"
    );
}

/// Partial coverage is visible in the typed report and in who gets
/// policed: the deployed half's attackers are rate limited while the
/// legacy half escapes (but is demoted at the deployed bottleneck).
#[test]
fn partial_deployment_polices_only_deployed_ases() {
    let scale = Scale { src_ases: 2, hosts_per_as: 2, sim_time: 60 * SEC, seed: 11 };
    let spec = ScenarioSpec::dumbbell(scale)
        .named("partial")
        .defense(DefenseKind::NetFence)
        .coverage(0.5)
        .fair_share(100_000)
        .users(TrafficSpec::LongRunningTcp)
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Colluders { ases: 1 });
    let r = Runner::new(spec).run();
    // One of two source ASes deploys, plus transit + victim + colluder.
    assert_eq!(r.report.total_ases - r.report.deployed_ases, 1);
    // Host shims exist only for the deployed AS's hosts plus destinations.
    assert!(r.report.host_shims < r.senders + 2, "legacy hosts must have no shims");
}
