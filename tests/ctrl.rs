//! Control-plane regression tests for `netfence-ctrl`.
//!
//! * Property test (vendored proptest shim): installing the asynchronous
//!   control-plane transport with the ideal configuration (zero latency,
//!   no loss, no outages) reproduces the legacy instant-reliable bus
//!   `Record` byte-for-byte for every `DefenseKind`.
//! * Property test: with a TTL on StopIt filters the flood leaks through
//!   each expiry until the leak itself triggers a refresh — rate limiting
//!   always resumes, and the leak windows are visible as extra attacker
//!   goodput over permanent filters.
//! * Sweep regression: NetFence's reaction time is monotonically
//!   non-decreasing in control-plane latency on the dumbbell (late key
//!   announcements delay the start of congestion policing).

use std::sync::OnceLock;

use netfence::ctrl::prelude::*;
use netfence::experiments::prelude::*;
use netfence::sim::prelude::*;
use netfence::sim::time::SEC;
use netfence::systems::stopit::StopItDefense;
use proptest::proptest;

fn tiny(seed: u64) -> Scale {
    Scale { src_ases: 2, hosts_per_as: 2, sim_time: 3 * SEC, seed }
}

fn spec(kind: DefenseKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec::dumbbell(tiny(seed))
        .named("ctrl-property")
        .defense(kind)
        .fair_share(100_000)
        .users(TrafficSpec::repeated_file(20_000, SEC))
        .attackers(TrafficSpec::cbr(500_000), AttackTarget::Colluders { ases: 1 })
}

fn kind_of(index: u8) -> DefenseKind {
    DefenseKind::EVERY[index as usize % DefenseKind::EVERY.len()]
}

// --- StopIt TTL harness (systems-level: `filter_ttl` is a defense knob,
// not a scenario field) ---------------------------------------------------

const ATTACKER: u32 = 2;
const VICTIM: u32 = 100;

fn stopit_net() -> Network {
    let mut b = Network::builder();
    let r1 = b.router(1, true);
    let r2 = b.router(2, false);
    let r3 = b.router(3, true);
    b.duplex(r1, r2, 1_000_000, 10 * MILLI, QueueKind::Red);
    b.duplex(r2, r3, 10_000_000, 10 * MILLI, QueueKind::Red);
    b.host(ATTACKER, 1, r1, 100_000_000, MILLI);
    b.host(VICTIM, 3, r3, 100_000_000, MILLI);
    b.build()
}

/// Run a 12 s flood at the auto-filtering victim with the given filter TTL
/// and return the defense report plus the attacker's delivered goodput.
fn stopit_flood(ttl: Nanos) -> (netfence::sim::deploy::DefenseReport, f64) {
    const END: Nanos = 12 * SEC;
    let mut d = StopItDefense::new();
    d.auto_filter(VICTIM);
    d.filter_ttl(ttl);
    let net = stopit_net();
    let deployment = d.deploy(&net, &DeploymentSpec::full());
    let mut sim =
        Simulator::new(net, deployment, SimConfig { end_time: END, ..Default::default() });
    let attacker = sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
    sim.run();
    (sim.report(), sim.progress(attacker).goodput_bps(0, END))
}

/// Attacker goodput under a permanent (ttl = 0) filter, computed once.
fn permanent_filter_bps() -> f64 {
    static BPS: OnceLock<f64> = OnceLock::new();
    *BPS.get_or_init(|| {
        let (report, bps) = stopit_flood(0);
        assert_eq!(report.rules_expired, 0, "permanent filters must never lapse");
        bps
    })
}

proptest! {
    /// The ideal control-plane configuration is the legacy bus: zero
    /// latency, no loss, no outage must reproduce the channel-free
    /// `Record` byte-for-byte for every defense kind.
    #[test]
    fn ideal_channel_reproduces_legacy_records(seed in 1u64..64, kind_idx in 0u8..5) {
        let kind = kind_of(kind_idx);
        let plain = Runner::new(spec(kind, seed)).run();
        let ideal = Runner::new(spec(kind, seed).control(CtrlConfig::ideal())).run();
        proptest::prop_assert_eq!(plain, ideal);
    }

    /// TTL'd StopIt filters lapse and rate limiting resumes: every expiry
    /// leaks traffic to the victim, the leak triggers a refresh, and the
    /// refreshed filter keeps the flood mostly blocked.
    #[test]
    fn ttl_filters_expire_then_rate_limiting_resumes(ttl_secs in 1u64..4) {
        let (report, ttl_bps) = stopit_flood(ttl_secs * SEC);
        // The filter lapsed at least twice in 12 s: each lapse shows up
        // either as a tick-purge expiry or as a leak-triggered refresh of
        // the expired-but-unpurged entry, depending on which wins the race.
        proptest::prop_assert!(
            report.rules_expired + report.rules_refreshed >= 2,
            "filters never lapsed: {report:?}"
        );
        proptest::prop_assert!(
            report.rules_installed + report.rules_refreshed >= 3,
            "leaks never refiled the filter: {report:?}"
        );
        // Leak windows delivered more than a permanent filter would…
        proptest::prop_assert!(ttl_bps > permanent_filter_bps(), "no leak windows: {ttl_bps:.0} bps");
        // …but the refreshed filter still blocks the bulk of the flood.
        proptest::prop_assert!(ttl_bps < 500_000.0, "flood effectively unblocked: {ttl_bps:.0} bps");
    }
}

/// One NetFence dumbbell run with users sampled every second, attackers
/// starting at 8 s, and the given one-way control-plane latency.
fn netfence_reaction(latency: Nanos) -> Option<f64> {
    let scale = Scale { src_ases: 2, hosts_per_as: 3, sim_time: 48 * SEC, seed: 5 };
    let spec = ScenarioSpec::dumbbell(scale)
        .named("ctrl-reaction-monotone")
        .defense(DefenseKind::NetFence)
        .fair_share(100_000)
        .legit_per_as(1)
        .users(TrafficSpec::cbr(50_000))
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Colluders { ases: 1 })
        .attacker_start(StartSchedule::delayed(8 * SEC))
        .control(CtrlConfig::ideal().latency(latency))
        .sampled(SEC);
    Runner::new(spec).run().reaction_secs()
}

/// Reaction time is monotonically non-decreasing in control-plane latency
/// for NetFence: key announcements arriving after the attack begins delay
/// congestion policing, so recovery can only move later.
#[test]
fn netfence_reaction_monotone_in_control_latency() {
    let mut last = 0.0_f64;
    let mut series = Vec::new();
    for latency in [0, 16 * SEC, 32 * SEC] {
        let reaction = netfence_reaction(latency).unwrap_or(f64::INFINITY);
        series.push((latency / SEC, reaction));
        assert!(reaction >= last, "reaction shrank as control latency grew: {series:?}");
        last = reaction;
    }
    // Latency past the attack start must actually cost reaction time: with
    // keys arriving 8 s after the attack, recovery is strictly later than
    // with an ideal control plane.
    assert!(series[2].1 > series[0].1, "control latency had no effect: {series:?}");
}
