//! Integration tests for the declarative `ScenarioSpec` → `Runner` →
//! `Record` experiment API: every defense kind runs end to end, records are
//! fully deterministic, and both topologies produce well-formed records.

use netfence::experiments::prelude::*;
use netfence::sim::time::SEC;

fn tiny() -> Scale {
    Scale { src_ases: 2, hosts_per_as: 3, sim_time: 20 * SEC, seed: 13 }
}

/// Regression: every `DefenseKind` builds through the unified `DefenseSpec`
/// factory and completes a run at tiny scale, in both attack scenarios.
#[test]
fn every_defense_kind_runs_both_attack_scenarios() {
    for kind in DefenseKind::EVERY {
        for target in [AttackTarget::Victim, AttackTarget::Colluders { ases: 2 }] {
            let spec = ScenarioSpec::dumbbell(tiny())
                .named("all-kinds")
                .defense(kind)
                .fair_share(100_000)
                .users(TrafficSpec::repeated_file(20_000, 2 * SEC))
                .attackers(TrafficSpec::cbr(500_000), target);
            let r = Runner::new(spec).run();
            assert_eq!(r.defense, kind);
            assert_eq!(r.senders, 6);
            let users = r.group("users").expect("users group");
            let attackers = r.group("attackers").expect("attackers group");
            assert_eq!(users.flows.len(), 2, "{kind:?}/{target:?}");
            assert_eq!(attackers.flows.len(), 4, "{kind:?}/{target:?}");
            // Attackers always have demand; with no defense at least they
            // must deliver something, so the run visibly simulated traffic.
            let moved: u64 =
                r.users().chain(r.attackers()).map(|p| p.delivered_bytes + p.packets_sent).sum();
            assert!(moved > 0, "{kind:?}/{target:?}: nothing was simulated");
        }
    }
}

/// Regression: every defense kind also runs on the parking-lot topology.
#[test]
fn every_defense_kind_runs_the_parking_lot() {
    let scale = Scale { src_ases: 1, hosts_per_as: 4, sim_time: 10 * SEC, seed: 5 };
    for kind in DefenseKind::EVERY {
        let spec = ScenarioSpec::parking_lot(scale, 3_200_000, 3_200_000).defense(kind);
        let r = Runner::new(spec).run();
        assert_eq!(r.roles.len(), 6, "{kind:?}");
        assert_eq!(r.links.len(), 2, "{kind:?}");
        assert!(r.fair_share_bps > 0.0);
    }
}

/// Same spec + same seed ⇒ byte-identical `Record` (per-flow series, link
/// stats and all derived metrics included).
#[test]
fn identical_specs_produce_identical_records() {
    let spec = || {
        ScenarioSpec::dumbbell(tiny())
            .named("determinism")
            .defense(DefenseKind::NetFence)
            .fair_share(100_000)
            .legit_fraction(0.34)
            .users(TrafficSpec::WebLike)
            .attackers(TrafficSpec::cbr(800_000), AttackTarget::Colluders { ases: 2 })
    };
    let a = Runner::new(spec()).run();
    let b = Runner::new(spec()).run();
    assert_eq!(a, b, "two runs of the same spec+seed diverged");

    // A different seed must actually change the stochastic parts (web-like
    // workload draws), proving the comparison above is not vacuous.
    let c = Runner::new(spec().seed(99)).run();
    assert_ne!(a, c, "changing the seed changed nothing — RNG not wired through");
}

/// The suppression override is honored: forcing suppression off in the
/// unwanted-traffic scenario lets the flood through at full blast.
#[test]
fn suppression_override_changes_the_outcome() {
    let base = || {
        ScenarioSpec::dumbbell(tiny())
            .defense(DefenseKind::StopIt)
            .fair_share(100_000)
            .attackers(TrafficSpec::cbr(500_000), AttackTarget::Victim)
    };
    let suppressed = Runner::new(base()).run(); // Auto ⇒ on for Victim target
    let open = Runner::new(
        base()
            .defense_spec(DefenseSpec::new(DefenseKind::StopIt).with_suppression(Suppression::Off)),
    )
    .run();
    assert!(
        open.avg_attacker_bps() > 2.0 * suppressed.avg_attacker_bps().max(1.0),
        "suppression off should let the flood through: {} vs {}",
        open.avg_attacker_bps(),
        suppressed.avg_attacker_bps()
    );
}
