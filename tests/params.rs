//! Integration test: the protocol parameters and header sizes the paper
//! states (Figure 3, Figure 6, §4.6) hold in the implementation.

use netfence_core::feedback::{Action, Feedback};
use netfence_core::header::NetFenceHeader;
use netfence_core::passport::PASSPORT_HEADER_LEN;
use netfence_core::prelude::*;

#[test]
fn figure3_parameters() {
    let cfg = Config::default();
    assert_eq!(cfg.ilim, 2 * SEC);
    assert_eq!(cfg.feedback_expiry, 4 * SEC);
    assert_eq!(cfg.additive_increase, 12_000);
    assert!((cfg.multiplicative_decrease - 0.1).abs() < 1e-12);
    assert!((cfg.loss_threshold - 0.02).abs() < 1e-12);
    assert!((cfg.request_channel_fraction - 0.05).abs() < 1e-12);
    assert!(cfg.validate().is_empty());
}

#[test]
fn header_sizes_match_section_6_1() {
    let mon =
        Feedback::Mon { link: LinkId(1), action: Action::Decr, ts: 9, token: 1, token_nop: None };
    let nop = Feedback::Nop { ts: 9, token: 1 };
    let worst = NetFenceHeader::regular(6, mon, Some(mon));
    assert_eq!(worst.encoded_len(), 28, "worst case header is 28 bytes");
    let common = NetFenceHeader::regular(6, nop, Some(nop));
    assert_eq!(common.nominal_len(), 20, "common case accounted as 20 bytes");
    // §4.6: 92-byte request packet = 40 TCP/IP + 28 NetFence + 24 Passport.
    assert_eq!(40 + worst.encoded_len() + PASSPORT_HEADER_LEN, 92);
}
