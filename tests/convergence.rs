//! Integration test: the fair-share guarantee of §3.4 / Appendix A.
//!
//! G legitimate and B malicious senders share one bottleneck; regardless of
//! strategy every sender with sufficient demand converges to at least
//! ν·ρ·C/(G+B). This exercises the AIMD control loop (netfence-core) end to
//! end in its fluid form and the full packet path in a small simulation.

use netfence_core::aimd::{jain_fairness_index, AimdState};
use netfence_core::config::Config;
use netfence_core::feedback::{Action, Feedback};
use netfence_core::types::{LinkId, SEC};
use netfence_experiments::fig13::{run_fig10_fluid, run_fig13};

#[test]
fn aimd_fluid_convergence_to_fair_share() {
    // 20 senders, one 2 Mbps link: fair share 100 kbps.
    let cfg = Config::default();
    let capacity = 2_000_000.0;
    let n = 20;
    let mut limiters: Vec<AimdState> =
        (0..n).map(|i| AimdState::with_rate(50_000 + 17_000 * (i as u64 % 7), 0)).collect();
    for step in 1..400u64 {
        let now = step * cfg.ilim;
        let total: f64 = limiters.iter().map(|l| l.rate() as f64).sum();
        let congested = total > capacity;
        for l in limiters.iter_mut() {
            if !congested {
                l.observe(&Feedback::Mon {
                    link: LinkId(1),
                    action: Action::Incr,
                    ts: (now / SEC) as u32,
                    token: 0,
                    token_nop: None,
                });
            }
            l.adjust(now, l.rate() as f64, &cfg);
        }
    }
    let rates: Vec<f64> = limiters.iter().map(|l| l.rate() as f64).collect();
    let fairness = jain_fairness_index(&rates);
    assert!(fairness > 0.95, "fairness index {fairness}");
    let rho = (1.0 - cfg.multiplicative_decrease).powi(3);
    let fair = capacity / n as f64;
    for r in &rates {
        assert!(*r >= rho * fair * 0.9, "rate {r} below the ν·ρ·C/N bound ({})", rho * fair);
    }
}

#[test]
fn multibottleneck_designs_restore_fair_share() {
    // Appendix B: the B.1 design reaches the fair share in all three
    // capacity cases and never does worse than the single-feedback core
    // design.
    let single = run_fig10_fluid(8, 300);
    let multi = run_fig13(8, 300);
    for (s, m) in single.iter().zip(&multi) {
        assert!(
            m.group_a_user_bps >= 0.7 * m.fair_share_bps,
            "{}: B.1 user below fair share",
            m.case.label
        );
        assert!(
            m.group_a_user_bps + 1.0 >= s.group_a_user_bps,
            "{}: B.1 worse than core",
            m.case.label
        );
    }
}
