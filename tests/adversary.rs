//! Property tests for `netfence-adversary` (vendored proptest shim).
//!
//! * `Static` is a zero-cost wrapper: for every `DefenseKind` and both
//!   legacy attack loads (CBR and on-off) the strategy agent reproduces the
//!   plain `TrafficSpec` attacker `Record` byte-for-byte.
//! * Every strategy is deterministic: the same spec run twice yields the
//!   identical `Record` (each agent draws only from its own seeded stream).
//! * Sanity bound: `Probe` explores before it commits, so it can never
//!   inflict meaningfully more damage than the strongest fixed strategy in
//!   the lineup.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use netfence::experiments::prelude::*;
use netfence::sim::time::{MILLI, SEC};
use proptest::proptest;

fn tiny(seed: u64) -> Scale {
    Scale { src_ases: 2, hosts_per_as: 2, sim_time: 3 * SEC, seed }
}

fn flood_spec(kind: DefenseKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec::dumbbell(tiny(seed))
        .named("adversary-property")
        .defense(kind)
        .fair_share(100_000)
        .users(TrafficSpec::repeated_file(20_000, SEC))
        .attackers(TrafficSpec::cbr(500_000), AttackTarget::Colluders { ases: 1 })
}

fn kind_of(index: u8) -> DefenseKind {
    DefenseKind::EVERY[index as usize % DefenseKind::EVERY.len()]
}

// --- Probe sanity-bound harness ------------------------------------------
//
// An 8 s dumbbell with a self-defending victim and one colluder AS: long
// enough for Probe (1 s epochs) to explore all its candidates and commit.
// Runs are memoized per (seed, strategy) — the shim replays 256
// deterministic cases over a handful of distinct inputs.

fn probe_arena(seed: u64, strategy: AttackStrategy) -> ScenarioSpec {
    let scale = Scale { src_ases: 2, hosts_per_as: 2, sim_time: 8 * SEC, seed };
    ScenarioSpec::dumbbell(scale)
        .named("adversary-probe-bound")
        .defense_spec(DefenseSpec::new(DefenseKind::NetFence).with_suppression(Suppression::On))
        .fair_share(100_000)
        .users(TrafficSpec::cbr(50_000))
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Colluders { ases: 1 })
        .adversary(strategy)
        .sampled(SEC)
}

fn arena_user_bps(seed: u64, strategy: AttackStrategy) -> f64 {
    static CACHE: OnceLock<Mutex<HashMap<(u64, &'static str), f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&bps) = cache.lock().unwrap().get(&(seed, strategy.label())) {
        return bps;
    }
    let bps = Runner::new(probe_arena(seed, strategy)).run().avg_user_bps();
    cache.lock().unwrap().insert((seed, strategy.label()), bps);
    bps
}

proptest! {
    /// `AttackStrategy::Static` wraps the legacy attacker loads without
    /// observable effect: same `Record`, byte-for-byte, for every defense.
    #[test]
    fn static_wrapper_reproduces_legacy_records(
        seed in 1u64..48,
        kind_idx in 0u8..5,
        load_idx in 0u8..2,
    ) {
        let kind = kind_of(kind_idx);
        let (traffic, strategy) = if load_idx == 0 {
            (TrafficSpec::cbr(500_000), AttackStrategy::static_cbr(500_000))
        } else {
            (
                TrafficSpec::on_off(500_000, 300 * MILLI, 700 * MILLI),
                AttackStrategy::static_on_off(500_000, 300 * MILLI, 700 * MILLI),
            )
        };
        let legacy = {
            let mut spec = flood_spec(kind, seed);
            spec.attackers.traffic = traffic;
            Runner::new(spec).run()
        };
        let wrapped = {
            let mut spec = flood_spec(kind, seed).adversary(strategy);
            spec.attackers.traffic = traffic;
            Runner::new(spec).run()
        };
        proptest::prop_assert_eq!(legacy, wrapped);
    }

    /// Every strategy is fully deterministic under every defense: agents
    /// draw randomness only from their own seeded substream, so re-running
    /// the identical spec reproduces the identical `Record`.
    #[test]
    fn every_strategy_is_deterministic(seed in 1u64..24, kind_idx in 0u8..5, strat_idx in 0u8..5) {
        let kind = kind_of(kind_idx);
        let strategy = AttackStrategy::lineup(750_000)[strat_idx as usize % 5];
        let first = Runner::new(flood_spec(kind, seed).adversary(strategy)).run();
        let again = Runner::new(flood_spec(kind, seed).adversary(strategy)).run();
        proptest::prop_assert_eq!(first, again);
    }

    /// `Probe` spends its first epochs exploring before committing to its
    /// strongest candidate, so it can never push legitimate users
    /// meaningfully below what the best *fixed* strategy already achieves.
    #[test]
    fn probe_never_beats_the_best_fixed_strategy(seed in 1u64..4) {
        let rate = 1_000_000;
        let best_fixed = AttackStrategy::lineup(rate)
            .into_iter()
            .filter(|s| s.label() != "probe")
            .map(|s| arena_user_bps(seed, s))
            .fold(f64::INFINITY, f64::min);
        let probe = arena_user_bps(seed, AttackStrategy::Probe { rate_bps: rate, epoch: SEC });
        proptest::prop_assert!(
            probe >= 0.7 * best_fixed - 1_000.0,
            "probe drove users to {probe:.0} bps, below the best fixed strategy's {best_fixed:.0}"
        );
    }
}
