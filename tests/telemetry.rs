//! Telemetry regression tests.
//!
//! * Property test (vendored proptest shim): enabling every observer —
//!   timeline probes plus the hash-sampled packet flight recorder —
//!   reproduces the observer-free `Record` byte-for-byte for every
//!   `DefenseKind`. The observers are pure: they may read the simulation,
//!   never steer it.
//! * Drop accounting: on a fig8-style unwanted-flood run the typed drop
//!   budget in the report sums exactly to the engine's total drop count,
//!   and every per-link budget sums to that link's drop counter.
//! * The telemetry dump itself is non-trivial when enabled: timeline rows
//!   appear on the sampling clock and the flight recorder captures hop
//!   events for the deterministically sampled packet ids.

use netfence::experiments::prelude::*;
use netfence::experiments::report::drop_budget_table;
use netfence::sim::time::{MILLI, SEC};
use proptest::proptest;

fn tiny(seed: u64) -> Scale {
    Scale { src_ases: 2, hosts_per_as: 2, sim_time: 3 * SEC, seed }
}

fn spec(kind: DefenseKind, seed: u64) -> ScenarioSpec {
    ScenarioSpec::dumbbell(tiny(seed))
        .named("telemetry-property")
        .defense(kind)
        .fair_share(100_000)
        .users(TrafficSpec::repeated_file(20_000, SEC))
        .attackers(TrafficSpec::cbr(500_000), AttackTarget::Victim)
        .sampled(250 * MILLI)
}

fn kind_of(index: u8) -> DefenseKind {
    DefenseKind::EVERY[index as usize % DefenseKind::EVERY.len()]
}

proptest! {
    /// Observers on vs off: byte-identical `Record` for every defense.
    #[test]
    fn observers_never_change_the_record(seed in 1u64..64, kind_idx in 0u8..5) {
        let kind = kind_of(kind_idx);
        let plain = Runner::new(spec(kind, seed)).run();
        let traced = Runner::new(spec(kind, seed).traced(TelemetryConfig::full(0))).run();
        proptest::prop_assert_eq!(plain, traced);
    }

    /// Observers stay pure against *adaptive* attackers too: for every
    /// `AttackStrategy` in the tournament lineup, full telemetry
    /// reproduces the observer-free `Record` byte-for-byte. Stateful
    /// strategies (probing, rolling targets) react to what the simulation
    /// does, so any observer that nudged the simulation would show up
    /// here as a diverging record.
    #[test]
    fn observers_never_change_the_record_under_any_strategy(seed in 1u64..32, kind_idx in 0u8..5, strat_idx in 0u8..5) {
        let lineup = AttackStrategy::lineup(750_000);
        let strategy = lineup[strat_idx as usize % lineup.len()];
        let kind = kind_of(kind_idx);
        let plain = Runner::new(spec(kind, seed).adversary(strategy)).run();
        let traced =
            Runner::new(spec(kind, seed).adversary(strategy).traced(TelemetryConfig::full(0))).run();
        proptest::prop_assert_eq!(plain, traced);
    }

    /// The report's drop budget always accounts for every drop the engine
    /// counted, regardless of defense or seed.
    #[test]
    fn drop_budget_accounts_for_every_drop(seed in 1u64..32, kind_idx in 0u8..5) {
        let record = Runner::new(spec(kind_of(kind_idx), seed)).run();
        let per_cause: u64 = DropCause::ALL
            .iter()
            .map(|&c| record.report.drop_budget.get(c))
            .sum();
        proptest::prop_assert_eq!(per_cause, record.report.drop_budget.total());
        proptest::prop_assert_eq!(record.report.drop_budget.total(), record.engine.drops);
    }
}

/// Fig8-style unwanted flood under NetFence: the printed drop-cause table
/// sums exactly to the run's total drops, and telemetry output is rich.
#[test]
fn fig8_style_drop_budget_sums_to_total_drops() {
    let spec =
        ScenarioSpec::dumbbell(Scale { src_ases: 2, hosts_per_as: 3, sim_time: 8 * SEC, seed: 5 })
            .named("fig8-style")
            .defense(DefenseKind::NetFence)
            .fair_share(100_000)
            .legit_per_as(1)
            .users(TrafficSpec::repeated_file(20_000, 2 * SEC))
            .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Victim)
            .sampled(500 * MILLI)
            .traced(TelemetryConfig::full(2));
    let (record, dump) = Runner::new(spec).run_with_telemetry();

    // The run actually dropped something (a 1 Mbps flood into a 400 kbps
    // bottleneck must) and every drop carries a typed cause.
    let budget = &record.report.drop_budget;
    assert!(budget.total() > 0, "flood produced no drops at all");
    assert_eq!(budget.total(), record.engine.drops, "budget must cover every engine drop");
    let per_cause: u64 = DropCause::ALL.iter().map(|&c| budget.get(c)).sum();
    assert_eq!(per_cause, budget.total(), "cause histogram must sum to the total");

    // The rendered table's total row agrees.
    let table = drop_budget_table(&record);
    let last = table.lines().last().unwrap();
    let cells: Vec<&str> = last.split_whitespace().collect();
    assert_eq!(cells[0], "total");
    assert_eq!(cells[1], budget.total().to_string(), "{table}");

    // Observers captured something: timeline rows on the sampling clock,
    // hop events for the sampled packet ids, both exported as JSONL.
    assert!(dump.timeline_rows > 0, "no timeline rows despite sampling");
    assert!(dump.trace_events > 0, "no flight-recorder events at shift 2");
    assert_eq!(dump.timeline_jsonl.lines().count(), dump.timeline_rows);
    assert_eq!(dump.trace_jsonl.lines().count(), dump.trace_events);
    for line in dump.timeline_jsonl.lines().take(5).chain(dump.trace_jsonl.lines().take(5)) {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
    }
}

/// Per-role drop attribution: the user/attacker budgets are consistent
/// with the run total (role flows can only account for role drops).
#[test]
fn role_drop_budgets_stay_within_the_total() {
    let record = Runner::new(spec(DefenseKind::NetFence, 9)).run();
    let mut roles = DropBudget::default();
    for r in &record.roles {
        roles.merge(&r.drops);
    }
    assert!(
        roles.total() <= record.report.drop_budget.total(),
        "role-attributed drops ({}) exceed the run total ({})",
        roles.total(),
        record.report.drop_budget.total()
    );
}
