//! The paper's two hand-wired evaluation topologies (§6.3): the Figure
//! 8/9/11 dumbbell and the Figure 10 parking lot.
//!
//! These are the degenerate cases of the generated families in
//! [`generate`](crate::generate) — [`TopoSpec::Dumbbell`] and
//! [`TopoSpec::ParkingLot`] delegate here, so experiment harnesses built on
//! [`TopoSpec`] reproduce the classic networks **byte for byte** (same node
//! order, same link order, same addresses, hence identical simulations).
//!
//! [`TopoSpec`]: crate::spec::TopoSpec
//! [`TopoSpec::Dumbbell`]: crate::spec::TopoSpec::Dumbbell
//! [`TopoSpec::ParkingLot`]: crate::spec::TopoSpec::ParkingLot

use netfence_sim::prelude::*;

use crate::built::{Bottleneck, BuiltTopo, TopoGroup};

/// A built dumbbell scenario (Figure 8/9/11 topology): `src_ases` source
/// ASes connect through a transit AS (routers `Rbl`—`Rbr`, the bottleneck)
/// to one destination AS holding the victim and `colluder_ases` extra ASes
/// each holding one colluder.
#[derive(Debug)]
pub struct Dumbbell {
    /// The network.
    pub net: Network,
    /// Protocol-level address of the bottleneck link (Rbl → Rbr).
    pub bottleneck: LinkAddr,
    /// Bottleneck capacity in bits per second.
    pub bottleneck_bps: u64,
    /// Legitimate sender hosts.
    pub users: Vec<HostAddr>,
    /// Attacker hosts.
    pub attackers: Vec<HostAddr>,
    /// The victim destination.
    pub victim: HostAddr,
    /// Colluder destinations (empty when receivers do not collude).
    pub colluders: Vec<HostAddr>,
}

impl Dumbbell {
    /// Repackage as the uniform [`BuiltTopo`] role metadata (one unlabeled
    /// group; every sender competes on the single bottleneck).
    pub fn into_built(self) -> BuiltTopo {
        let Dumbbell { net, bottleneck, bottleneck_bps, users, attackers, victim, colluders } =
            self;
        let mut source_ases: Vec<AsNum> =
            users.iter().chain(&attackers).map(|&h| net.as_of_host(h)).collect();
        source_ases.sort_unstable();
        source_ases.dedup();
        let competing_senders = users.len() + attackers.len();
        BuiltTopo {
            net,
            groups: vec![TopoGroup { label: String::new(), users, attackers, victim, colluders }],
            bottlenecks: vec![Bottleneck {
                label: "bottleneck".to_string(),
                addr: bottleneck,
                bps: bottleneck_bps,
            }],
            source_ases,
            competing_senders,
        }
    }
}

/// Host address of host `k` in source AS `i` (1-based AS index).
pub fn src_host_addr(as_index: usize, host_index: usize) -> HostAddr {
    0x0A00_0000 + (as_index as u32) * 0x100 + host_index as u32 + 1
}

/// Build the dumbbell. `legit_per_as` of each AS's hosts are legitimate
/// users, the rest are attackers. `colluder_ases` extra destination ASes are
/// attached behind the bottleneck.
pub fn build_dumbbell(
    src_ases: usize,
    hosts_per_as: usize,
    legit_per_as: usize,
    bottleneck_bps: u64,
    colluder_ases: usize,
) -> Dumbbell {
    let mut b = Network::builder();
    // Transit AS 100 with the two bottleneck routers.
    let rbl = b.router(100, false);
    let rbr = b.router(100, false);
    let access_capacity = (bottleneck_bps * 10).max(100_000_000);
    let bottleneck_idx = b.link(rbl, rbr, bottleneck_bps, 10 * MILLI, QueueKind::Red);
    b.link(rbr, rbl, bottleneck_bps, 10 * MILLI, QueueKind::Red);

    let mut users = Vec::new();
    let mut attackers = Vec::new();
    // Source ASes 1..=N, each with one access router and `hosts_per_as`
    // hosts.
    for asn in 1..=src_ases {
        let ra = b.router(asn as u32, true);
        b.duplex(ra, rbl, access_capacity, 10 * MILLI, QueueKind::DropTail);
        for h in 0..hosts_per_as {
            let addr = src_host_addr(asn, h);
            b.host(addr, asn as u32, ra, access_capacity, MILLI);
            if h < legit_per_as {
                users.push(addr);
            } else {
                attackers.push(addr);
            }
        }
    }

    // Destination AS 200 with the victim.
    let rd = b.router(200, true);
    b.duplex(rbr, rd, access_capacity, 10 * MILLI, QueueKind::DropTail);
    let victim = 0x1400_0001;
    b.host(victim, 200, rd, access_capacity, MILLI);

    // Colluder ASes 201..
    let mut colluders = Vec::new();
    for c in 0..colluder_ases {
        let asn = 201 + c as u32;
        let rc = b.router(asn, true);
        b.duplex(rbr, rc, access_capacity, 10 * MILLI, QueueKind::DropTail);
        let addr = 0x1500_0001 + c as u32 * 0x100;
        b.host(addr, asn, rc, access_capacity, MILLI);
        colluders.push(addr);
    }

    let net = b.build();
    let bottleneck = net.links[bottleneck_idx].addr;
    Dumbbell { net, bottleneck, bottleneck_bps, users, attackers, victim, colluders }
}

/// A built parking-lot scenario.
#[derive(Debug)]
pub struct ParkingLot {
    /// The network.
    pub net: Network,
    /// Link address of L1.
    pub l1: LinkAddr,
    /// Link address of L2.
    pub l2: LinkAddr,
    /// Capacity of L1, bits per second.
    pub l1_bps: u64,
    /// Capacity of L2, bits per second.
    pub l2_bps: u64,
    /// Group A (crosses both links), Group B (only L2), Group C (only L1).
    pub groups: [Group; 3],
}

impl ParkingLot {
    /// Repackage as the uniform [`BuiltTopo`] role metadata: three labeled
    /// groups, two designated bottlenecks, with `2 · per_group` senders
    /// competing on the tighter link (A+C cross L1, A+B cross L2).
    pub fn into_built(self) -> BuiltTopo {
        let ParkingLot { net, l1, l2, l1_bps, l2_bps, groups } = self;
        let per_group = groups[0].users.len() + groups[0].attackers.len();
        let source_ases = vec![1, 2, 3];
        BuiltTopo {
            net,
            groups: groups.into_iter().map(Group::into_topo_group).collect(),
            bottlenecks: vec![
                Bottleneck { label: "L1".to_string(), addr: l1, bps: l1_bps },
                Bottleneck { label: "L2".to_string(), addr: l2, bps: l2_bps },
            ],
            source_ases,
            competing_senders: 2 * per_group,
        }
    }
}

/// One sender group of the parking-lot scenario.
#[derive(Debug, Clone)]
pub struct Group {
    /// Group label ("A", "B", "C").
    pub label: &'static str,
    /// Legitimate senders.
    pub users: Vec<HostAddr>,
    /// Attackers.
    pub attackers: Vec<HostAddr>,
    /// The group's victim destination (users send here).
    pub victim: HostAddr,
    /// The group's colluder destination (attackers send here when
    /// colluding).
    pub colluder: HostAddr,
}

impl Group {
    fn into_topo_group(self) -> TopoGroup {
        TopoGroup {
            label: self.label.to_string(),
            users: self.users,
            attackers: self.attackers,
            victim: self.victim,
            colluders: vec![self.colluder],
        }
    }
}

/// Build the parking-lot topology: `R0 —L1→ R1 —L2→ R2`, with each group's
/// senders and destinations attached so that the paper's crossing pattern
/// holds (A crosses both links, B only L2, C only L1).
pub fn build_parking_lot(
    per_group: usize,
    legit_per_group: usize,
    l1_bps: u64,
    l2_bps: u64,
) -> ParkingLot {
    let mut b = Network::builder();
    let r0 = b.router(100, false);
    let r1 = b.router(101, false);
    let r2 = b.router(102, false);
    let access_cap = (l1_bps.max(l2_bps) * 10).max(100_000_000);
    let l1_idx = b.link(r0, r1, l1_bps, 10 * MILLI, QueueKind::Red);
    b.link(r1, r0, l1_bps, 10 * MILLI, QueueKind::Red);
    let l2_idx = b.link(r1, r2, l2_bps, 10 * MILLI, QueueKind::Red);
    b.link(r2, r1, l2_bps, 10 * MILLI, QueueKind::Red);

    let make_group = |label: &'static str,
                      asn_src: u32,
                      asn_dst: u32,
                      src_router_target,
                      dst_router_target,
                      base_addr: u32,
                      b: &mut NetworkBuilder|
     -> Group {
        let ra = b.router(asn_src, true);
        b.duplex(ra, src_router_target, access_cap, 5 * MILLI, QueueKind::DropTail);
        let rd = b.router(asn_dst, true);
        b.duplex(dst_router_target, rd, access_cap, 5 * MILLI, QueueKind::DropTail);
        let mut users = Vec::new();
        let mut attackers = Vec::new();
        for h in 0..per_group {
            let addr = base_addr + h as u32 + 1;
            b.host(addr, asn_src, ra, access_cap, MILLI);
            if h < legit_per_group {
                users.push(addr);
            } else {
                attackers.push(addr);
            }
        }
        let victim = base_addr + 0xF1;
        let colluder = base_addr + 0xF2;
        b.host(victim, asn_dst, rd, access_cap, MILLI);
        b.host(colluder, asn_dst, rd, access_cap, MILLI);
        Group { label, users, attackers, victim, colluder }
    };

    // Group A: sources before L1, destinations after L2.
    let group_a = make_group("A", 1, 11, r0, r2, 0x0A01_0000, &mut b);
    // Group B: sources before L2 (at R1), destinations after L2.
    let group_b = make_group("B", 2, 12, r1, r2, 0x0A02_0000, &mut b);
    // Group C: sources before L1, destinations between L1 and L2 (at R1).
    let group_c = make_group("C", 3, 13, r0, r1, 0x0A03_0000, &mut b);

    let net = b.build();
    let l1 = net.links[l1_idx].addr;
    let l2 = net.links[l2_idx].addr;
    ParkingLot { net, l1, l2, l1_bps, l2_bps, groups: [group_a, group_b, group_c] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_shape() {
        let d = build_dumbbell(3, 4, 1, 10_000_000, 2);
        assert_eq!(d.users.len(), 3);
        assert_eq!(d.attackers.len(), 9);
        assert_eq!(d.colluders.len(), 2);
        // Every source host routes to the victim through the bottleneck.
        let bneck_idx = d.net.link_by_addr(d.bottleneck).unwrap();
        for &u in d.users.iter().chain(&d.attackers) {
            let mut node = d.net.host_node(u);
            let mut crossed = false;
            for _ in 0..10 {
                match d.net.next_hop(node, d.victim) {
                    Some(l) => {
                        if l == bneck_idx {
                            crossed = true;
                        }
                        node = d.net.links[l].to;
                    }
                    None => break,
                }
                if d.net.nodes[node.0].host_addr() == Some(d.victim) {
                    break;
                }
            }
            assert!(crossed, "host {u:#x} does not cross the bottleneck");
        }
    }

    #[test]
    fn parking_lot_routing_crosses_the_right_links() {
        let lot = build_parking_lot(4, 1, 1_000_000, 1_000_000);
        let l1 = lot.net.link_by_addr(lot.l1).unwrap();
        let l2 = lot.net.link_by_addr(lot.l2).unwrap();
        let crosses = |src: HostAddr, dst: HostAddr, link: usize| -> bool {
            let mut node = lot.net.host_node(src);
            for _ in 0..12 {
                match lot.net.next_hop(node, dst) {
                    Some(l) => {
                        if l == link {
                            return true;
                        }
                        node = lot.net.links[l].to;
                    }
                    None => return false,
                }
            }
            false
        };
        let [a, bg, c] = &lot.groups;
        // Group A crosses both links.
        assert!(crosses(a.users[0], a.victim, l1));
        assert!(crosses(a.users[0], a.victim, l2));
        // Group B crosses only L2, group C only L1.
        assert!(!crosses(bg.attackers[0], bg.colluder, l1));
        assert!(crosses(bg.attackers[0], bg.colluder, l2));
        assert!(crosses(c.attackers[0], c.colluder, l1));
        assert!(!crosses(c.attackers[0], c.colluder, l2));
    }

    #[test]
    fn into_built_preserves_roles_and_bottlenecks() {
        let built = build_dumbbell(2, 3, 1, 5_000_000, 1).into_built();
        assert_eq!(built.groups.len(), 1);
        assert_eq!(built.groups[0].users.len(), 2);
        assert_eq!(built.groups[0].attackers.len(), 4);
        assert_eq!(built.groups[0].colluders.len(), 1);
        assert_eq!(built.bottlenecks.len(), 1);
        assert_eq!(built.source_ases, vec![1, 2]);
        assert_eq!(built.competing_senders, 6);

        let built = build_parking_lot(4, 1, 1_000_000, 2_000_000).into_built();
        assert_eq!(built.groups.len(), 3);
        assert_eq!(built.bottlenecks[0].label, "L1");
        assert_eq!(built.competing_senders, 8);
        assert_eq!(built.source_ases, vec![1, 2, 3]);
    }
}
