//! Deterministic generators for the internet-like topology families:
//! transit-stub graphs and multi-bottleneck meshes.
//!
//! Everything is derived from the spec — stub sizes from a Zipf law over
//! the stub rank, multihoming choices from splitmix64 over the spec's seed
//! — so the same spec always yields a byte-identical network, and the
//! generated graphs stay simulable at scale (the AS-aggregated routing in
//! `netfence-sim` builds one BFS per host-bearing router, not per host).

use netfence_sim::prelude::*;
use netfence_sim::rng::splitmix64;

use crate::built::{Bottleneck, BuiltTopo, TopoGroup};
use crate::spec::{MultiBottleneckSpec, TransitStubSpec};

/// Split `total` hosts over `ranks` stub ASes by a Zipf law with skew
/// `milli_alpha / 1000` (0 = uniform): stub `r` (1-based rank) gets weight
/// `r^-α`, floored, with every stub keeping at least one host and the
/// rounding drift settled deterministically (shortfall topped up from rank
/// 1 down, excess trimmed from the tail up). The sizes always sum to
/// `total`.
pub fn zipf_sizes(total: usize, ranks: usize, milli_alpha: u32) -> Vec<usize> {
    assert!(ranks > 0, "need at least one rank");
    assert!(total >= ranks, "need at least one host per rank");
    let alpha = milli_alpha as f64 / 1000.0;
    let weights: Vec<f64> = (1..=ranks).map(|r| (r as f64).powf(-alpha)).collect();
    let sum: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> =
        weights.iter().map(|w| ((total as f64 * w / sum).floor() as usize).max(1)).collect();
    let mut assigned: usize = sizes.iter().sum();
    let mut r = 0;
    while assigned < total {
        sizes[r % ranks] += 1;
        assigned += 1;
        r += 1;
    }
    // The per-rank floor of one host can overshoot small totals; trim from
    // the tail (the smallest stubs shrink last-rank-first, never below 1).
    let mut r = ranks - 1;
    while assigned > total {
        if sizes[r] > 1 {
            sizes[r] -= 1;
            assigned -= 1;
        }
        r = if r == 0 { ranks - 1 } else { r - 1 };
    }
    sizes
}

/// Host address of host `h` in stub AS `stub` (0-based).
pub fn stub_host_addr(stub: usize, h: usize) -> HostAddr {
    0x2000_0000 + (stub as u32) * 0x1_0000 + h as u32 + 1
}

/// AS number of stub `stub` (0-based).
pub fn stub_as(stub: usize) -> AsNum {
    1_000 + stub as u32
}

/// Build a transit-stub graph per `s` (see [`TransitStubSpec`] for the
/// shape). Single group: all stub hosts aim at the one victim behind the
/// designated bottleneck, so every sender→victim path crosses it by
/// construction (the victim region is reachable only over that link).
pub fn build_transit_stub(s: &TransitStubSpec) -> BuiltTopo {
    s.validate();
    let stub_bps = s.resolved_stub_bps();
    let core_bps = s.resolved_core_bps();
    let mut b = Network::builder();

    // Tier-1 core: each transit AS is a chain of routers; border routers
    // peer pairwise across ASes (router j%R of AS i ↔ router i%R of AS j,
    // spreading the peerings over the chain).
    let mut core: Vec<NodeId> = Vec::with_capacity(s.transit_ases * s.routers_per_transit);
    for t in 0..s.transit_ases {
        let first = core.len();
        for _ in 0..s.routers_per_transit {
            core.push(b.router(30_000 + t as u32, false));
        }
        for k in 1..s.routers_per_transit {
            b.duplex(core[first + k - 1], core[first + k], core_bps, MILLI, QueueKind::DropTail);
        }
    }
    let rpt = s.routers_per_transit;
    for i in 0..s.transit_ases {
        for j in (i + 1)..s.transit_ases {
            let bi = core[i * rpt + j % rpt];
            let bj = core[j * rpt + i % rpt];
            b.duplex(bi, bj, core_bps, 5 * MILLI, QueueKind::DropTail);
        }
    }

    // Victim region behind the single designated bottleneck: core[0] →
    // victim-side border router, then the victim AS and the colluder ASes
    // (the dumbbell's Rbl → Rbr structure).
    let rb = b.router(29_000, false);
    let bottleneck_idx = b.link(core[0], rb, s.bottleneck_bps, 10 * MILLI, QueueKind::Red);
    b.link(rb, core[0], s.bottleneck_bps, 10 * MILLI, QueueKind::Red);
    let rv = b.router(20_000, true);
    b.duplex(rb, rv, stub_bps, 5 * MILLI, QueueKind::DropTail);
    let victim: HostAddr = 0x5000_0001;
    b.host(victim, 20_000, rv, stub_bps, MILLI);
    let mut colluders = Vec::with_capacity(s.colluder_ases);
    for c in 0..s.colluder_ases {
        let asn = 20_001 + c as u32;
        let rc = b.router(asn, true);
        b.duplex(rb, rc, stub_bps, 5 * MILLI, QueueKind::DropTail);
        let addr = 0x5100_0001 + c as u32 * 0x100;
        b.host(addr, asn, rc, stub_bps, MILLI);
        colluders.push(addr);
    }

    // Zipf-sized stub ASes, each homed to `multihoming` distinct transit
    // routers (rank i's first home rotates over the core; extras are
    // seeded picks).
    let sizes = zipf_sizes(s.hosts, s.stub_ases, s.zipf_milli_alpha);
    let homes_per_stub = s.multihoming.min(core.len());
    let mut users = Vec::new();
    let mut attackers = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        assert!(size < 0x1_0000, "stub {i} too large for the host address space");
        let asn = stub_as(i);
        let ra = b.router(asn, true);
        let mut homes = vec![i % core.len()];
        let mut x = s.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        while homes.len() < homes_per_stub {
            let pick = (splitmix64(&mut x) % core.len() as u64) as usize;
            if !homes.contains(&pick) {
                homes.push(pick);
            }
        }
        for &h in &homes {
            b.duplex(ra, core[h], stub_bps, 5 * MILLI, QueueKind::DropTail);
        }
        for h in 0..size {
            let addr = stub_host_addr(i, h);
            b.host(addr, asn, ra, stub_bps, MILLI);
            if h < s.legit_per_stub {
                users.push(addr);
            } else {
                attackers.push(addr);
            }
        }
    }

    let net = b.build();
    let bottleneck_addr = net.links[bottleneck_idx].addr;
    BuiltTopo {
        net,
        groups: vec![TopoGroup { label: String::new(), users, attackers, victim, colluders }],
        bottlenecks: vec![Bottleneck {
            label: "bottleneck".to_string(),
            addr: bottleneck_addr,
            bps: s.bottleneck_bps,
        }],
        source_ases: (0..s.stub_ases).map(stub_as).collect(),
        competing_senders: s.hosts,
    }
}

/// Build a multi-bottleneck mesh per `s` (see [`MultiBottleneckSpec`]):
/// a chain of K designated bottlenecks plus branch bottlenecks, with the
/// parking lot's crossing pattern generalized — the long group "A" crosses
/// every chain link, local group "Ci" crosses exactly chain link i, branch
/// group "Bj" crosses exactly branch link j.
pub fn build_multi_bottleneck(s: &MultiBottleneckSpec) -> BuiltTopo {
    s.validate();
    let k = s.bottlenecks;
    let access_cap = (s.bottleneck_bps * 10).max(100_000_000);
    let mut b = Network::builder();

    // The chain R0 —L1→ R1 … —LK→ RK.
    let chain: Vec<NodeId> = (0..=k).map(|i| b.router(100 + i as u32, false)).collect();
    let mut bottlenecks = Vec::new();
    for i in 1..=k {
        let li = b.link(chain[i - 1], chain[i], s.bottleneck_bps, 10 * MILLI, QueueKind::Red);
        b.link(chain[i], chain[i - 1], s.bottleneck_bps, 10 * MILLI, QueueKind::Red);
        bottlenecks.push((format!("L{i}"), li));
    }

    let mut groups = Vec::with_capacity(s.groups());
    let mut next_group = 0usize;
    let mut make_group = |label: String, src_at: NodeId, dst_at: NodeId, b: &mut NetworkBuilder| {
        let g = next_group;
        next_group += 1;
        let base_addr = 0x0B00_0000 + (g as u32) * 0x1_0000;
        // AS ranges are kept disjoint from the chain (100..) and branch
        // (500..) routers for any group count validate() admits.
        let ra = b.router(1_000 + g as u32, true);
        b.duplex(ra, src_at, access_cap, 5 * MILLI, QueueKind::DropTail);
        let rd = b.router(2_000 + g as u32, true);
        b.duplex(dst_at, rd, access_cap, 5 * MILLI, QueueKind::DropTail);
        let mut users = Vec::new();
        let mut attackers = Vec::new();
        for h in 0..s.hosts_per_group {
            let addr = base_addr + h as u32 + 1;
            b.host(addr, 1_000 + g as u32, ra, access_cap, MILLI);
            if h < s.legit_per_group {
                users.push(addr);
            } else {
                attackers.push(addr);
            }
        }
        let victim = base_addr + 0xF1;
        let colluder = base_addr + 0xF2;
        b.host(victim, 2_000 + g as u32, rd, access_cap, MILLI);
        b.host(colluder, 2_000 + g as u32, rd, access_cap, MILLI);
        TopoGroup { label, users, attackers, victim, colluders: vec![colluder] }
    };

    // Long group: crosses every chain link.
    groups.push(make_group("A".to_string(), chain[0], chain[k], &mut b));
    // Local groups: group Ci crosses exactly chain link i.
    for i in 1..=k {
        groups.push(make_group(format!("C{i}"), chain[i - 1], chain[i], &mut b));
    }
    // Branch bottlenecks off the chain junctions, each with its own group.
    for j in 1..=s.branches {
        let junction = chain[(j - 1) % chain.len()];
        let rbj = b.router(500 + j as u32, false);
        let li = b.link(junction, rbj, s.bottleneck_bps, 10 * MILLI, QueueKind::Red);
        b.link(rbj, junction, s.bottleneck_bps, 10 * MILLI, QueueKind::Red);
        bottlenecks.push((format!("B{j}"), li));
        groups.push(make_group(format!("B{j}"), junction, rbj, &mut b));
    }

    let source_ases: Vec<AsNum> = (0..groups.len()).map(|g| 1_000 + g as u32).collect();
    let net = b.build();
    let bottlenecks = bottlenecks
        .into_iter()
        .map(|(label, li)| Bottleneck { label, addr: net.links[li].addr, bps: s.bottleneck_bps })
        .collect();
    BuiltTopo {
        net,
        groups,
        bottlenecks,
        source_ases,
        // The long group shares every chain link with that link's local
        // group — the parking lot's 2·per_group rule at arbitrary K.
        competing_senders: 2 * s.hosts_per_group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk the route from `src` to `dst`, returning the link indices.
    fn route(net: &Network, src: HostAddr, dst: HostAddr) -> Vec<usize> {
        let mut node = net.host_node(src);
        let mut hops = Vec::new();
        for _ in 0..64 {
            match net.next_hop(node, dst) {
                Some(l) => {
                    hops.push(l);
                    node = net.links[l].to;
                }
                None => break,
            }
            if net.nodes[node.0].host_addr() == Some(dst) {
                return hops;
            }
        }
        panic!("no route {src:#x} -> {dst:#x}");
    }

    #[test]
    fn zipf_sizes_sum_and_skew() {
        let sizes = zipf_sizes(100, 10, 900);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(sizes.iter().all(|&s| s >= 1));
        assert!(sizes[0] > sizes[9], "rank 1 should outweigh rank 10: {sizes:?}");
        // Uniform when alpha = 0.
        let flat = zipf_sizes(20, 4, 0);
        assert_eq!(flat, vec![5, 5, 5, 5]);
        // Tight total: every rank keeps its minimum of one.
        let tight = zipf_sizes(5, 5, 1_500);
        assert_eq!(tight, vec![1; 5]);
    }

    #[test]
    fn transit_stub_routes_cross_the_bottleneck() {
        let spec =
            TransitStubSpec { stub_ases: 6, hosts: 30, colluder_ases: 2, ..Default::default() };
        let built = build_transit_stub(&spec);
        assert_eq!(built.senders(), 30);
        let g = &built.groups[0];
        assert_eq!(g.users.len(), 6);
        assert_eq!(g.attackers.len(), 24);
        let bneck = built.net.link_by_addr(built.bottlenecks[0].addr).unwrap();
        for h in g.senders() {
            assert!(
                route(&built.net, h, g.victim).contains(&bneck),
                "host {h:#x} misses the bottleneck toward the victim"
            );
            for &c in &g.colluders {
                assert!(
                    route(&built.net, h, c).contains(&bneck),
                    "host {h:#x} misses the bottleneck toward colluder {c:#x}"
                );
            }
        }
    }

    #[test]
    fn transit_stub_is_deterministic_and_seed_sensitive() {
        let spec =
            TransitStubSpec { stub_ases: 5, hosts: 25, multihoming: 3, ..Default::default() };
        let a = build_transit_stub(&spec);
        let b = build_transit_stub(&spec);
        assert_eq!(a.net.nodes, b.net.nodes);
        assert_eq!(a.net.links, b.net.links);
        let c = build_transit_stub(&TransitStubSpec { seed: 99, ..spec });
        // Same shape, but the seeded multihoming picks differ.
        assert_eq!(a.net.nodes, c.net.nodes);
        assert_ne!(a.net.links, c.net.links);
    }

    #[test]
    fn multihoming_adds_uplinks() {
        let single = build_transit_stub(&TransitStubSpec {
            stub_ases: 4,
            hosts: 8,
            multihoming: 1,
            ..Default::default()
        });
        let multi = build_transit_stub(&TransitStubSpec {
            stub_ases: 4,
            hosts: 8,
            multihoming: 3,
            ..Default::default()
        });
        assert_eq!(single.net.nodes.len(), multi.net.nodes.len());
        // 2 extra uplinks × 2 directions × 4 stubs.
        assert_eq!(single.net.links.len() + 16, multi.net.links.len());
    }

    #[test]
    fn multi_bottleneck_crossing_pattern() {
        let spec = MultiBottleneckSpec {
            bottlenecks: 3,
            branches: 2,
            hosts_per_group: 4,
            legit_per_group: 1,
            bottleneck_bps: 1_000_000,
        };
        let built = build_multi_bottleneck(&spec);
        assert_eq!(built.groups.len(), 6); // A, C1..C3, B1..B2
        assert_eq!(built.bottlenecks.len(), 5); // L1..L3, B1..B2
        let link_of = |label: &str| {
            let addr = built.bottlenecks.iter().find(|b| b.label == label).unwrap().addr;
            built.net.link_by_addr(addr).unwrap()
        };
        let group = |label: &str| built.groups.iter().find(|g| g.label == label).unwrap();

        // The long group crosses every chain link and no branch link.
        let a = group("A");
        let path = route(&built.net, a.users[0], a.victim);
        for l in ["L1", "L2", "L3"] {
            assert!(path.contains(&link_of(l)), "A misses {l}");
        }
        for l in ["B1", "B2"] {
            assert!(!path.contains(&link_of(l)), "A crosses branch {l}");
        }
        // Each local group crosses exactly its chain link.
        for i in 1..=3usize {
            let g = group(&format!("C{i}"));
            let path = route(&built.net, g.attackers[0], g.colluders[0]);
            for j in 1..=3usize {
                let crosses = path.contains(&link_of(&format!("L{j}")));
                assert_eq!(crosses, i == j, "C{i} vs L{j}");
            }
        }
        // Each branch group crosses exactly its branch link.
        for j in 1..=2usize {
            let g = group(&format!("B{j}"));
            let path = route(&built.net, g.users[0], g.victim);
            assert!(path.contains(&link_of(&format!("B{j}"))));
            for l in ["L1", "L2", "L3"] {
                assert!(!path.contains(&link_of(l)), "B{j} crosses chain {l}");
            }
        }
    }
}
