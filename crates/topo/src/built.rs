//! The uniform output of every topology builder: a [`Network`] plus the
//! role metadata an experiment harness needs to populate it.
//!
//! Builders construct their network **exactly once** and return it here;
//! the experiment runner moves the network into the simulator and keeps the
//! metadata — which hosts are users/attackers, where the victims and
//! colluders live, and which links are the designated bottlenecks.

use netfence_sim::prelude::*;

/// One victim's worth of role assignment: the senders aimed at it and the
/// destinations they use. Single-victim topologies (dumbbell, transit-stub)
/// have one group with an empty label; multi-victim topologies (parking
/// lot, multi-bottleneck meshes) have one labeled group per victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoGroup {
    /// Group label (`""` for the single-group topologies; `"A"`, `"C1"`, …
    /// otherwise). Harnesses derive role-series names from it.
    pub label: String,
    /// Legitimate sender hosts.
    pub users: Vec<HostAddr>,
    /// Attacker hosts.
    pub attackers: Vec<HostAddr>,
    /// The victim destination users send to.
    pub victim: HostAddr,
    /// Colluder destinations attackers send to in the colluding-receiver
    /// scenario (attacker `i` uses colluder `i % len`). Empty when the
    /// topology was generated without colluders.
    pub colluders: Vec<HostAddr>,
}

impl TopoGroup {
    /// Every sender (users then attackers), in spawn order.
    pub fn senders(&self) -> impl Iterator<Item = HostAddr> + '_ {
        self.users.iter().chain(&self.attackers).copied()
    }
}

/// A designated bottleneck link of a generated topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bottleneck {
    /// Display label (`"bottleneck"`, `"L1"`, `"B2"`, …).
    pub label: String,
    /// Protocol-level link address.
    pub addr: LinkAddr,
    /// Capacity, bits per second.
    pub bps: u64,
}

/// A built topology: the network plus everything a harness needs to run an
/// attack scenario on it.
#[derive(Debug)]
pub struct BuiltTopo {
    /// The network (built exactly once; move it into the simulator).
    pub net: Network,
    /// Role assignment, one group per victim.
    pub groups: Vec<TopoGroup>,
    /// Designated bottleneck links, tightest first by convention of each
    /// builder (the first entry is the primary one reported in records).
    pub bottlenecks: Vec<Bottleneck>,
    /// The sender-hosting (stub/source) ASes, ascending — the base set
    /// fractional deployment coverage is resolved against.
    pub source_ases: Vec<AsNum>,
    /// How many senders compete for the tightest bottleneck (denominator of
    /// the reported per-sender fair share).
    pub competing_senders: usize,
}

impl BuiltTopo {
    /// Total senders across all groups.
    pub fn senders(&self) -> usize {
        self.groups.iter().map(|g| g.users.len() + g.attackers.len()).sum()
    }

    /// Capacity of the tightest designated bottleneck, bits per second.
    pub fn min_bottleneck_bps(&self) -> u64 {
        self.bottlenecks.iter().map(|b| b.bps).min().unwrap_or(0)
    }

    /// All sender hosts (group order, users before attackers) — the
    /// deployment-coverage source list.
    pub fn sources(&self) -> Vec<HostAddr> {
        self.groups.iter().flat_map(|g| g.senders()).collect()
    }
}
