//! # netfence-topo
//!
//! Deterministic internet-scale topology generation for the NetFence
//! reproduction.
//!
//! The paper's headline claim is scalability — per-sender state only at
//! access routers (§5.1), evaluated against 200K+ senders (§6.3) — which a
//! reproduction can only probe on networks larger and messier than the two
//! hand-wired evaluation topologies. This crate turns a declarative
//! [`TopoSpec`] into a [`BuiltTopo`]: a `netfence-sim` [`Network`] plus the
//! role metadata (users, attackers, victims, colluders, designated
//! bottlenecks, source ASes) an experiment harness needs to populate it.
//!
//! Four families:
//!
//! * [`TopoSpec::TransitStub`] — internet-like graphs: a tiered transit
//!   core, Zipf-sized stub ASes with configurable multihoming, and a victim
//!   region behind one designated bottleneck;
//! * [`TopoSpec::MultiBottleneck`] — generalized parking lots: K chained
//!   bottlenecks plus branching bottlenecks, each with its own sender
//!   group and victim;
//! * [`TopoSpec::Dumbbell`] / [`TopoSpec::ParkingLot`] — the paper's
//!   classic topologies as degenerate cases, built by the verbatim
//!   [`classic`] builders so harnesses migrating onto `TopoSpec` reproduce
//!   them byte for byte.
//!
//! Generation is pure: the same spec (including its `seed`) always yields
//! the same network — node order, link order, addresses and roles — so
//! experiment records stay reproducible.
//!
//! [`Network`]: netfence_sim::topology::Network

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod built;
pub mod classic;
pub mod generate;
pub mod spec;

pub use built::{Bottleneck, BuiltTopo, TopoGroup};
pub use generate::{build_multi_bottleneck, build_transit_stub, zipf_sizes};
pub use spec::{MultiBottleneckSpec, TopoSpec, TransitStubSpec};
