//! The declarative topology vocabulary: [`TopoSpec`] and the parameter
//! structs of the generated families.
//!
//! A `TopoSpec` is a pure value (all-`Copy`, `Eq`, `Hash`) that fully
//! determines a network: building the same spec twice yields byte-identical
//! [`BuiltTopo`]s (same node/link order, same addresses, same roles). All
//! randomness — stub sizing, multihoming choices — is derived from the
//! spec's own `seed` via splitmix64, never from global state.

use crate::built::BuiltTopo;
use crate::classic::{build_dumbbell, build_parking_lot};
use crate::generate::{build_multi_bottleneck, build_transit_stub};

/// A declarative topology: which family, at what size and capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopoSpec {
    /// The paper's Figure 8/9/11 dumbbell (degenerate case, built by the
    /// classic builder byte-for-byte).
    Dumbbell {
        /// Source ASes.
        src_ases: usize,
        /// Hosts per source AS.
        hosts_per_as: usize,
        /// Legitimate users per source AS (the rest are attackers).
        legit_per_as: usize,
        /// Bottleneck capacity, bits per second.
        bottleneck_bps: u64,
        /// Colluder ASes attached behind the bottleneck.
        colluder_ases: usize,
    },
    /// The paper's Figure 10 parking lot (degenerate case, built by the
    /// classic builder byte-for-byte).
    ParkingLot {
        /// Senders per group.
        per_group: usize,
        /// Legitimate users per group.
        legit_per_group: usize,
        /// Capacity of L1, bits per second.
        l1_bps: u64,
        /// Capacity of L2, bits per second.
        l2_bps: u64,
    },
    /// An internet-like transit-stub graph: a tiered transit core plus
    /// Zipf-sized stub ASes with configurable multihoming.
    TransitStub(TransitStubSpec),
    /// A generalized parking lot: K chained bottlenecks plus optional
    /// branching bottlenecks, each with its own sender group and victim.
    MultiBottleneck(MultiBottleneckSpec),
}

impl TopoSpec {
    /// Build the network and its role metadata. Deterministic: the same
    /// spec always yields the same [`BuiltTopo`].
    pub fn build(&self) -> BuiltTopo {
        match *self {
            TopoSpec::Dumbbell {
                src_ases,
                hosts_per_as,
                legit_per_as,
                bottleneck_bps,
                colluder_ases,
            } => {
                build_dumbbell(src_ases, hosts_per_as, legit_per_as, bottleneck_bps, colluder_ases)
                    .into_built()
            }
            TopoSpec::ParkingLot { per_group, legit_per_group, l1_bps, l2_bps } => {
                build_parking_lot(per_group, legit_per_group, l1_bps, l2_bps).into_built()
            }
            TopoSpec::TransitStub(ref s) => build_transit_stub(s),
            TopoSpec::MultiBottleneck(ref s) => build_multi_bottleneck(s),
        }
    }
}

/// Parameters of a transit-stub graph.
///
/// The shape: a tier-1 core of `transit_ases` transit ASes (each a chain of
/// `routers_per_transit` routers, border routers peered pairwise across
/// ASes), `stub_ases` Zipf-sized stub ASes homed to `multihoming` distinct
/// transit routers, and a victim region — a victim-side border router
/// behind the single designated bottleneck link, with the victim AS and
/// `colluder_ases` colluder ASes hanging off it (the dumbbell's
/// `Rbl → Rbr` structure, with an internet-like source side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitStubSpec {
    /// Transit (tier-1) ASes. ≥ 1.
    pub transit_ases: usize,
    /// Routers per transit AS. ≥ 1.
    pub routers_per_transit: usize,
    /// Stub (edge) ASes hosting senders. ≥ 1.
    pub stub_ases: usize,
    /// Total sender hosts, distributed over the stubs by Zipf rank
    /// (every stub gets at least one). Must be ≥ `stub_ases`.
    pub hosts: usize,
    /// Legitimate users per stub AS (capped at the stub's size; the rest of
    /// each stub's hosts are attackers).
    pub legit_per_stub: usize,
    /// Zipf skew of the stub sizes, in milli-units (`0` = uniform, `1000` =
    /// α 1.0). Classic internet AS-size fits are α ≈ 0.9.
    pub zipf_milli_alpha: u32,
    /// Distinct transit routers each stub homes to (≥ 1; capped at the
    /// total transit-router count).
    pub multihoming: usize,
    /// Capacity of the designated bottleneck link, bits per second.
    pub bottleneck_bps: u64,
    /// Stub/victim access-link capacity; `0` = auto (10 × bottleneck,
    /// min 100 Mbps — the dumbbell's rule).
    pub stub_bps: u64,
    /// Transit core link capacity; `0` = auto (20 × bottleneck, min
    /// 1 Gbps).
    pub core_bps: u64,
    /// Colluder ASes in the victim region.
    pub colluder_ases: usize,
    /// Seed for stub sizing and multihoming choices.
    pub seed: u64,
}

impl Default for TransitStubSpec {
    fn default() -> Self {
        TransitStubSpec {
            transit_ases: 3,
            routers_per_transit: 2,
            stub_ases: 10,
            hosts: 100,
            legit_per_stub: 1,
            zipf_milli_alpha: 900,
            multihoming: 2,
            bottleneck_bps: 10_000_000,
            stub_bps: 0,
            core_bps: 0,
            colluder_ases: 0,
            seed: 7,
        }
    }
}

impl TransitStubSpec {
    /// Panic with a clear message when the spec is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.transit_ases >= 1, "transit_ases must be >= 1");
        assert!(self.routers_per_transit >= 1, "routers_per_transit must be >= 1");
        assert!(self.stub_ases >= 1, "stub_ases must be >= 1");
        assert!(
            self.hosts >= self.stub_ases,
            "hosts ({}) must cover every stub AS ({})",
            self.hosts,
            self.stub_ases
        );
        assert!(self.multihoming >= 1, "multihoming must be >= 1");
        assert!(self.bottleneck_bps > 0, "bottleneck_bps must be > 0");
        assert!(self.stub_ases <= 0x1000, "at most 4096 stub ASes (host address space)");
        assert!(self.colluder_ases <= 0x100, "at most 256 colluder ASes");
    }

    /// Resolved stub access-link capacity.
    pub fn resolved_stub_bps(&self) -> u64 {
        if self.stub_bps > 0 {
            self.stub_bps
        } else {
            (self.bottleneck_bps * 10).max(100_000_000)
        }
    }

    /// Resolved transit core capacity.
    pub fn resolved_core_bps(&self) -> u64 {
        if self.core_bps > 0 {
            self.core_bps
        } else {
            (self.bottleneck_bps * 20).max(1_000_000_000)
        }
    }
}

/// Parameters of a multi-bottleneck mesh (generalized parking lot).
///
/// A chain `R0 —L1→ R1 —L2→ … —LK→ RK` of `bottlenecks` designated links,
/// plus `branches` extra bottleneck links hanging off the chain's junction
/// routers. Sender groups reproduce the parking lot's crossing pattern at
/// arbitrary K: one *long* group crosses every chain link, one *local*
/// group per chain link crosses exactly that link, and one *branch* group
/// per branch link crosses exactly its branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MultiBottleneckSpec {
    /// Chained bottleneck links K. ≥ 1.
    pub bottlenecks: usize,
    /// Extra branching bottleneck links off the chain's junctions.
    pub branches: usize,
    /// Senders per group.
    pub hosts_per_group: usize,
    /// Legitimate users per group.
    pub legit_per_group: usize,
    /// Capacity of every designated bottleneck, bits per second.
    pub bottleneck_bps: u64,
}

impl MultiBottleneckSpec {
    /// Panic with a clear message when the spec is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.bottlenecks >= 1, "bottlenecks must be >= 1");
        assert!(self.bottlenecks + self.branches <= 0x80, "at most 128 designated bottlenecks");
        assert!(self.hosts_per_group >= 1, "hosts_per_group must be >= 1");
        assert!(self.hosts_per_group <= 0xE0, "at most 224 hosts per group (address space)");
        assert!(self.bottleneck_bps > 0, "bottleneck_bps must be > 0");
    }

    /// Total sender groups (1 long + K locals + branches).
    pub fn groups(&self) -> usize {
        1 + self.bottlenecks + self.branches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_spec_delegates_to_the_classic_builder() {
        let spec = TopoSpec::Dumbbell {
            src_ases: 3,
            hosts_per_as: 4,
            legit_per_as: 1,
            bottleneck_bps: 10_000_000,
            colluder_ases: 2,
        };
        let built = spec.build();
        let classic = build_dumbbell(3, 4, 1, 10_000_000, 2);
        assert_eq!(built.net.nodes, classic.net.nodes);
        assert_eq!(built.net.links, classic.net.links);
        assert_eq!(built.groups[0].users, classic.users);
        assert_eq!(built.groups[0].attackers, classic.attackers);
        assert_eq!(built.bottlenecks[0].addr, classic.bottleneck);
    }

    #[test]
    fn parking_lot_spec_delegates_to_the_classic_builder() {
        let spec = TopoSpec::ParkingLot {
            per_group: 4,
            legit_per_group: 1,
            l1_bps: 1_000_000,
            l2_bps: 2_000_000,
        };
        let built = spec.build();
        let classic = build_parking_lot(4, 1, 1_000_000, 2_000_000);
        assert_eq!(built.net.nodes, classic.net.nodes);
        assert_eq!(built.net.links, classic.net.links);
        assert_eq!(built.groups.len(), 3);
        assert_eq!(built.bottlenecks[1].bps, 2_000_000);
    }

    #[test]
    #[should_panic(expected = "hosts")]
    fn transit_stub_validation_rejects_too_few_hosts() {
        TransitStubSpec { stub_ases: 10, hosts: 5, ..Default::default() }.validate();
    }
}
