//! UDP traffic agents: constant-bit-rate senders, synchronized on-off
//! senders (the microscopic on-off attack of §5.2.1 / Figure 11), and the
//! low-rate receiver→sender feedback echo required by one-way transports
//! (§3.1 step 4).

use crate::flow::{Flow, FlowActions, FlowProgress};
use crate::packet::{FlowId, HostAddr, Packet};
use crate::time::{Nanos, MILLI, SEC};

/// Sending pattern of a UDP flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpPattern {
    /// Constant bit rate for the whole simulation.
    Constant,
    /// Synchronized on-off: send at the configured rate for `on`, stay
    /// silent for `off`, repeat. All flows created with the same pattern and
    /// start time burst in lockstep — the worst case for the defense.
    OnOff {
        /// Length of the on-period.
        on: Nanos,
        /// Length of the off-period.
        off: Nanos,
    },
}

const TOKEN_SEND: u64 = 1;
const TOKEN_ECHO: u64 = 2;

/// A one-way UDP flow with an optional on-off duty cycle, plus the
/// receiver-side low-rate feedback echo.
#[derive(Debug)]
pub struct UdpFlow {
    id: FlowId,
    src: HostAddr,
    dst: HostAddr,
    /// Sending rate during on-periods, bits per second.
    rate_bps: u64,
    /// Datagram size in bytes.
    pkt_size: usize,
    pattern: UdpPattern,
    /// Interval between receiver feedback-echo packets.
    echo_interval: Nanos,
    /// Size of a feedback-echo packet (92 B: the request-packet estimate of
    /// §4.6).
    echo_size: usize,
    started_at: Nanos,
    received_since_echo: bool,
    echo_armed: bool,
    progress: FlowProgress,
}

impl UdpFlow {
    /// Create a constant-bit-rate flow.
    pub fn cbr(id: FlowId, src: HostAddr, dst: HostAddr, rate_bps: u64) -> Self {
        Self::new(id, src, dst, rate_bps, UdpPattern::Constant)
    }

    /// Create a UDP flow with an explicit pattern.
    pub fn new(
        id: FlowId,
        src: HostAddr,
        dst: HostAddr,
        rate_bps: u64,
        pattern: UdpPattern,
    ) -> Self {
        UdpFlow {
            id,
            src,
            dst,
            rate_bps: rate_bps.max(1),
            pkt_size: 1500,
            pattern,
            echo_interval: 200 * MILLI,
            echo_size: 92,
            started_at: 0,
            received_since_echo: false,
            echo_armed: false,
            progress: FlowProgress::default(),
        }
    }

    /// Override the datagram size.
    pub fn with_pkt_size(mut self, size: usize) -> Self {
        self.pkt_size = size;
        self
    }

    /// Current sending rate during on-periods, bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Current datagram size in bytes.
    pub fn pkt_size(&self) -> usize {
        self.pkt_size
    }

    /// Retune the sending rate. Takes effect at the next send timer; a
    /// flow retuned to the same rate behaves exactly as if never touched.
    pub fn set_rate_bps(&mut self, bps: u64) {
        self.rate_bps = bps.max(1);
    }

    /// Replace the duty-cycle pattern, rebasing its phase so the new cycle
    /// begins at `now` (adaptive senders switch patterns mid-run; the phase
    /// of the old pattern must not leak into the new one).
    pub fn set_pattern(&mut self, now: Nanos, pattern: UdpPattern) {
        self.pattern = pattern;
        self.started_at = now;
    }

    /// Redirect the flow at a new destination. Packets already in flight
    /// still count as delivered where they were addressed; the feedback
    /// echo follows the new destination.
    pub fn set_dst(&mut self, dst: HostAddr) {
        self.dst = dst;
    }

    /// Time between two datagrams at the configured rate.
    fn send_interval(&self) -> Nanos {
        (self.pkt_size as u128 * 8 * SEC as u128 / self.rate_bps as u128) as Nanos
    }

    /// Whether the flow is inside an on-period at `now`, and if not, when
    /// the next on-period starts.
    fn on_phase(&self, now: Nanos) -> Result<(), Nanos> {
        match self.pattern {
            UdpPattern::Constant => Ok(()),
            UdpPattern::OnOff { on, off } => {
                let cycle = on + off;
                let pos = (now.saturating_sub(self.started_at)) % cycle;
                if pos < on {
                    Ok(())
                } else {
                    Err(now + (cycle - pos))
                }
            }
        }
    }
}

impl Flow for UdpFlow {
    fn id(&self) -> FlowId {
        self.id
    }
    fn src(&self) -> HostAddr {
        self.src
    }
    fn dst(&self) -> HostAddr {
        self.dst
    }

    fn start(&mut self, now: Nanos) -> FlowActions {
        self.started_at = now;
        self.progress.started_transfers = 1;
        FlowActions::none().with_timer(now, TOKEN_SEND)
    }

    fn on_packet(&mut self, now: Nanos, pkt: &Packet, at_host: HostAddr) -> FlowActions {
        let mut actions = FlowActions::none();
        // Count any packet this sender emitted that reached its own
        // destination — `pkt.dst`, not `self.dst`, so a flow redirected by
        // `set_dst` still credits in-flight packets to the old target.
        if pkt.src == self.src && at_host == pkt.dst {
            // Receiver side: count goodput and drive the echo timer.
            self.progress.delivered_bytes += pkt.size as u64;
            self.received_since_echo = true;
            if !self.echo_armed {
                self.echo_armed = true;
                actions.timers.push((now + self.echo_interval, TOKEN_ECHO));
            }
        }
        actions
    }

    fn on_timer(&mut self, now: Nanos, token: u64) -> FlowActions {
        let mut actions = FlowActions::none();
        match token {
            TOKEN_SEND => match self.on_phase(now) {
                Ok(()) => {
                    actions.packets.push(Packet::udp(
                        self.id,
                        self.src,
                        self.dst,
                        self.pkt_size,
                        now,
                    ));
                    self.progress.packets_sent += 1;
                    actions.timers.push((now + self.send_interval(), TOKEN_SEND));
                }
                Err(next_on) => {
                    actions.timers.push((next_on, TOKEN_SEND));
                }
            },
            TOKEN_ECHO => {
                if self.received_since_echo {
                    // A small reverse-direction packet that lets the defense
                    // shim piggyback returned feedback for one-way traffic.
                    actions.packets.push(Packet::udp(
                        self.id,
                        self.dst,
                        self.src,
                        self.echo_size,
                        now,
                    ));
                    self.received_since_echo = false;
                }
                actions.timers.push((now + self.echo_interval, TOKEN_ECHO));
            }
            _ => {}
        }
        actions
    }

    fn progress(&self) -> FlowProgress {
        self.progress.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(f: &mut UdpFlow, until: Nanos) -> (u64, Vec<Nanos>) {
        // Run the flow's own timers without any network.
        let mut timers = f.start(0).timers;
        let mut sent = 0;
        let mut times = Vec::new();
        while let Some(pos) = timers.iter().enumerate().min_by_key(|(_, (t, _))| *t).map(|(i, _)| i)
        {
            let (now, tok) = timers.remove(pos);
            if now > until {
                break;
            }
            let acts = f.on_timer(now, tok);
            sent += acts.packets.len() as u64;
            if !acts.packets.is_empty() {
                times.push(now);
            }
            timers.extend(acts.timers);
        }
        (sent, times)
    }

    #[test]
    fn cbr_rate_is_accurate() {
        // 1 Mbps with 1500 B packets => one packet every 12 ms => ~83/s.
        let mut f = UdpFlow::cbr(0, 1, 2, 1_000_000);
        let (sent, _) = drain(&mut f, SEC);
        assert!((80..=90).contains(&sent), "sent {sent}");
        assert_eq!(f.progress().packets_sent, sent);
    }

    #[test]
    fn onoff_pattern_respects_duty_cycle() {
        // Ton = 0.5 s, Toff = 1.5 s at 1 Mbps: over 4 s there are two full
        // on-periods => ~2 × 42 packets, and no packet is timestamped inside
        // an off-period.
        let mut f = UdpFlow::new(
            0,
            1,
            2,
            1_000_000,
            UdpPattern::OnOff { on: 500 * MILLI, off: 1500 * MILLI },
        );
        let (sent, times) = drain(&mut f, 4 * SEC);
        assert!((75..=95).contains(&sent), "sent {sent}");
        for t in times {
            let pos = t % (2 * SEC);
            assert!(pos < 500 * MILLI, "packet sent during off-period at {t}");
        }
    }

    #[test]
    fn retune_hooks_change_rate_pattern_and_destination() {
        let mut f = UdpFlow::cbr(0, 1, 2, 1_000_000);
        let _ = f.start(0);
        assert_eq!(f.rate_bps(), 1_000_000);
        assert_eq!(f.pkt_size(), 1500);
        // Double the rate: the send interval halves.
        let before = f.send_interval();
        f.set_rate_bps(2_000_000);
        assert_eq!(f.send_interval(), before / 2);
        // Switch to on-off mid-run: the phase rebases at the switch
        // instant, so the first on-period starts immediately.
        f.set_pattern(10 * SEC, UdpPattern::OnOff { on: SEC, off: SEC });
        assert!(f.on_phase(10 * SEC + 500 * MILLI).is_ok());
        assert!(f.on_phase(10 * SEC + 1500 * MILLI).is_err());
        // Redirect: new packets go to the new destination, and a packet
        // already in flight to the old one still counts as delivered.
        f.set_dst(5);
        let acts = f.on_timer(10 * SEC, TOKEN_SEND);
        assert_eq!(acts.packets[0].dst, 5);
        let stale = Packet::udp(0, 1, 2, 1500, 10 * SEC);
        let _ = f.on_packet(10 * SEC, &stale, 2);
        assert_eq!(f.progress().delivered_bytes, 1500);
    }

    #[test]
    fn receiver_echoes_at_low_rate() {
        let mut f = UdpFlow::cbr(0, 1, 2, 1_000_000);
        let _ = f.start(0);
        // Deliver 100 packets over one second.
        let mut echo_timers = Vec::new();
        for i in 0..100u64 {
            let p = Packet::udp(0, 1, 2, 1500, i * 10 * MILLI);
            let acts = f.on_packet(i * 10 * MILLI, &p, 2);
            echo_timers.extend(acts.timers);
        }
        // Only one echo timer was armed despite 100 deliveries.
        assert_eq!(echo_timers.len(), 1);
        let (at, tok) = echo_timers[0];
        let acts = f.on_timer(at, tok);
        // The echo packet travels from the receiver back to the sender and
        // is small.
        assert_eq!(acts.packets.len(), 1);
        let echo = &acts.packets[0];
        assert_eq!(echo.src, 2);
        assert_eq!(echo.dst, 1);
        assert_eq!(echo.size, 92);
        // Without further deliveries the next echo timer sends nothing.
        let acts2 = f.on_timer(at + 200 * MILLI, acts.timers[0].1);
        assert!(acts2.packets.is_empty());
        assert_eq!(f.progress().delivered_bytes, 150_000);
    }
}
