//! The hook interface through which a DoS defense system participates in
//! the simulation.
//!
//! The simulator calls these hooks at well-defined points of a packet's
//! life. `netfence-systems` implements them for NetFence, TVA+, StopIt and
//! per-sender fair queuing; [`NoDefense`] is the undefended baseline.

use crate::packet::{LinkAddr, Packet};
use crate::queue::QueueDisc;
use crate::time::Nanos;
use crate::topology::{LinkSpec, Network, NodeId};

/// What a router does with a packet about to be forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterAction {
    /// Enqueue on the outgoing link now.
    Forward,
    /// Hold the packet (e.g. in an access-router rate limiter) and enqueue
    /// it at the given absolute time.
    Delay {
        /// When to release the packet.
        release_at: Nanos,
    },
    /// Drop the packet.
    Drop,
}

/// A DoS defense system plugged into the simulator.
///
/// All methods have no-op defaults so simple systems only implement what
/// they need. Hooks receive mutable access to the packet so they can attach
/// or rewrite shim headers (via [`crate::packet::Packet::ext`]), change the
/// channel/priority, or adjust the wire size.
pub trait DefenseSystem: std::fmt::Debug {
    /// A short name used in experiment output.
    fn name(&self) -> &'static str;

    /// Downcast support so experiment harnesses can inspect
    /// defense-specific state (monitoring cycles, rate limiters, filters)
    /// after a run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Called once before the simulation starts, with the built network.
    /// Gives the defense a chance to learn the topology (AS membership,
    /// link identifiers, access-router placement).
    fn install(&mut self, _net: &Network) {}

    /// Optionally replace the queue discipline of a link (e.g. NetFence's
    /// three-channel queue at the bottleneck, TVA+'s hierarchical fair
    /// queues). Return `None` to keep the default.
    fn make_queue(&mut self, _link_index: usize, _spec: &LinkSpec) -> Option<Box<dyn QueueDisc>> {
        None
    }

    /// A host is about to hand a packet to the network: the sender-side shim
    /// may attach headers, set the channel/priority, and grow the wire size.
    fn on_host_send(&mut self, _now: Nanos, _pkt: &mut Packet) {}

    /// A packet arrived at its destination host: the receiver-side shim can
    /// record feedback/capabilities before the transport sees it.
    fn on_host_receive(&mut self, _now: Nanos, _pkt: &Packet) {}

    /// A router is about to enqueue `pkt` on `out_link`. `node` is the
    /// router; `is_access` tells whether it is the packet's access router
    /// (first router after the sending host).
    fn at_router(
        &mut self,
        _now: Nanos,
        _node: NodeId,
        _is_access: bool,
        _out_link: LinkAddr,
        _pkt: &mut Packet,
    ) -> RouterAction {
        RouterAction::Forward
    }

    /// A packet previously delayed by [`RouterAction::Delay`] is being
    /// released.
    fn on_delayed_release(&mut self, _now: Nanos, _pkt: &mut Packet) {}

    /// A packet is being pulled off `link`'s queue for transmission
    /// (bottleneck routers stamp congestion policing feedback here).
    fn on_link_dequeue(&mut self, _now: Nanos, _link: LinkAddr, _pkt: &mut Packet) {}

    /// `link`'s queue dropped a packet.
    fn on_link_drop(&mut self, _now: Nanos, _link: LinkAddr, _pkt: &Packet) {}

    /// Periodic housekeeping (control-interval AIMD, attack detection
    /// EWMAs, …). Called every `tick_interval` of the simulation config.
    fn tick(&mut self, _now: Nanos) {}
}

/// The undefended baseline: every packet is forwarded untouched.
#[derive(Debug, Default)]
pub struct NoDefense;

impl DefenseSystem for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_defense_defaults() {
        let mut d = NoDefense;
        assert_eq!(d.name(), "none");
        let mut p = Packet::udp(0, 1, 2, 100, 0);
        assert_eq!(d.at_router(0, NodeId(0), true, 1, &mut p), RouterAction::Forward);
        d.on_host_send(0, &mut p);
        d.on_host_receive(0, &p);
        d.on_link_dequeue(0, 1, &mut p);
        d.on_link_drop(0, 1, &p);
        d.tick(0);
        assert_eq!(p.size, 100, "defaults must not modify packets");
    }
}
