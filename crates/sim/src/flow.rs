//! Transport flows (the simulator's "agents").
//!
//! A flow owns both endpoints of a conversation: the engine hands it every
//! packet that arrives at either of its hosts and every timer it has armed,
//! and the flow responds with packets to inject and new timers. This keeps
//! the engine free of any transport knowledge.

use crate::packet::{FlowId, HostAddr, Packet};
use crate::time::Nanos;

/// What a flow wants the engine to do after handling an event.
#[derive(Debug, Default)]
pub struct FlowActions {
    /// Packets to inject at their `src` host.
    pub packets: Vec<Packet>,
    /// Timers to arm: absolute fire time and an opaque token returned to the
    /// flow when the timer fires.
    pub timers: Vec<(Nanos, u64)>,
}

impl FlowActions {
    /// No actions.
    pub fn none() -> Self {
        Self::default()
    }

    /// Convenience: a single packet.
    pub fn send(pkt: Packet) -> Self {
        FlowActions { packets: vec![pkt], timers: Vec::new() }
    }

    /// Add a packet.
    pub fn with_packet(mut self, pkt: Packet) -> Self {
        self.packets.push(pkt);
        self
    }

    /// Add a timer.
    pub fn with_timer(mut self, at: Nanos, token: u64) -> Self {
        self.timers.push((at, token));
        self
    }

    /// Merge another action set into this one.
    pub fn merge(&mut self, other: FlowActions) {
        self.packets.extend(other.packets);
        self.timers.extend(other.timers);
    }
}

/// Progress counters exposed by a flow for metrics and experiment output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowProgress {
    /// Application bytes delivered to the destination (goodput).
    pub delivered_bytes: u64,
    /// Packets sent by the source endpoint.
    pub packets_sent: u64,
    /// Completed transfers: (start, end, bytes).
    pub completions: Vec<(Nanos, Nanos, u64)>,
    /// Transfers that were aborted (handshake failures or deadline).
    pub failed_transfers: u64,
    /// Transfers started.
    pub started_transfers: u64,
}

impl FlowProgress {
    /// Average transfer completion time in seconds over completed transfers.
    pub fn avg_transfer_secs(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        let total: f64 = self.completions.iter().map(|(s, e, _)| (*e - *s) as f64 / 1e9).sum();
        Some(total / self.completions.len() as f64)
    }

    /// Fraction of started transfers that completed.
    pub fn completion_ratio(&self) -> f64 {
        let finished = self.completions.len() as u64;
        let attempted = finished + self.failed_transfers;
        if attempted == 0 {
            1.0
        } else {
            finished as f64 / attempted as f64
        }
    }

    /// Average goodput in bits/second over the interval `[start, end]`.
    pub fn goodput_bps(&self, start: Nanos, end: Nanos) -> f64 {
        if end <= start {
            return 0.0;
        }
        self.delivered_bytes as f64 * 8.0 / ((end - start) as f64 / 1e9)
    }
}

/// A transport flow / traffic agent.
pub trait Flow: std::fmt::Debug {
    /// The flow's id (assigned at registration).
    fn id(&self) -> FlowId;
    /// The sending host.
    fn src(&self) -> HostAddr;
    /// The receiving host.
    fn dst(&self) -> HostAddr;
    /// Called once at the flow's start time.
    fn start(&mut self, now: Nanos) -> FlowActions;
    /// A packet belonging to this flow arrived at `at_host` (either
    /// endpoint).
    fn on_packet(&mut self, now: Nanos, pkt: &Packet, at_host: HostAddr) -> FlowActions;
    /// A previously armed timer fired.
    fn on_timer(&mut self, now: Nanos, token: u64) -> FlowActions;
    /// Current progress counters.
    fn progress(&self) -> FlowProgress;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_builders_compose() {
        let p = Packet::udp(0, 1, 2, 100, 0);
        let mut a = FlowActions::send(p).with_timer(5, 7);
        a.merge(FlowActions::none().with_packet(Packet::udp(0, 1, 2, 200, 0)));
        assert_eq!(a.packets.len(), 2);
        assert_eq!(a.timers, vec![(5, 7)]);
    }

    #[test]
    fn progress_statistics() {
        let mut p = FlowProgress::default();
        assert_eq!(p.avg_transfer_secs(), None);
        assert_eq!(p.completion_ratio(), 1.0);
        p.completions.push((0, 2_000_000_000, 20_000));
        p.completions.push((0, 4_000_000_000, 20_000));
        p.failed_transfers = 2;
        assert!((p.avg_transfer_secs().unwrap() - 3.0).abs() < 1e-9);
        assert!((p.completion_ratio() - 0.5).abs() < 1e-9);
        p.delivered_bytes = 1_000_000;
        assert!((p.goodput_bps(0, 8_000_000_000) - 1_000_000.0).abs() < 1.0);
    }
}
