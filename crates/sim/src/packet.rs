//! Packets as they travel through the simulated network.
//!
//! The simulator is payload-free: a packet carries only the metadata needed
//! to route, queue, police and account for it. Defense systems (NetFence,
//! TVA+, StopIt, …) attach their shim headers through the type-erased
//! [`Extension`] mechanism so the simulator core stays independent of any
//! particular protocol.

use std::any::Any;

use crate::time::Nanos;

/// An end-host address (plays the role of an IP address).
pub type HostAddr = u32;
/// An autonomous-system number.
pub type AsNum = u32;
/// A link identifier (the "IP address of the link" used by NetFence
/// feedback).
pub type LinkAddr = u32;
/// Index of a transport flow/agent registered with the simulator.
pub type FlowId = usize;

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP segments (file transfers, web-like traffic).
    Tcp,
    /// UDP datagrams (attack traffic, feedback echo packets).
    Udp,
}

/// The role a TCP segment plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpKind {
    /// Connection request.
    Syn,
    /// Connection accept.
    SynAck,
    /// A data segment.
    Data,
    /// A pure acknowledgment.
    Ack,
}

/// TCP metadata carried by a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegment {
    /// Segment role.
    pub kind: TcpKind,
    /// Identifier of the transfer (connection) within the flow.
    pub transfer: u64,
    /// Data segment index (0-based) for `Data`; echo of the triggering
    /// segment for `Ack`.
    pub seq: u64,
    /// Cumulative acknowledgment: the next segment index expected by the
    /// receiver (valid for `Ack`/`SynAck`).
    pub ack: u64,
    /// True if this is a retransmission (Karn's rule: no RTT sample).
    pub retransmit: bool,
}

/// Forwarding channel assigned to a packet (Figure 2 of the paper). Defense
/// systems set this; queue disciplines may use it for scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChannelClass {
    /// Regular packets (default).
    Regular,
    /// Request packets (capped, priority-scheduled).
    Request,
    /// Legacy traffic (lowest priority).
    Legacy,
}

/// A defense-specific shim header attached to a packet.
///
/// Implemented by the `netfence-systems` crate for NetFence headers,
/// TVA+ capabilities, etc. The simulator treats it as opaque bytes of
/// length [`Extension::wire_len`].
pub trait Extension: std::fmt::Debug {
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Clone into a new boxed extension.
    fn clone_box(&self) -> Box<dyn Extension>;
    /// The number of bytes this header adds to the wire size.
    fn wire_len(&self) -> usize;
}

/// A simulated packet.
#[derive(Debug)]
pub struct Packet {
    /// Unique id (assigned by the engine, used for tracing).
    pub id: u64,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Source host.
    pub src: HostAddr,
    /// Destination host.
    pub dst: HostAddr,
    /// Source AS (filled in by the engine from the topology; defense
    /// systems treat it as the Passport-authenticated source AS).
    pub src_as: AsNum,
    /// Bytes on the wire, including transport/IP headers and any attached
    /// shim headers.
    pub size: usize,
    /// Transport protocol.
    pub protocol: Protocol,
    /// TCP metadata, when `protocol == Tcp`.
    pub tcp: Option<TcpSegment>,
    /// Forwarding channel (set by the defense system; `Regular` for
    /// undefended networks).
    pub channel: ChannelClass,
    /// Request-packet priority level (0 = lowest).
    pub priority: u8,
    /// Time the packet was created at the sending host.
    pub created_at: Nanos,
    /// Defense-specific shim header.
    pub ext: Option<Box<dyn Extension>>,
}

impl Clone for Packet {
    fn clone(&self) -> Self {
        Packet { ext: self.ext.as_ref().map(|e| e.clone_box()), tcp: self.tcp, ..*self }
    }
}

impl Packet {
    /// Create a UDP packet of `size` bytes.
    pub fn udp(flow: FlowId, src: HostAddr, dst: HostAddr, size: usize, now: Nanos) -> Self {
        Packet {
            id: 0,
            flow,
            src,
            dst,
            src_as: 0,
            size,
            protocol: Protocol::Udp,
            tcp: None,
            channel: ChannelClass::Regular,
            priority: 0,
            created_at: now,
            ext: None,
        }
    }

    /// Create a TCP packet with the given segment metadata and wire size.
    pub fn tcp(
        flow: FlowId,
        src: HostAddr,
        dst: HostAddr,
        size: usize,
        seg: TcpSegment,
        now: Nanos,
    ) -> Self {
        Packet { protocol: Protocol::Tcp, tcp: Some(seg), ..Packet::udp(flow, src, dst, size, now) }
    }

    /// Convenience accessor: downcast the extension to a concrete type.
    pub fn ext_as<T: 'static>(&self) -> Option<&T> {
        self.ext.as_ref().and_then(|e| e.as_any().downcast_ref::<T>())
    }

    /// Convenience accessor: mutable downcast of the extension.
    pub fn ext_as_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.ext.as_mut().and_then(|e| e.as_any_mut().downcast_mut::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Tag(u32);
    impl Extension for Tag {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn clone_box(&self) -> Box<dyn Extension> {
            Box::new(self.clone())
        }
        fn wire_len(&self) -> usize {
            4
        }
    }

    #[test]
    fn udp_constructor_defaults() {
        let p = Packet::udp(3, 10, 20, 1500, 99);
        assert_eq!(p.protocol, Protocol::Udp);
        assert_eq!(p.channel, ChannelClass::Regular);
        assert_eq!(p.size, 1500);
        assert!(p.tcp.is_none());
        assert!(p.ext.is_none());
    }

    #[test]
    fn tcp_constructor_carries_segment() {
        let seg =
            TcpSegment { kind: TcpKind::Data, transfer: 1, seq: 7, ack: 0, retransmit: false };
        let p = Packet::tcp(1, 10, 20, 1540, seg, 0);
        assert_eq!(p.protocol, Protocol::Tcp);
        assert_eq!(p.tcp.unwrap().seq, 7);
    }

    #[test]
    fn extension_roundtrip_and_clone() {
        let mut p = Packet::udp(0, 1, 2, 100, 0);
        p.ext = Some(Box::new(Tag(42)));
        assert_eq!(p.ext_as::<Tag>(), Some(&Tag(42)));
        p.ext_as_mut::<Tag>().unwrap().0 = 43;
        let q = p.clone();
        assert_eq!(q.ext_as::<Tag>(), Some(&Tag(43)));
        assert_eq!(q.ext.as_ref().unwrap().wire_len(), 4);
        // Downcast to the wrong type yields None.
        assert!(q.ext_as::<u64>().is_none());
    }

    #[test]
    fn channel_ordering() {
        assert!(ChannelClass::Regular < ChannelClass::Request);
        assert!(ChannelClass::Request < ChannelClass::Legacy);
    }
}
