//! # netfence-sim
//!
//! A deterministic, packet-level, discrete-event network simulator — the
//! ns-2 substitute used to reproduce the NetFence evaluation (see
//! `DESIGN.md` at the repository root for the substitution argument).
//!
//! The crate provides:
//!
//! * an event-driven [`engine::Simulator`] with per-link serialization,
//!   propagation delay and pluggable queue disciplines ([`queue`]);
//! * transport agents: a simplified TCP Reno ([`tcp`]) and UDP constant
//!   bit-rate / synchronized on-off senders ([`udp`]);
//! * the web-like workload generator the paper uses ([`webtraffic`]);
//! * topology builders ([`topology`]) and measurement helpers
//!   ([`metrics`]);
//! * the per-node deployment API ([`deploy`]) through which DoS defense
//!   systems (NetFence, TVA+, StopIt, fair queuing — implemented in
//!   `netfence-systems`) install host shims and router agents on the
//!   deploying subset of the network, coordinate over a control-plane bus
//!   and report typed post-run counters.
//!
//! The simulator knows nothing about any specific defense: shim headers ride
//! along as type-erased [`packet::Extension`]s, and nodes whose AS does not
//! deploy are legacy nodes with no agents at all.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deploy;
pub mod engine;
pub mod flow;
pub mod metrics;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod udp;
pub mod webtraffic;

/// Commonly used re-exports.
pub mod prelude {
    pub use crate::deploy::{
        ChannelVerdict, ControlChannel, ControlMsg, ControlPlane, DefenseFactory, DefenseReport,
        DeployMap, Deployment, DeploymentBuilder, DeploymentSpec, Endpoint, HostShim, LinkRef,
        NoDefense, Placement, QueueFactory, RouterAction, RouterAgent, RouterFault,
    };
    pub use crate::engine::{FaultAction, SimConfig, Simulator};
    pub use crate::flow::{Flow, FlowActions, FlowProgress};
    pub use crate::metrics::{fairness_index, mean_ratio, Metrics};
    pub use crate::packet::{
        AsNum, ChannelClass, Extension, FlowId, HostAddr, LinkAddr, Packet, Protocol, TcpKind,
        TcpSegment,
    };
    pub use crate::queue::{
        Classifier, DropTail, DrrQueue, DualChannelQueue, HierDrrQueue, PriorityLevelQueue,
        QueueDisc, RedQueue,
    };
    pub use crate::rng::SimRng;
    pub use crate::tcp::{TcpConfig, TcpFlow, TcpWorkload};
    pub use crate::time::{secs, to_secs, Nanos, MICRO, MILLI, SEC};
    pub use crate::topology::{Network, NetworkBuilder, NodeId, QueueKind};
    pub use crate::udp::{UdpFlow, UdpPattern};
    pub use crate::webtraffic::WebWorkload;
    pub use netfence_telemetry::{
        DropBudget, DropCause, DropLedger, EngineProfile, FlightRecorder, HopEvent, HopStage,
        TelemetryConfig, Timeline, TimelineRow,
    };
}

pub use prelude::*;
