//! Simulated time.
//!
//! The simulator measures time in nanoseconds since the start of the run.
//! All protocol code (in `netfence-core`) takes the same representation, so
//! timestamps flow through without conversion.

/// Nanoseconds since the start of the simulation.
pub type Nanos = u64;

/// One microsecond.
pub const MICRO: Nanos = 1_000;
/// One millisecond.
pub const MILLI: Nanos = 1_000_000;
/// One second.
pub const SEC: Nanos = 1_000_000_000;

/// Convert seconds (floating point) to [`Nanos`].
#[inline]
pub fn secs(s: f64) -> Nanos {
    (s * SEC as f64).round() as Nanos
}

/// Convert [`Nanos`] to floating-point seconds.
#[inline]
pub fn to_secs(t: Nanos) -> f64 {
    t as f64 / SEC as f64
}

/// The time needed to serialize `bytes` onto a link of `bps` bits/second.
#[inline]
pub fn transmission_time(bytes: usize, bps: u64) -> Nanos {
    if bps == 0 {
        return Nanos::MAX / 4;
    }
    (bytes as u128 * 8 * SEC as u128 / bps as u128) as Nanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(secs(1.5), 1_500_000_000);
        assert!((to_secs(250 * MILLI) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn serialization_time() {
        // 1500 B at 10 Mbps = 1.2 ms.
        assert_eq!(transmission_time(1500, 10_000_000), 1_200_000);
        // 40 B at 1 Gbps = 320 ns.
        assert_eq!(transmission_time(40, 1_000_000_000), 320);
        // Zero-capacity links never finish (guard against divide by zero).
        assert!(transmission_time(1, 0) > SEC);
    }
}
