//! Deterministic random numbers for reproducible simulations.
//!
//! Every run is seeded explicitly; two runs with the same seed and the same
//! configuration produce byte-identical results, which is what lets the
//! experiment harnesses and the test-suite assert on simulation outcomes.

use crate::time::Nanos;

/// A seeded random number generator with the distribution helpers the
/// workloads need.
///
/// Implemented as a self-contained xoshiro256** generator seeded through
/// SplitMix64 (the reference seeding procedure), so the simulator has no
/// external dependencies and its streams are stable across toolchains — a
/// prerequisite for the byte-identical `Record` determinism the experiment
/// API guarantees.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// One SplitMix64 step: advances `x` and returns the mixed output. Used for
/// seeding xoshiro state and for deriving stable per-flow seeds.
pub fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
        }
    }

    /// The next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform floating point value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        // Debiased multiply-shift (Lemire); the retry loop terminates fast
        // for every range size.
        let span = hi - lo;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform duration in `[lo, hi)`.
    pub fn uniform_time(&mut self, lo: Nanos, hi: Nanos) -> Nanos {
        self.uniform_u64(lo, hi)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.unit().max(1e-12);
        -mean * u.ln()
    }

    /// Pareto distributed value with scale `xm` and shape `alpha`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u: f64 = self.unit().max(1e-12);
        xm / u.powf(1.0 / alpha)
    }

    /// Fork a new generator whose seed is derived from this one (used to
    /// give every flow its own stream so that adding a flow does not perturb
    /// the others).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same =
            (0..32).filter(|_| a.uniform_u64(0, 1 << 30) == b.uniform_u64(0, 1 << 30)).count();
        assert!(same < 4);
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "sample mean {mean}");
    }

    #[test]
    fn pareto_bounds_and_heavy_tail() {
        let mut r = SimRng::new(42);
        let mut max = 0.0f64;
        for _ in 0..20_000 {
            let v = r.pareto(2.0, 1.2);
            assert!(v >= 2.0);
            max = max.max(v);
        }
        assert!(max > 50.0, "a heavy tail should produce large samples, max {max}");
    }

    #[test]
    fn uniform_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform(0.1, 0.2);
            assert!((0.1..0.2).contains(&v));
        }
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.uniform_u64(0, 1 << 20), fb.uniform_u64(0, 1 << 20));
        let mut fa2 = a.fork(2);
        assert_ne!(fa.uniform_u64(0, 1 << 20), fa2.uniform_u64(0, 1 << 20));
    }
}
