//! Deterministic random numbers for reproducible simulations.
//!
//! Every run is seeded explicitly; two runs with the same seed and the same
//! configuration produce byte-identical results, which is what lets the
//! experiment harnesses and the test-suite assert on simulation outcomes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::Nanos;

/// A seeded random number generator with the distribution helpers the
/// workloads need.
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Uniform floating point value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform duration in `[lo, hi)`.
    pub fn uniform_time(&mut self, lo: Nanos, hi: Nanos) -> Nanos {
        self.inner.gen_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.unit().max(1e-12);
        -mean * u.ln()
    }

    /// Pareto distributed value with scale `xm` and shape `alpha`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u: f64 = self.unit().max(1e-12);
        xm / u.powf(1.0 / alpha)
    }

    /// Fork a new generator whose seed is derived from this one (used to
    /// give every flow its own stream so that adding a flow does not perturb
    /// the others).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform_u64(0, 1 << 30) == b.uniform_u64(0, 1 << 30)).count();
        assert!(same < 4);
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "sample mean {mean}");
    }

    #[test]
    fn pareto_bounds_and_heavy_tail() {
        let mut r = SimRng::new(42);
        let mut max = 0.0f64;
        for _ in 0..20_000 {
            let v = r.pareto(2.0, 1.2);
            assert!(v >= 2.0);
            max = max.max(v);
        }
        assert!(max > 50.0, "a heavy tail should produce large samples, max {max}");
    }

    #[test]
    fn uniform_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform(0.1, 0.2);
            assert!((0.1..0.2).contains(&v));
        }
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.uniform_u64(0, 1 << 20), fb.uniform_u64(0, 1 << 20));
        let mut fa2 = a.fork(2);
        assert_ne!(fa.uniform_u64(0, 1 << 20), fa2.uniform_u64(0, 1 << 20));
    }
}
