//! Simulation-wide measurements: per-link counters and the aggregate
//! statistics the experiments report (throughput ratio, Jain fairness
//! index, utilization).
//!
//! The per-link counters are dense `Vec`s indexed by link id (links are
//! dense already), so the per-packet hot path never hashes; the
//! `LinkAddr → index` map is consulted only by post-run readers. Every
//! drop is additionally recorded with a typed [`DropCause`] in an
//! always-on [`DropLedger`], replacing the old single
//! `defense_drop_pkts` counter.

use std::collections::HashMap;

use netfence_telemetry::{DropBudget, DropCause, DropLedger, EngineProfile};

use crate::packet::LinkAddr;
use crate::time::Nanos;
use crate::topology::LinkSpec;

/// Per-link and global counters collected by the engine.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    /// Bytes transmitted per link, indexed by dense link id.
    link_tx_bytes: Vec<u64>,
    /// Packets transmitted per link, indexed by dense link id.
    link_tx_pkts: Vec<u64>,
    /// Packets dropped by each link's queue, indexed by dense link id.
    link_drop_pkts: Vec<u64>,
    /// Post-run lookup from protocol-level link address to dense index.
    link_index: HashMap<LinkAddr, usize>,
    /// Packets dropped outside link queues (agents, policers, routing).
    defense_drops: u64,
    /// Packets delivered to destination hosts.
    pub delivered_pkts: u64,
    /// Total packets injected by flows.
    pub injected_pkts: u64,
    /// Simulated time at which the run ended.
    pub end_time: Nanos,
    /// Typed per-cause drop accounting (always on).
    pub drops: DropLedger,
    /// Event-loop profiling counters (always on).
    pub profile: EngineProfile,
}

impl Metrics {
    /// Metrics sized for a network with the given links.
    pub fn for_links(links: &[LinkSpec]) -> Self {
        Metrics {
            link_tx_bytes: vec![0; links.len()],
            link_tx_pkts: vec![0; links.len()],
            link_drop_pkts: vec![0; links.len()],
            link_index: links.iter().enumerate().map(|(i, l)| (l.addr, i)).collect(),
            drops: DropLedger::new(links.len()),
            ..Metrics::default()
        }
    }

    /// Register one transmitted packet of `bytes` on link `idx`.
    #[inline]
    pub(crate) fn record_tx(&mut self, idx: usize, bytes: u64) {
        self.link_tx_bytes[idx] += bytes;
        self.link_tx_pkts[idx] += 1;
    }

    /// Register one queue drop of flow `flow` on link `idx`.
    #[inline]
    pub(crate) fn record_link_drop(&mut self, idx: usize, flow: u64, cause: DropCause) {
        self.link_drop_pkts[idx] += 1;
        self.drops.record(Some(idx), flow, cause);
        self.profile.drops += 1;
    }

    /// Register one node-level drop (agent verdict, policer, routing) of
    /// flow `flow`.
    #[inline]
    pub(crate) fn record_defense_drop(&mut self, flow: u64, cause: DropCause) {
        self.defense_drops += 1;
        self.drops.record(None, flow, cause);
        self.profile.drops += 1;
    }

    /// Dense index of a link address, if the link exists.
    fn idx(&self, link: LinkAddr) -> Option<usize> {
        self.link_index.get(&link).copied()
    }

    /// Bytes transmitted on a link.
    pub fn link_tx_bytes(&self, link: LinkAddr) -> u64 {
        self.idx(link).map_or(0, |i| self.link_tx_bytes[i])
    }

    /// Packets transmitted on a link.
    pub fn link_tx_pkts(&self, link: LinkAddr) -> u64 {
        self.idx(link).map_or(0, |i| self.link_tx_pkts[i])
    }

    /// Packets dropped by a link's queue.
    pub fn link_drop_pkts(&self, link: LinkAddr) -> u64 {
        self.idx(link).map_or(0, |i| self.link_drop_pkts[i])
    }

    /// Typed drop budget of a link's queue.
    pub fn link_budget(&self, link: LinkAddr) -> DropBudget {
        self.idx(link).map_or_else(DropBudget::default, |i| self.drops.link(i))
    }

    /// Packets dropped outside link queues (rate limiters, filters,
    /// policers, routing failures).
    pub fn defense_drop_pkts(&self) -> u64 {
        self.defense_drops
    }

    /// Queue drops summed over every link.
    pub fn queue_drop_pkts(&self) -> u64 {
        self.link_drop_pkts.iter().sum()
    }

    /// All drops of the run: queue drops plus node-level drops. Always
    /// equal to the drop ledger's total (the telemetry property tests pin
    /// this).
    pub fn total_drop_pkts(&self) -> u64 {
        self.queue_drop_pkts() + self.defense_drops
    }

    /// Utilization of a link over the whole run. Saturates to `0.0` on a
    /// zero-length run, an unknown link or a zero-capacity link instead of
    /// dividing by zero.
    pub fn utilization(&self, link: LinkAddr, capacity_bps: u64) -> f64 {
        if self.end_time == 0 || capacity_bps == 0 {
            return 0.0;
        }
        let bits = self.link_tx_bytes(link) as f64 * 8.0;
        bits / (capacity_bps as f64 * self.end_time as f64 / 1e9)
    }

    /// Loss rate of a link (drops / (drops + transmissions)). Saturates to
    /// `0.0` when the link never carried or dropped a packet — including
    /// the zero-length run where nothing moved at all.
    pub fn loss_rate(&self, link: LinkAddr) -> f64 {
        let drops = self.link_drop_pkts(link) as f64;
        let tx = self.link_tx_pkts(link) as f64;
        if drops + tx == 0.0 {
            0.0
        } else {
            drops / (drops + tx)
        }
    }
}

/// Jain's fairness index of a set of throughputs: `(Σx)² / (n·Σx²)`.
pub fn fairness_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (values.len() as f64 * sq)
    }
}

/// The ratio between the mean of `numerators` and the mean of
/// `denominators` (e.g. average legitimate-user throughput over average
/// attacker throughput — Figure 9's metric). Returns `None` when the
/// denominator set is empty or has zero mean.
pub fn mean_ratio(numerators: &[f64], denominators: &[f64]) -> Option<f64> {
    if numerators.is_empty() || denominators.is_empty() {
        return None;
    }
    let num = numerators.iter().sum::<f64>() / numerators.len() as f64;
    let den = denominators.iter().sum::<f64>() / denominators.len() as f64;
    if den == 0.0 {
        None
    } else {
        Some(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MILLI, SEC};
    use crate::topology::QueueKind;

    fn one_link() -> Vec<LinkSpec> {
        vec![LinkSpec {
            addr: 1,
            from: crate::topology::NodeId(0),
            to: crate::topology::NodeId(1),
            capacity: 20_000_000,
            delay: MILLI,
            queue: QueueKind::DropTail,
        }]
    }

    #[test]
    fn utilization_and_loss() {
        let mut m = Metrics::for_links(&one_link());
        m.end_time = 10 * SEC;
        for _ in 0..999 {
            m.record_tx(0, 12_500);
        }
        m.record_tx(0, 12_500); // 100 Mbit over 10 s = 10 Mbps
        for _ in 0..250 {
            m.record_link_drop(0, 0, DropCause::QueueOverflow);
        }
        assert!((m.utilization(1, 20_000_000) - 0.5).abs() < 1e-9);
        assert!((m.loss_rate(1) - 0.2).abs() < 1e-9);
        assert_eq!(m.utilization(2, 20_000_000), 0.0);
        assert_eq!(m.loss_rate(2), 0.0);
    }

    #[test]
    fn utilization_saturates_on_zero_length_runs() {
        let mut m = Metrics::for_links(&one_link());
        m.record_tx(0, 12_500);
        // end_time stays 0: a run that never advanced must report zero
        // utilization, not a division by zero.
        assert_eq!(m.end_time, 0);
        assert_eq!(m.utilization(1, 20_000_000), 0.0);
        assert!(m.utilization(1, 20_000_000).is_finite());
        // Zero capacity saturates the same way.
        m.end_time = SEC;
        assert_eq!(m.utilization(1, 0), 0.0);
    }

    #[test]
    fn loss_rate_saturates_on_zero_length_runs() {
        let m = Metrics::for_links(&one_link());
        // Nothing transmitted, nothing dropped: loss is 0, not NaN.
        assert_eq!(m.loss_rate(1), 0.0);
        assert!(m.loss_rate(1).is_finite());
        // An unknown link behaves the same.
        assert_eq!(m.loss_rate(99), 0.0);
    }

    #[test]
    fn drop_accounting_is_typed_and_consistent() {
        let mut m = Metrics::for_links(&one_link());
        m.record_link_drop(0, 3, DropCause::QueueOverflow);
        m.record_link_drop(0, 3, DropCause::LegacyDemotion);
        m.record_defense_drop(4, DropCause::StopItFilter);
        assert_eq!(m.queue_drop_pkts(), 2);
        assert_eq!(m.defense_drop_pkts(), 1);
        assert_eq!(m.total_drop_pkts(), 3);
        assert_eq!(m.drops.total().total(), m.total_drop_pkts());
        assert_eq!(m.link_budget(1).get(DropCause::QueueOverflow), 1);
        assert_eq!(m.link_budget(1).get(DropCause::LegacyDemotion), 1);
        assert_eq!(m.drops.flow(3).total(), 2);
        assert_eq!(m.profile.drops, 3);
    }

    #[test]
    fn fairness_index_properties() {
        assert!((fairness_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((fairness_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(fairness_index(&[]), 1.0);
    }

    #[test]
    fn ratios() {
        assert_eq!(mean_ratio(&[1.0, 3.0], &[2.0, 2.0]), Some(1.0));
        assert_eq!(mean_ratio(&[], &[1.0]), None);
        assert_eq!(mean_ratio(&[1.0], &[0.0]), None);
    }
}
