//! Simulation-wide measurements: per-link counters and the aggregate
//! statistics the experiments report (throughput ratio, Jain fairness
//! index, utilization).

use std::collections::HashMap;

use crate::packet::LinkAddr;
use crate::time::Nanos;

/// Per-link and global counters collected by the engine.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    /// Bytes transmitted per link.
    pub link_tx_bytes: HashMap<LinkAddr, u64>,
    /// Packets transmitted per link.
    pub link_tx_pkts: HashMap<LinkAddr, u64>,
    /// Packets dropped by each link's queue.
    pub link_drop_pkts: HashMap<LinkAddr, u64>,
    /// Packets dropped by the defense system (rate limiters, filters, …).
    pub defense_drop_pkts: u64,
    /// Packets delivered to destination hosts.
    pub delivered_pkts: u64,
    /// Total packets injected by flows.
    pub injected_pkts: u64,
    /// Simulated time at which the run ended.
    pub end_time: Nanos,
}

impl Metrics {
    /// Utilization of a link over the whole run.
    pub fn utilization(&self, link: LinkAddr, capacity_bps: u64) -> f64 {
        if self.end_time == 0 || capacity_bps == 0 {
            return 0.0;
        }
        let bits = self.link_tx_bytes.get(&link).copied().unwrap_or(0) as f64 * 8.0;
        bits / (capacity_bps as f64 * self.end_time as f64 / 1e9)
    }

    /// Loss rate of a link (drops / (drops + transmissions)).
    pub fn loss_rate(&self, link: LinkAddr) -> f64 {
        let drops = self.link_drop_pkts.get(&link).copied().unwrap_or(0) as f64;
        let tx = self.link_tx_pkts.get(&link).copied().unwrap_or(0) as f64;
        if drops + tx == 0.0 {
            0.0
        } else {
            drops / (drops + tx)
        }
    }
}

/// Jain's fairness index of a set of throughputs: `(Σx)² / (n·Σx²)`.
pub fn fairness_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (values.len() as f64 * sq)
    }
}

/// The ratio between the mean of `numerators` and the mean of
/// `denominators` (e.g. average legitimate-user throughput over average
/// attacker throughput — Figure 9's metric). Returns `None` when the
/// denominator set is empty or has zero mean.
pub fn mean_ratio(numerators: &[f64], denominators: &[f64]) -> Option<f64> {
    if numerators.is_empty() || denominators.is_empty() {
        return None;
    }
    let num = numerators.iter().sum::<f64>() / numerators.len() as f64;
    let den = denominators.iter().sum::<f64>() / denominators.len() as f64;
    if den == 0.0 {
        None
    } else {
        Some(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SEC;

    #[test]
    fn utilization_and_loss() {
        let mut m = Metrics { end_time: 10 * SEC, ..Default::default() };
        m.link_tx_bytes.insert(1, 12_500_000); // 100 Mbit over 10 s = 10 Mbps
        m.link_tx_pkts.insert(1, 1000);
        m.link_drop_pkts.insert(1, 250);
        assert!((m.utilization(1, 20_000_000) - 0.5).abs() < 1e-9);
        assert!((m.loss_rate(1) - 0.2).abs() < 1e-9);
        assert_eq!(m.utilization(2, 20_000_000), 0.0);
        assert_eq!(m.loss_rate(2), 0.0);
    }

    #[test]
    fn fairness_index_properties() {
        assert!((fairness_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((fairness_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(fairness_index(&[]), 1.0);
    }

    #[test]
    fn ratios() {
        assert_eq!(mean_ratio(&[1.0, 3.0], &[2.0, 2.0]), Some(1.0));
        assert_eq!(mean_ratio(&[], &[1.0]), None);
        assert_eq!(mean_ratio(&[1.0], &[0.0]), None);
    }
}
