//! The discrete-event simulation engine.
//!
//! The engine owns the network, the per-link queues, the transport flows and
//! the deployed defense agents, and drives them from a single event heap.
//! Packets move through the same stations a real forwarding path has:
//!
//! 1. a flow injects a packet at its source host; the host's deployed shim
//!    (if any) may attach headers ([`HostShim::on_send`]);
//! 2. at every router the local agent (if any) decides to forward, delay
//!    (rate-limit) or drop the packet ([`RouterAgent::at_router`]); legacy
//!    routers forward blindly;
//!
//! [`HostShim::on_send`]: crate::deploy::HostShim::on_send
//! [`RouterAgent::at_router`]: crate::deploy::RouterAgent::at_router
//! [`ControlPlane`]: crate::deploy::ControlPlane
//! 3. the packet waits in the outgoing link's queue discipline, is
//!    serialized at link speed, propagates, and arrives at the next node;
//!    the link's owning router agent observes dequeues and drops
//!    (congestion feedback stamping, attack detection);
//! 4. at the destination host the receiver shim sees it first, then the
//!    owning flow (which may answer with ACKs, echoes, …).
//!
//! Agents are indexed by dense node id and links by dense index — the
//! per-packet fast path never hashes to find a defense agent. Out-of-band
//! coordination (key exchange, filter requests) travels on the deployment's
//! [`ControlPlane`] bus, drained after every event.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use netfence_telemetry::{
    DropCause, FlightRecorder, HopEvent, HopStage, TelemetryConfig, Timeline,
};

use crate::deploy::{
    ChannelVerdict, ControlMsg, DefenseFactory, DefenseReport, Deployment, DeploymentSpec,
    Endpoint, LinkRef, RouterAction, RouterFault,
};
use crate::flow::{Flow, FlowActions, FlowProgress};
use crate::metrics::Metrics;
use crate::packet::{ChannelClass, FlowId, Packet};
use crate::queue::{DropTail, QueueDisc, RedQueue};
use crate::time::{transmission_time, Nanos, MILLI, SEC};
use crate::topology::{Network, NodeId, QueueKind};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated duration.
    pub end_time: Nanos,
    /// Interval between agent `tick` calls.
    pub defense_tick: Nanos,
    /// How long an idle link waits before re-asking a queue that withheld
    /// its packets (strictly capped request channels). Smaller values cost
    /// more events but release capped traffic sooner; tiny-scale tests can
    /// shrink it to tighten timing.
    pub link_poll_interval: Nanos,
    /// Seed recorded for reproducibility (the engine itself is
    /// deterministic; flows draw their randomness from their own seeded
    /// generators).
    pub seed: u64,
    /// Interval between per-flow goodput samples (see
    /// [`Simulator::samples`]). `0` (the default) disables sampling and
    /// adds no events at all.
    pub sample_interval: Nanos,
    /// Gated telemetry observers (timeline probes ride the sample clock,
    /// the flight recorder hash-samples packet ids). The default is fully
    /// disabled; enabling observers never changes simulation behavior —
    /// the always-on drop ledger and engine profile are maintained
    /// regardless.
    pub telemetry: TelemetryConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            end_time: 10 * SEC,
            defense_tick: 100 * MILLI,
            link_poll_interval: 2 * MILLI,
            seed: 1,
            sample_interval: 0,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// A fault injected into the running simulation as a first-class engine
/// event (see [`Simulator::schedule_fault`]).
///
/// Faults are scheduled from the outside (by a fault plan compiled against
/// the topology) and consume no engine randomness: a run with no scheduled
/// faults is event-for-event identical to a run on an engine without the
/// fault machinery at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Take a link down. Every packet queued on the link is lost as a
    /// typed [`DropCause::LinkDown`] drop, the packet being serialized (if
    /// any) is lost when its transmission completes, and routes are
    /// recomputed over the surviving topology. Down-link drops are *not*
    /// reported to the owning agent's `on_link_drop` — a dead link carries
    /// no congestion feedback.
    LinkDown {
        /// Dense link index ([`Network::links`]).
        link: usize,
    },
    /// Restore a previously failed link and recompute routes over the
    /// healed topology. A no-op if the link is already up.
    LinkUp {
        /// Dense link index ([`Network::links`]).
        link: usize,
    },
    /// Deliver a [`RouterFault`] (reboot, key desync, clock skew, memory
    /// pressure) to the agent deployed at `node`. Legacy nodes without an
    /// agent ignore router faults.
    Router {
        /// The faulted router.
        node: NodeId,
        /// What happens to it.
        fault: RouterFault,
    },
}

#[derive(Debug)]
enum EventKind {
    FlowStart {
        flow: FlowId,
    },
    FlowTimer {
        flow: FlowId,
        token: u64,
    },
    Arrive {
        node: NodeId,
        pkt: Packet,
    },
    TransmitDone {
        link: usize,
    },
    /// Re-poll an idle link whose queue declined to release a packet (e.g.
    /// a strictly capped request channel waiting for tokens).
    LinkPoll {
        link: usize,
    },
    ReleaseDelayed {
        /// The router whose agent delayed the packet (it is notified on
        /// release so its rate limiter can account for the departure).
        node: NodeId,
        out_link: usize,
        pkt: Packet,
    },
    DefenseTick,
    /// A control-plane message whose transport verdict deferred delivery
    /// to a later simulated time (latency, retransmission, outage hold).
    ControlDeliver {
        msg: ControlMsg,
    },
    /// Record one per-flow goodput sample (only scheduled when
    /// `sample_interval > 0`).
    Sample,
    /// An injected fault (only scheduled via [`Simulator::schedule_fault`]).
    Fault {
        action: FaultAction,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: Nanos,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so the BinaryHeap acts as a min-heap on (at, seq).
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct LinkState {
    queue: Box<dyn QueueDisc>,
    busy: bool,
    in_flight: Option<Packet>,
    poll_pending: bool,
}

/// The simulator.
pub struct Simulator {
    /// Engine configuration.
    pub cfg: SimConfig,
    /// The static network.
    pub net: Network,
    /// The deployed defense under test.
    pub deployment: Deployment,
    /// Collected counters.
    pub metrics: Metrics,
    /// Gated time-series probes (disabled unless
    /// [`SimConfig::telemetry`] enables the timeline).
    pub timeline: Timeline,
    /// Gated hash-sampled packet tracer (disabled unless
    /// [`SimConfig::telemetry`] sets a sample shift).
    pub flight: FlightRecorder,
    links: Vec<LinkState>,
    /// Owning (sending-side) node of each link, for dense agent dispatch.
    link_owner: Vec<NodeId>,
    /// Which links are currently failed (set/cleared by [`FaultAction`]s).
    link_down: Vec<bool>,
    flows: Vec<Box<dyn Flow>>,
    events: BinaryHeap<Scheduled>,
    seq: u64,
    now: Nanos,
    next_pkt_id: u64,
    flow_samples: Vec<(Nanos, Vec<u64>)>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("flows", &self.flows.len())
            .field("links", &self.links.len())
            .field("defense", &self.deployment.name)
            .finish()
    }
}

impl Simulator {
    /// Create a simulator for `net` with the defense `deployment` installed.
    /// Control-plane messages queued at deploy time (key announcements,
    /// pre-installed filters) are delivered before the first event.
    pub fn new(net: Network, mut deployment: Deployment, cfg: SimConfig) -> Self {
        assert_eq!(
            deployment.hosts.len(),
            net.nodes.len(),
            "deployment was built for a different network"
        );
        let mut links = Vec::with_capacity(net.links.len());
        let mut link_owner = Vec::with_capacity(net.links.len());
        for (i, spec) in net.links.iter().enumerate() {
            let queue = deployment.queues.make_queue(i, spec).unwrap_or_else(|| match spec.queue {
                QueueKind::DropTail => {
                    Box::new(DropTail::new(((spec.capacity / 8) / 5).max(15_000) as usize))
                        as Box<dyn QueueDisc>
                }
                QueueKind::Red => {
                    Box::new(RedQueue::for_capacity(spec.capacity, cfg.seed ^ i as u64))
                }
            });
            links.push(LinkState { queue, busy: false, in_flight: None, poll_pending: false });
            link_owner.push(spec.from);
        }
        let timeline = if cfg.telemetry.timeline {
            Timeline::new(cfg.telemetry.timeline_capacity)
        } else {
            Timeline::disabled()
        };
        let flight = match cfg.telemetry.trace_sample_shift {
            Some(shift) => FlightRecorder::new(shift, cfg.telemetry.trace_capacity),
            None => FlightRecorder::disabled(),
        };
        let metrics = Metrics::for_links(&net.links);
        let link_down = vec![false; links.len()];
        let mut sim = Simulator {
            cfg,
            net,
            deployment,
            metrics,
            timeline,
            flight,
            links,
            link_owner,
            link_down,
            flows: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            next_pkt_id: 0,
            flow_samples: Vec::new(),
        };
        // Deliver deploy-time coordination (e.g. the Passport key exchange
        // announcements) before anything moves.
        sim.drain_control();
        sim
    }

    /// A simulator with no defense deployed anywhere.
    pub fn undefended(net: Network, cfg: SimConfig) -> Self {
        let deployment = Deployment::undefended(&net);
        Simulator::new(net, deployment, cfg)
    }

    /// Deploy `factory` onto `net` per `spec` and build the simulator.
    pub fn deploy(
        net: Network,
        factory: &dyn DefenseFactory,
        spec: &DeploymentSpec,
        cfg: SimConfig,
    ) -> Self {
        let deployment = factory.deploy(&net, spec);
        Simulator::new(net, deployment, cfg)
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The merged typed report of the deployed defense, with the engine's
    /// always-on drop budget folded in.
    pub fn report(&self) -> DefenseReport {
        let mut out = self.deployment.report();
        out.drop_budget = *self.metrics.drops.total();
        out
    }

    /// Register a flow and schedule its start. The closure receives the
    /// flow's id.
    pub fn add_flow<F>(&mut self, start_at: Nanos, make: F) -> FlowId
    where
        F: FnOnce(FlowId) -> Box<dyn Flow>,
    {
        let id = self.flows.len();
        self.flows.push(make(id));
        self.schedule(start_at, EventKind::FlowStart { flow: id });
        id
    }

    /// Progress counters of one flow.
    pub fn progress(&self, flow: FlowId) -> FlowProgress {
        self.flows[flow].progress()
    }

    /// Progress counters of every flow, indexed by flow id.
    pub fn all_progress(&self) -> Vec<FlowProgress> {
        self.flows.iter().map(|f| f.progress()).collect()
    }

    /// Source and destination of a flow.
    pub fn flow_endpoints(&self, flow: FlowId) -> (u32, u32) {
        (self.flows[flow].src(), self.flows[flow].dst())
    }

    /// Per-flow goodput samples: one `(time, delivered_bytes per flow id)`
    /// entry every `sample_interval` (empty when sampling is off).
    pub fn samples(&self) -> &[(Nanos, Vec<u64>)] {
        &self.flow_samples
    }

    fn schedule(&mut self, at: Nanos, kind: EventKind) {
        self.seq += 1;
        self.events.push(Scheduled { at: at.max(self.now), seq: self.seq, kind });
    }

    /// Schedule a fault to fire at simulated time `at`. Faults are ordinary
    /// heap events: with none scheduled the event sequence — and therefore
    /// every derived counter and sample — is byte-identical to a fault-free
    /// run.
    pub fn schedule_fault(&mut self, at: Nanos, action: FaultAction) {
        self.schedule(at, EventKind::Fault { action });
    }

    /// Whether link `link` is currently failed.
    pub fn link_is_down(&self, link: usize) -> bool {
        self.link_down.get(link).copied().unwrap_or(false)
    }

    /// Run the simulation to `cfg.end_time`.
    pub fn run(&mut self) {
        self.schedule(self.cfg.defense_tick, EventKind::DefenseTick);
        if self.cfg.sample_interval > 0 {
            self.schedule(self.cfg.sample_interval, EventKind::Sample);
        }
        while let Some(ev) = self.events.pop() {
            if ev.at > self.cfg.end_time {
                break;
            }
            self.now = ev.at;
            self.handle(ev.kind);
            self.drain_control();
        }
        self.now = self.cfg.end_time;
        self.metrics.end_time = self.cfg.end_time;
    }

    /// Route queued control-plane messages until the bus is quiet. Each
    /// message is planned by the installed [`ControlChannel`] (or the
    /// instant-reliable default): immediate verdicts deliver synchronously
    /// at the current simulated time, deferred verdicts become
    /// `ControlDeliver` events, and lost messages are counted and dropped.
    /// A generous round bound turns an agent pair ping-ponging messages at
    /// a frozen timestamp into a diagnosable panic instead of a silent
    /// hang.
    ///
    /// [`ControlChannel`]: crate::deploy::ControlChannel
    fn drain_control(&mut self) {
        const MAX_ROUNDS: usize = 10_000;
        for round in 0.. {
            assert!(
                round < MAX_ROUNDS,
                "control-plane messages still flowing after {MAX_ROUNDS} delivery rounds at \
                 t={} — agents are ping-ponging messages without advancing time",
                self.now
            );
            let msgs = self.deployment.bus.take_outbox();
            if msgs.is_empty() {
                return;
            }
            for msg in msgs {
                let verdict = self.deployment.bus.plan_delivery(self.now, &msg);
                match verdict {
                    ChannelVerdict::Deliver { at, retransmits } => {
                        self.deployment.bus.retransmits += retransmits as u64;
                        if at <= self.now {
                            self.deliver_control(msg);
                        } else {
                            self.schedule(at, EventKind::ControlDeliver { msg });
                        }
                    }
                    ChannelVerdict::Lost { retransmits } => {
                        self.deployment.bus.retransmits += retransmits as u64;
                        self.deployment.bus.lost += 1;
                    }
                }
            }
        }
    }

    /// Hand one control message to its destination agent (or count it as
    /// undeliverable at a legacy node).
    fn deliver_control(&mut self, msg: ControlMsg) {
        let Deployment { hosts, routers, bus, .. } = &mut self.deployment;
        match msg.to {
            Endpoint::Host(node) => match hosts[node.0].as_mut() {
                Some(shim) => {
                    bus.delivered += 1;
                    bus.set_sender(Some(Endpoint::Host(node)));
                    shim.on_control(self.now, msg.payload, bus);
                }
                None => bus.undeliverable += 1,
            },
            Endpoint::Router(node) => match routers[node.0].as_mut() {
                Some(agent) => {
                    bus.delivered += 1;
                    bus.set_sender(Some(Endpoint::Router(node)));
                    agent.on_control(self.now, msg.payload, bus);
                }
                None => bus.undeliverable += 1,
            },
        }
    }

    fn handle(&mut self, kind: EventKind) {
        self.metrics.profile.events += 1;
        match kind {
            EventKind::FlowStart { flow } => {
                self.metrics.profile.flow_events += 1;
                let actions = self.flows[flow].start(self.now);
                self.apply_actions(flow, actions);
            }
            EventKind::FlowTimer { flow, token } => {
                self.metrics.profile.flow_events += 1;
                let actions = self.flows[flow].on_timer(self.now, token);
                self.apply_actions(flow, actions);
            }
            EventKind::DefenseTick => {
                self.metrics.profile.tick_events += 1;
                let Deployment { hosts, routers, bus, .. } = &mut self.deployment;
                for (i, agent) in routers.iter_mut().enumerate() {
                    if let Some(agent) = agent {
                        bus.set_sender(Some(Endpoint::Router(NodeId(i))));
                        agent.tick(self.now, bus);
                    }
                }
                for (i, shim) in hosts.iter_mut().enumerate() {
                    if let Some(shim) = shim {
                        bus.set_sender(Some(Endpoint::Host(NodeId(i))));
                        shim.tick(self.now, bus);
                    }
                }
                if self.now + self.cfg.defense_tick <= self.cfg.end_time {
                    self.schedule(self.now + self.cfg.defense_tick, EventKind::DefenseTick);
                }
            }
            EventKind::Arrive { node, pkt } => {
                self.metrics.profile.arrive_events += 1;
                self.packet_at_node(node, pkt)
            }
            EventKind::TransmitDone { link } => {
                self.metrics.profile.link_events += 1;
                self.transmit_done(link)
            }
            EventKind::LinkPoll { link } => {
                self.metrics.profile.link_events += 1;
                self.links[link].poll_pending = false;
                if !self.links[link].busy {
                    self.try_transmit(link);
                }
            }
            EventKind::ReleaseDelayed { node, out_link, mut pkt } => {
                self.metrics.profile.release_events += 1;
                let Deployment { routers, bus, .. } = &mut self.deployment;
                if let Some(agent) = routers[node.0].as_mut() {
                    bus.set_sender(Some(Endpoint::Router(node)));
                    agent.on_delayed_release(self.now, &mut pkt, bus);
                }
                self.enqueue_on_link(out_link, pkt);
            }
            EventKind::ControlDeliver { msg } => {
                self.metrics.profile.control_events += 1;
                self.deliver_control(msg)
            }
            EventKind::Sample => {
                self.metrics.profile.sample_events += 1;
                let sample = self.flows.iter().map(|f| f.progress().delivered_bytes).collect();
                self.flow_samples.push((self.now, sample));
                if self.timeline.is_enabled() {
                    self.probe_timeline();
                }
                if self.now + self.cfg.sample_interval <= self.cfg.end_time {
                    self.schedule(self.now + self.cfg.sample_interval, EventKind::Sample);
                }
            }
            EventKind::Fault { action } => {
                self.apply_fault(action);
            }
        }
    }

    /// Apply one injected fault at the current instant.
    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::LinkDown { link } => {
                if self.link_down.get(link).copied().unwrap_or(true) {
                    return;
                }
                self.link_down[link] = true;
                self.mark_fault("link-down", self.link_owner[link], Some(link));
                // Everything queued on the failed link is lost. The owning
                // agent is deliberately not told: a dead link produces no
                // congestion feedback.
                let now = self.now;
                let owner = self.link_owner[link];
                for d in self.links[link].queue.drain(now) {
                    self.metrics.record_link_drop(link, d.flow as u64, DropCause::LinkDown);
                    self.trace_hop(
                        &d,
                        owner,
                        Some(link),
                        HopStage::Drop,
                        Some(DropCause::LinkDown),
                    );
                }
                self.net.recompute_routes(&self.link_down);
            }
            FaultAction::LinkUp { link } => {
                if !self.link_down.get(link).copied().unwrap_or(false) {
                    return;
                }
                self.link_down[link] = false;
                self.mark_fault("link-up", self.link_owner[link], Some(link));
                self.net.recompute_routes(&self.link_down);
                if !self.links[link].busy {
                    self.try_transmit(link);
                }
            }
            FaultAction::Router { node, fault } => {
                let label = match fault {
                    RouterFault::Reboot => "reboot",
                    RouterFault::KeyDesync => "key-desync",
                    RouterFault::ClockSkew { .. } => "clock-skew",
                    RouterFault::MemoryPressure { .. } => "memory-pressure",
                };
                self.mark_fault(label, node, None);
                let Deployment { routers, bus, .. } = &mut self.deployment;
                if let Some(agent) = routers[node.0].as_mut() {
                    bus.set_sender(Some(Endpoint::Router(node)));
                    agent.on_fault(self.now, fault, bus);
                }
            }
        }
    }

    /// Stamp one fault into the gated observers: a `fault` timeline row and
    /// an unconditional (when tracing is on) flight-recorder mark with
    /// `pkt = 0`, so packet traces can be read against the fault schedule.
    fn mark_fault(&mut self, label: &str, node: NodeId, link: Option<usize>) {
        if self.timeline.is_enabled() {
            let key = match link {
                Some(li) => format!("{label}:link:{}", self.net.links[li].addr),
                None => format!("{label}:node:{}", node.0),
            };
            self.timeline.record(self.now, "fault", key, 1.0);
        }
        if self.flight.is_enabled() {
            self.flight.record(HopEvent {
                at: self.now,
                pkt: 0,
                flow: 0,
                node: node.0 as u32,
                link: link.map(|l| l as u32),
                stage: HopStage::Fault,
                cause: None,
            });
        }
    }

    /// Sample queue depths, agent state and control-transport state into
    /// the timeline. Only called on the sample clock when the timeline is
    /// enabled; everything recorded here is read-only observation.
    fn probe_timeline(&mut self) {
        let now = self.now;
        for (i, state) in self.links.iter().enumerate() {
            let pkts = state.queue.len_pkts();
            if pkts > 0 {
                let key = format!("link:{}", self.net.links[i].addr);
                self.timeline.record(now, "queue_depth_pkts", key.clone(), pkts as f64);
                self.timeline.record(now, "queue_depth_bytes", key, state.queue.len_bytes() as f64);
            }
        }
        for agent in self.deployment.routers.iter().flatten() {
            agent.probe(now, &mut self.timeline);
        }
        self.deployment.bus.probe(now, &mut self.timeline);
    }

    fn apply_actions(&mut self, flow: FlowId, actions: FlowActions) {
        let FlowActions { packets, timers } = actions;
        for (at, token) in timers {
            self.schedule(at, EventKind::FlowTimer { flow, token });
        }
        for mut pkt in packets {
            self.next_pkt_id += 1;
            pkt.id = self.next_pkt_id;
            pkt.flow = flow;
            pkt.src_as = self.net.as_of_host(pkt.src);
            self.metrics.injected_pkts += 1;
            let node = self.net.host_node(pkt.src);
            if self.flight.sampled(pkt.id) {
                self.flight.record(HopEvent {
                    at: self.now,
                    pkt: pkt.id,
                    flow: flow as u64,
                    node: node.0 as u32,
                    link: None,
                    stage: HopStage::Inject,
                    cause: None,
                });
            }
            let Deployment { hosts, bus, .. } = &mut self.deployment;
            if let Some(shim) = hosts[node.0].as_mut() {
                bus.set_sender(Some(Endpoint::Host(node)));
                shim.on_send(self.now, &mut pkt, bus);
            }
            self.forward_from(node, pkt);
        }
    }

    /// Record one flight-recorder hop for `pkt` if it is in the traced
    /// sample.
    #[inline]
    fn trace_hop(
        &mut self,
        pkt: &Packet,
        node: NodeId,
        link: Option<usize>,
        stage: HopStage,
        cause: Option<DropCause>,
    ) {
        if self.flight.sampled(pkt.id) {
            self.flight.record(HopEvent {
                at: self.now,
                pkt: pkt.id,
                flow: pkt.flow as u64,
                node: node.0 as u32,
                link: link.map(|l| l as u32),
                stage,
                cause,
            });
        }
    }

    fn packet_at_node(&mut self, node: NodeId, pkt: Packet) {
        if let Some(addr) = self.net.nodes[node.0].host_addr() {
            if addr != pkt.dst {
                // Mis-delivered packet (should not happen with consistent
                // routing); count it as a drop.
                self.metrics.record_defense_drop(pkt.flow as u64, DropCause::Misrouted);
                self.trace_hop(&pkt, node, None, HopStage::Drop, Some(DropCause::Misrouted));
                return;
            }
            let Deployment { hosts, bus, .. } = &mut self.deployment;
            if let Some(shim) = hosts[node.0].as_mut() {
                bus.set_sender(Some(Endpoint::Host(node)));
                shim.on_receive(self.now, &pkt, bus);
            }
            self.metrics.delivered_pkts += 1;
            self.trace_hop(&pkt, node, None, HopStage::Deliver, None);
            let flow = pkt.flow;
            if flow < self.flows.len() {
                let actions = self.flows[flow].on_packet(self.now, &pkt, addr);
                self.apply_actions(flow, actions);
            }
            return;
        }
        self.forward_from(node, pkt);
    }

    fn forward_from(&mut self, node: NodeId, mut pkt: Packet) {
        self.metrics.profile.forwards += 1;
        let Some(out_link) = self.net.next_hop(node, pkt.dst) else {
            self.metrics.record_defense_drop(pkt.flow as u64, DropCause::NoRoute);
            self.trace_hop(&pkt, node, None, HopStage::Drop, Some(DropCause::NoRoute));
            return;
        };
        let is_host = self.net.nodes[node.0].host_addr().is_some();
        if is_host {
            // The sending host's uplink: no router processing.
            self.enqueue_on_link(out_link, pkt);
            return;
        }
        let link = LinkRef { index: out_link, addr: self.net.links[out_link].addr };
        let Deployment { routers, bus, .. } = &mut self.deployment;
        let had_agent = routers[node.0].is_some();
        let action = match routers[node.0].as_mut() {
            Some(agent) => {
                let is_access = self.net.access_router_of(pkt.src) == Some(node);
                bus.set_sender(Some(Endpoint::Router(node)));
                agent.at_router(self.now, is_access, link, &mut pkt, bus)
            }
            // A legacy router forwards blindly.
            None => RouterAction::Forward,
        };
        if had_agent {
            self.trace_hop(&pkt, node, Some(out_link), HopStage::Verdict, None);
        }
        match action {
            RouterAction::Forward => self.enqueue_on_link(out_link, pkt),
            RouterAction::Delay { release_at } => {
                self.schedule(release_at, EventKind::ReleaseDelayed { node, out_link, pkt });
            }
            RouterAction::Drop(cause) => {
                self.metrics.record_defense_drop(pkt.flow as u64, cause);
                self.trace_hop(&pkt, node, Some(out_link), HopStage::Drop, Some(cause));
            }
        }
    }

    /// Typed cause of a queue-level drop: which channel the dropped packet
    /// was riding tells which budget it lost (request quota, legacy
    /// starvation, plain overflow).
    fn queue_drop_cause(pkt: &Packet) -> DropCause {
        match pkt.channel {
            ChannelClass::Request => DropCause::RequestQuota,
            ChannelClass::Legacy => DropCause::LegacyDemotion,
            ChannelClass::Regular => DropCause::QueueOverflow,
        }
    }

    fn enqueue_on_link(&mut self, link_idx: usize, pkt: Packet) {
        let now = self.now;
        self.metrics.profile.enqueues += 1;
        let owner = self.link_owner[link_idx];
        if self.link_down[link_idx] {
            // The link failed after routing chose it (stale route window or
            // a delayed release): the packet is lost on the dead link.
            self.metrics.record_link_drop(link_idx, pkt.flow as u64, DropCause::LinkDown);
            self.trace_hop(&pkt, owner, Some(link_idx), HopStage::Drop, Some(DropCause::LinkDown));
            return;
        }
        self.trace_hop(&pkt, owner, Some(link_idx), HopStage::Enqueue, None);
        let dropped = self.links[link_idx].queue.enqueue(now, pkt);
        if !dropped.is_empty() {
            let addr = self.net.links[link_idx].addr;
            let link = LinkRef { index: link_idx, addr };
            for d in dropped {
                let cause = Simulator::queue_drop_cause(&d);
                self.metrics.record_link_drop(link_idx, d.flow as u64, cause);
                self.trace_hop(&d, owner, Some(link_idx), HopStage::Drop, Some(cause));
                if let Some(agent) = self.deployment.routers[owner.0].as_mut() {
                    agent.on_link_drop(now, link, &d);
                }
            }
        }
        if !self.links[link_idx].busy {
            self.try_transmit(link_idx);
        }
    }

    /// Ask an idle link's queue for the next packet; if the queue has
    /// packets but withholds them (strict caps), poll again shortly.
    fn try_transmit(&mut self, link_idx: usize) {
        if self.link_down[link_idx] {
            return;
        }
        let now = self.now;
        match self.links[link_idx].queue.dequeue(now) {
            Some(pkt) => self.start_transmission(link_idx, pkt),
            None => {
                if self.links[link_idx].queue.len_pkts() > 0 && !self.links[link_idx].poll_pending {
                    self.links[link_idx].poll_pending = true;
                    let poll = self.cfg.link_poll_interval.max(1);
                    self.schedule(now + poll, EventKind::LinkPoll { link: link_idx });
                }
            }
        }
    }

    fn start_transmission(&mut self, link_idx: usize, mut pkt: Packet) {
        let spec = self.net.links[link_idx];
        let owner = self.link_owner[link_idx];
        if let Some(agent) = self.deployment.routers[owner.0].as_mut() {
            agent.on_link_dequeue(self.now, LinkRef { index: link_idx, addr: spec.addr }, &mut pkt);
        }
        self.metrics.record_tx(link_idx, pkt.size as u64);
        self.metrics.profile.dequeues += 1;
        self.trace_hop(&pkt, owner, Some(link_idx), HopStage::Dequeue, None);
        let ser = transmission_time(pkt.size, spec.capacity);
        self.links[link_idx].busy = true;
        self.links[link_idx].in_flight = Some(pkt);
        self.schedule(self.now + ser, EventKind::TransmitDone { link: link_idx });
    }

    fn transmit_done(&mut self, link_idx: usize) {
        let spec = self.net.links[link_idx];
        if let Some(pkt) = self.links[link_idx].in_flight.take() {
            if self.link_down[link_idx] {
                // The link failed mid-serialization: the packet is lost.
                let owner = self.link_owner[link_idx];
                self.metrics.record_link_drop(link_idx, pkt.flow as u64, DropCause::LinkDown);
                self.trace_hop(
                    &pkt,
                    owner,
                    Some(link_idx),
                    HopStage::Drop,
                    Some(DropCause::LinkDown),
                );
            } else {
                self.schedule(self.now + spec.delay, EventKind::Arrive { node: spec.to, pkt });
            }
        }
        self.links[link_idx].busy = false;
        self.try_transmit(link_idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{ControlPlane, Deployment, HostShim, RouterAgent};
    use crate::rng::SimRng;
    use crate::tcp::{TcpConfig, TcpFlow, TcpWorkload};
    use crate::topology::QueueKind;
    use crate::udp::UdpFlow;

    const HOST_A: u32 = 0x0a_00_00_01;
    const HOST_B: u32 = 0x0b_00_00_01;

    /// host A — r1 —(bottleneck)— r2 — host B
    fn dumbbell(bottleneck_bps: u64) -> (Network, u32) {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        let (fwd, _rev) = b.duplex(r1, r2, bottleneck_bps, 10 * MILLI, QueueKind::Red);
        b.host(HOST_A, 1, r1, 100_000_000, MILLI);
        b.host(HOST_B, 2, r2, 100_000_000, MILLI);
        let net = b.build();
        let bottleneck_addr = net.links[fwd].addr;
        (net, bottleneck_addr)
    }

    #[test]
    fn tcp_file_transfer_end_to_end() {
        let (net, _addr) = dumbbell(10_000_000);
        let mut sim =
            Simulator::undefended(net, SimConfig { end_time: 20 * SEC, ..Default::default() });
        let flow = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                HOST_A,
                HOST_B,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(3),
            ))
        });
        sim.run();
        let p = sim.progress(flow);
        assert!(p.completions.len() > 20, "completed {} transfers", p.completions.len());
        assert_eq!(p.failed_transfers, 0);
        // RTT is ~24 ms and the file fits in a few windows: average transfer
        // time well under a second on an idle 10 Mbps path.
        assert!(p.avg_transfer_secs().unwrap() < 0.5);
    }

    #[test]
    fn udp_overload_is_limited_by_bottleneck() {
        let (net, bottleneck) = dumbbell(1_000_000);
        let mut sim =
            Simulator::undefended(net, SimConfig { end_time: 10 * SEC, ..Default::default() });
        let flow = sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 5_000_000)));
        sim.run();
        let p = sim.progress(flow);
        // Goodput cannot exceed the 1 Mbps bottleneck.
        let goodput = p.goodput_bps(0, 10 * SEC);
        assert!(goodput < 1_050_000.0, "goodput {goodput}");
        assert!(goodput > 800_000.0, "goodput {goodput}");
        // The queue must have dropped the excess.
        assert!(sim.metrics.link_drop_pkts(bottleneck) > 1000);
        // Every queue drop is typed: a UDP flood on the regular channel
        // bleeds out as queue overflow, and the ledger agrees with the
        // untyped totals.
        assert_eq!(
            sim.metrics.link_budget(bottleneck).get(DropCause::QueueOverflow),
            sim.metrics.link_drop_pkts(bottleneck)
        );
        assert_eq!(sim.metrics.drops.total().total(), sim.metrics.total_drop_pkts());
        // Utilization of the bottleneck is essentially 100%.
        assert!(sim.metrics.utilization(bottleneck, 1_000_000) > 0.9);
    }

    #[test]
    fn two_tcp_flows_share_the_bottleneck() {
        // Two senders in AS 1 share a 2 Mbps bottleneck toward host B.
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        b.duplex(r1, r2, 2_000_000, 10 * MILLI, QueueKind::Red);
        b.host(HOST_A, 1, r1, 100_000_000, MILLI);
        b.host(HOST_A + 1, 1, r1, 100_000_000, MILLI);
        b.host(HOST_B, 2, r2, 100_000_000, MILLI);
        let net = b.build();

        let mut sim =
            Simulator::undefended(net, SimConfig { end_time: 30 * SEC, ..Default::default() });
        let f1 = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                HOST_A,
                HOST_B,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(3),
            ))
        });
        let f2 = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                HOST_A + 1,
                HOST_B,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(4),
            ))
        });
        sim.run();
        let g1 = sim.progress(f1).goodput_bps(0, 30 * SEC);
        let g2 = sim.progress(f2).goodput_bps(0, 30 * SEC);
        let total = g1 + g2;
        assert!(total > 1_500_000.0, "total goodput {total}");
        let ratio = g1.max(g2) / g1.min(g2).max(1.0);
        assert!(ratio < 2.5, "long-run TCP shares should be roughly fair: {g1} vs {g2}");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let (net, bottleneck) = dumbbell(1_000_000);
            let mut sim =
                Simulator::undefended(net, SimConfig { end_time: 5 * SEC, ..Default::default() });
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 3_000_000)));
            sim.add_flow(0, |id| {
                Box::new(TcpFlow::new(
                    id,
                    HOST_A,
                    HOST_B,
                    TcpWorkload::RepeatedFile { bytes: 20_000, gap: 50 * MILLI },
                    TcpConfig::default(),
                    SimRng::new(9),
                ))
            });
            sim.run();
            (
                sim.metrics.link_tx_pkts(bottleneck),
                sim.metrics.link_drop_pkts(bottleneck),
                sim.progress(1).completions.len(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn router_agent_drop_action_is_honored() {
        /// An agent that drops every UDP packet at its router.
        #[derive(Debug)]
        struct DropUdp;
        impl RouterAgent for DropUdp {
            fn at_router(
                &mut self,
                _now: Nanos,
                _is_access: bool,
                _out_link: LinkRef,
                pkt: &mut Packet,
                _ctl: &mut ControlPlane,
            ) -> RouterAction {
                if pkt.protocol == crate::packet::Protocol::Udp {
                    RouterAction::Drop(DropCause::StopItFilter)
                } else {
                    RouterAction::Forward
                }
            }
        }
        let (net, _) = dumbbell(1_000_000);
        let mut b = Deployment::builder(&net, "drop-udp");
        for (i, node) in net.nodes.iter().enumerate() {
            if node.host_addr().is_none() {
                b.router_agent(NodeId(i), Box::new(DropUdp));
            }
        }
        let deployment = b.build();
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 5 * SEC, ..Default::default() });
        let flow = sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 1_000_000)));
        sim.run();
        assert_eq!(sim.progress(flow).delivered_bytes, 0);
        assert!(sim.metrics.defense_drop_pkts() > 100);
        // The typed budget carries the cause the agent stated, and the
        // report surfaces it.
        let report = sim.report();
        assert_eq!(
            report.drop_budget.get(DropCause::StopItFilter),
            sim.metrics.defense_drop_pkts()
        );
        assert_eq!(report.drop_budget.total(), sim.metrics.total_drop_pkts());
        assert_eq!(report.router_agents, 2);
    }

    #[test]
    fn control_messages_reach_agents_and_legacy_nodes_bounce() {
        /// A host shim that asks its access router to count packets.
        #[derive(Debug)]
        struct Pinger;
        impl HostShim for Pinger {
            fn on_send(&mut self, _now: Nanos, pkt: &mut Packet, ctl: &mut ControlPlane) {
                ctl.to_access_router_of(pkt.src, "ping");
                // And one message to a legacy host that has no shim.
                ctl.to_host(HOST_B, "void");
            }
        }
        #[derive(Debug, Default)]
        struct Counter {
            pings: u64,
        }
        impl RouterAgent for Counter {
            fn on_control(
                &mut self,
                _now: Nanos,
                msg: Box<dyn std::any::Any>,
                _ctl: &mut ControlPlane,
            ) {
                if msg.downcast_ref::<&str>() == Some(&"ping") {
                    self.pings += 1;
                }
            }
            fn report(&self, out: &mut DefenseReport) {
                out.filters += self.pings as usize;
            }
        }
        let (net, _) = dumbbell(1_000_000);
        let r1 = net.access_router_of(HOST_A).unwrap();
        let mut b = Deployment::builder(&net, "ping");
        b.host_shim(HOST_A, Box::new(Pinger));
        b.router_agent(r1, Box::new(Counter::default()));
        let deployment = b.build();
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: SEC, ..Default::default() });
        sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 500_000)));
        sim.run();
        let report = sim.report();
        assert!(report.filters > 10, "pings: {}", report.filters);
        assert_eq!(report.control_delivered, report.filters as u64);
        // The messages to the shim-less HOST_B were dropped and counted.
        assert_eq!(report.control_undeliverable, report.control_delivered);
    }

    #[test]
    fn telemetry_observers_never_change_the_run() {
        let run = |telemetry: TelemetryConfig| {
            let (net, bottleneck) = dumbbell(1_000_000);
            let mut sim = Simulator::undefended(
                net,
                SimConfig {
                    end_time: 5 * SEC,
                    sample_interval: 500 * MILLI,
                    telemetry,
                    ..Default::default()
                },
            );
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 3_000_000)));
            sim.run();
            (
                sim.metrics.link_tx_pkts(bottleneck),
                sim.metrics.link_drop_pkts(bottleneck),
                sim.metrics.profile,
                sim.flight.len(),
                sim.timeline.len(),
            )
        };
        let off = run(TelemetryConfig::default());
        let on = run(TelemetryConfig::full(0));
        // Counters and profile are byte-identical whether or not the gated
        // observers ran…
        assert_eq!((off.0, off.1, off.2), (on.0, on.1, on.2));
        // …and only the enabled run actually captured anything.
        assert_eq!((off.3, off.4), (0, 0));
        assert!(on.3 > 0, "flight recorder captured nothing");
        assert!(on.4 > 0, "timeline captured nothing");
    }

    #[test]
    fn link_poll_interval_is_configurable() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.link_poll_interval, 2 * MILLI);
        let tight = SimConfig { link_poll_interval: 100, ..Default::default() };
        assert_eq!(tight.link_poll_interval, 100);
    }

    #[test]
    fn link_failure_reroutes_to_surviving_path() {
        // r1 —(direct)— r2 plus a two-hop detour r1 — r3 — r2.
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        let r3 = b.router(3, false);
        let (direct, _) = b.duplex(r1, r2, 10_000_000, 5 * MILLI, QueueKind::DropTail);
        b.duplex(r1, r3, 10_000_000, 5 * MILLI, QueueKind::DropTail);
        b.duplex(r3, r2, 10_000_000, 5 * MILLI, QueueKind::DropTail);
        b.host(HOST_A, 1, r1, 100_000_000, MILLI);
        b.host(HOST_B, 2, r2, 100_000_000, MILLI);
        let net = b.build();
        let mut sim =
            Simulator::undefended(net, SimConfig { end_time: 4 * SEC, ..Default::default() });
        let flow = sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 20_000_000)));
        sim.schedule_fault(2 * SEC, FaultAction::LinkDown { link: direct });
        sim.run();
        assert!(sim.link_is_down(direct));
        // Packets queued (or in flight) on the failed link died as typed
        // link-down drops…
        assert!(sim.metrics.drops.total().get(DropCause::LinkDown) > 0);
        // …and BFS moved the flow onto the detour: the bottleneck keeps
        // passing ~10 Mbps for the whole run, outage or not.
        let goodput = sim.progress(flow).goodput_bps(0, 4 * SEC);
        assert!(goodput > 8_000_000.0, "goodput {goodput}");
        assert_ne!(sim.net.next_hop(r1, HOST_B), Some(direct));
    }

    #[test]
    fn link_failure_without_detour_starves_until_restore() {
        let (net, bottleneck) = dumbbell(1_000_000);
        let link = net.links.iter().position(|l| l.addr == bottleneck).unwrap();
        let mut sim = Simulator::undefended(
            net,
            SimConfig { end_time: 6 * SEC, sample_interval: 500 * MILLI, ..Default::default() },
        );
        let flow = sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 500_000)));
        sim.schedule_fault(2 * SEC, FaultAction::LinkDown { link });
        sim.schedule_fault(4 * SEC, FaultAction::LinkUp { link });
        sim.run();
        // With no surviving path, senders see typed no-route drops for the
        // duration of the outage.
        let no_route = sim.metrics.drops.total().get(DropCause::NoRoute);
        assert!(no_route > 50, "no-route drops: {no_route}");
        let at =
            |t: Nanos| sim.samples().iter().find(|(ts, _)| *ts == t).map(|(_, v)| v[flow]).unwrap();
        // Delivery is flat across the heart of the outage and resumes
        // after the restore.
        assert_eq!(at(3 * SEC), at(4 * SEC));
        assert!(at(6 * SEC) > at(4 * SEC) + 100_000);
    }

    #[test]
    fn router_faults_reach_the_agent_and_skip_legacy_nodes() {
        #[derive(Debug, Default)]
        struct FaultCounter {
            seen: Vec<RouterFault>,
        }
        impl RouterAgent for FaultCounter {
            fn on_fault(&mut self, _now: Nanos, fault: RouterFault, _ctl: &mut ControlPlane) {
                self.seen.push(fault);
            }
            fn report(&self, out: &mut DefenseReport) {
                out.filters += self.seen.len();
            }
        }
        let (net, _) = dumbbell(1_000_000);
        let r1 = net.access_router_of(HOST_A).unwrap();
        let r2 = net.access_router_of(HOST_B).unwrap();
        let mut b = Deployment::builder(&net, "fault-counter");
        b.router_agent(r1, Box::new(FaultCounter::default()));
        let deployment = b.build();
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: SEC, ..Default::default() });
        sim.schedule_fault(
            100 * MILLI,
            FaultAction::Router { node: r1, fault: RouterFault::Reboot },
        );
        sim.schedule_fault(
            200 * MILLI,
            FaultAction::Router { node: r1, fault: RouterFault::ClockSkew { offset_ns: 5 } },
        );
        // r2 has no agent: the fault lands on a legacy node and vanishes.
        sim.schedule_fault(
            300 * MILLI,
            FaultAction::Router { node: r2, fault: RouterFault::Reboot },
        );
        sim.run();
        assert_eq!(sim.report().filters, 2);
    }

    #[test]
    fn fault_marks_land_in_timeline_and_trace() {
        let (net, bottleneck) = dumbbell(1_000_000);
        let link = net.links.iter().position(|l| l.addr == bottleneck).unwrap();
        let mut sim = Simulator::undefended(
            net,
            SimConfig { end_time: SEC, telemetry: TelemetryConfig::full(0), ..Default::default() },
        );
        sim.schedule_fault(100 * MILLI, FaultAction::LinkDown { link });
        sim.schedule_fault(200 * MILLI, FaultAction::LinkUp { link });
        sim.run();
        let keys: Vec<_> =
            sim.timeline.rows().filter(|r| r.series == "fault").map(|r| r.key.clone()).collect();
        assert_eq!(keys.len(), 2, "fault rows: {keys:?}");
        assert!(keys[0].starts_with("link-down:"));
        assert!(keys[1].starts_with("link-up:"));
        let marks = sim.flight.events().filter(|e| e.stage == HopStage::Fault).count();
        assert_eq!(marks, 2);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let run = || {
            let (net, bottleneck) = dumbbell(1_000_000);
            let link = net.links.iter().position(|l| l.addr == bottleneck).unwrap();
            let mut sim =
                Simulator::undefended(net, SimConfig { end_time: 5 * SEC, ..Default::default() });
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 3_000_000)));
            sim.schedule_fault(SEC, FaultAction::LinkDown { link });
            sim.schedule_fault(2 * SEC, FaultAction::LinkUp { link });
            sim.run();
            (
                sim.metrics.link_tx_pkts(bottleneck),
                sim.metrics.drops.total().get(DropCause::LinkDown),
                sim.metrics.drops.total().get(DropCause::NoRoute),
                sim.progress(0).delivered_bytes,
            )
        };
        assert_eq!(run(), run());
    }
}
