//! The discrete-event simulation engine.
//!
//! The engine owns the network, the per-link queues, the transport flows and
//! the defense system, and drives them from a single event heap. Packets
//! move through the same stations a real forwarding path has:
//!
//! 1. a flow injects a packet at its source host; the defense's sender shim
//!    may attach headers ([`DefenseSystem::on_host_send`]);
//! 2. at every router the defense decides to forward, delay (rate-limit) or
//!    drop the packet ([`DefenseSystem::at_router`]);
//! 3. the packet waits in the outgoing link's queue discipline, is
//!    serialized at link speed, propagates, and arrives at the next node;
//!    the defense observes dequeues and drops (congestion feedback
//!    stamping, attack detection);
//! 4. at the destination host the defense's receiver shim sees it first,
//!    then the owning flow (which may answer with ACKs, echoes, …).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::defense::{DefenseSystem, RouterAction};
use crate::flow::{Flow, FlowActions, FlowProgress};
use crate::metrics::Metrics;
use crate::packet::{FlowId, Packet};
use crate::queue::{DropTail, QueueDisc, RedQueue};
use crate::time::{transmission_time, Nanos, MILLI, SEC};
use crate::topology::{Network, NodeId, QueueKind};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated duration.
    pub end_time: Nanos,
    /// Interval between [`DefenseSystem::tick`] calls.
    pub defense_tick: Nanos,
    /// Seed recorded for reproducibility (the engine itself is
    /// deterministic; flows draw their randomness from their own seeded
    /// generators).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { end_time: 10 * SEC, defense_tick: 100 * MILLI, seed: 1 }
    }
}

#[derive(Debug)]
enum EventKind {
    FlowStart {
        flow: FlowId,
    },
    FlowTimer {
        flow: FlowId,
        token: u64,
    },
    Arrive {
        node: NodeId,
        pkt: Packet,
    },
    TransmitDone {
        link: usize,
    },
    /// Re-poll an idle link whose queue declined to release a packet (e.g.
    /// a strictly capped request channel waiting for tokens).
    LinkPoll {
        link: usize,
    },
    ReleaseDelayed {
        out_link: usize,
        pkt: Packet,
    },
    DefenseTick,
}

#[derive(Debug)]
struct Scheduled {
    at: Nanos,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so the BinaryHeap acts as a min-heap on (at, seq).
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct LinkState {
    queue: Box<dyn QueueDisc>,
    busy: bool,
    in_flight: Option<Packet>,
    poll_pending: bool,
}

/// How long an idle link waits before re-asking a queue that withheld its
/// packets (strictly capped channels).
const LINK_POLL_INTERVAL: Nanos = 2 * MILLI;

/// The simulator.
pub struct Simulator {
    /// Engine configuration.
    pub cfg: SimConfig,
    /// The static network.
    pub net: Network,
    /// The defense system under test.
    pub defense: Box<dyn DefenseSystem>,
    /// Collected counters.
    pub metrics: Metrics,
    links: Vec<LinkState>,
    flows: Vec<Box<dyn Flow>>,
    events: BinaryHeap<Scheduled>,
    seq: u64,
    now: Nanos,
    next_pkt_id: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("flows", &self.flows.len())
            .field("links", &self.links.len())
            .field("defense", &self.defense.name())
            .finish()
    }
}

impl Simulator {
    /// Create a simulator for `net` defended by `defense`.
    pub fn new(net: Network, mut defense: Box<dyn DefenseSystem>, cfg: SimConfig) -> Self {
        defense.install(&net);
        let mut links = Vec::with_capacity(net.links.len());
        for (i, spec) in net.links.iter().enumerate() {
            let queue = defense.make_queue(i, spec).unwrap_or_else(|| match spec.queue {
                QueueKind::DropTail => {
                    Box::new(DropTail::new(((spec.capacity / 8) / 5).max(15_000) as usize))
                }
                QueueKind::Red => {
                    Box::new(RedQueue::for_capacity(spec.capacity, cfg.seed ^ i as u64))
                }
            });
            links.push(LinkState { queue, busy: false, in_flight: None, poll_pending: false });
        }
        Simulator {
            cfg,
            net,
            defense,
            metrics: Metrics::default(),
            links,
            flows: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            next_pkt_id: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Register a flow and schedule its start. The closure receives the
    /// flow's id.
    pub fn add_flow<F>(&mut self, start_at: Nanos, make: F) -> FlowId
    where
        F: FnOnce(FlowId) -> Box<dyn Flow>,
    {
        let id = self.flows.len();
        self.flows.push(make(id));
        self.schedule(start_at, EventKind::FlowStart { flow: id });
        id
    }

    /// Progress counters of one flow.
    pub fn progress(&self, flow: FlowId) -> FlowProgress {
        self.flows[flow].progress()
    }

    /// Progress counters of every flow, indexed by flow id.
    pub fn all_progress(&self) -> Vec<FlowProgress> {
        self.flows.iter().map(|f| f.progress()).collect()
    }

    /// Source and destination of a flow.
    pub fn flow_endpoints(&self, flow: FlowId) -> (u32, u32) {
        (self.flows[flow].src(), self.flows[flow].dst())
    }

    fn schedule(&mut self, at: Nanos, kind: EventKind) {
        self.seq += 1;
        self.events.push(Scheduled { at: at.max(self.now), seq: self.seq, kind });
    }

    /// Run the simulation to `cfg.end_time`.
    pub fn run(&mut self) {
        self.schedule(self.cfg.defense_tick, EventKind::DefenseTick);
        while let Some(ev) = self.events.pop() {
            if ev.at > self.cfg.end_time {
                break;
            }
            self.now = ev.at;
            self.handle(ev.kind);
        }
        self.now = self.cfg.end_time;
        self.metrics.end_time = self.cfg.end_time;
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::FlowStart { flow } => {
                let actions = self.flows[flow].start(self.now);
                self.apply_actions(flow, actions);
            }
            EventKind::FlowTimer { flow, token } => {
                let actions = self.flows[flow].on_timer(self.now, token);
                self.apply_actions(flow, actions);
            }
            EventKind::DefenseTick => {
                self.defense.tick(self.now);
                if self.now + self.cfg.defense_tick <= self.cfg.end_time {
                    self.schedule(self.now + self.cfg.defense_tick, EventKind::DefenseTick);
                }
            }
            EventKind::Arrive { node, pkt } => self.packet_at_node(node, pkt),
            EventKind::TransmitDone { link } => self.transmit_done(link),
            EventKind::LinkPoll { link } => {
                self.links[link].poll_pending = false;
                if !self.links[link].busy {
                    self.try_transmit(link);
                }
            }
            EventKind::ReleaseDelayed { out_link, mut pkt } => {
                self.defense.on_delayed_release(self.now, &mut pkt);
                self.enqueue_on_link(out_link, pkt);
            }
        }
    }

    fn apply_actions(&mut self, flow: FlowId, actions: FlowActions) {
        let FlowActions { packets, timers } = actions;
        for (at, token) in timers {
            self.schedule(at, EventKind::FlowTimer { flow, token });
        }
        for mut pkt in packets {
            self.next_pkt_id += 1;
            pkt.id = self.next_pkt_id;
            pkt.flow = flow;
            pkt.src_as = self.net.as_of_host(pkt.src);
            self.metrics.injected_pkts += 1;
            self.defense.on_host_send(self.now, &mut pkt);
            let node = self.net.host_node(pkt.src);
            self.forward_from(node, pkt);
        }
    }

    fn packet_at_node(&mut self, node: NodeId, pkt: Packet) {
        if let Some(addr) = self.net.nodes[node.0].host_addr() {
            if addr != pkt.dst {
                // Mis-delivered packet (should not happen with consistent
                // routing); count it as a drop.
                self.metrics.defense_drop_pkts += 1;
                return;
            }
            self.defense.on_host_receive(self.now, &pkt);
            self.metrics.delivered_pkts += 1;
            let flow = pkt.flow;
            if flow < self.flows.len() {
                let actions = self.flows[flow].on_packet(self.now, &pkt, addr);
                self.apply_actions(flow, actions);
            }
            return;
        }
        self.forward_from(node, pkt);
    }

    fn forward_from(&mut self, node: NodeId, mut pkt: Packet) {
        let Some(out_link) = self.net.next_hop(node, pkt.dst) else {
            self.metrics.defense_drop_pkts += 1;
            return;
        };
        let is_host = self.net.nodes[node.0].host_addr().is_some();
        if is_host {
            // The sending host's uplink: no router processing.
            self.enqueue_on_link(out_link, pkt);
            return;
        }
        let is_access = self.net.access_router_of(pkt.src) == Some(node);
        let link_addr = self.net.links[out_link].addr;
        match self.defense.at_router(self.now, node, is_access, link_addr, &mut pkt) {
            RouterAction::Forward => self.enqueue_on_link(out_link, pkt),
            RouterAction::Delay { release_at } => {
                self.schedule(release_at, EventKind::ReleaseDelayed { out_link, pkt });
            }
            RouterAction::Drop => {
                self.metrics.defense_drop_pkts += 1;
            }
        }
    }

    fn enqueue_on_link(&mut self, link_idx: usize, pkt: Packet) {
        let now = self.now;
        let dropped = self.links[link_idx].queue.enqueue(now, pkt);
        if !dropped.is_empty() {
            let addr = self.net.links[link_idx].addr;
            for d in dropped {
                *self.metrics.link_drop_pkts.entry(addr).or_insert(0) += 1;
                self.defense.on_link_drop(now, addr, &d);
            }
        }
        if !self.links[link_idx].busy {
            self.try_transmit(link_idx);
        }
    }

    /// Ask an idle link's queue for the next packet; if the queue has
    /// packets but withholds them (strict caps), poll again shortly.
    fn try_transmit(&mut self, link_idx: usize) {
        let now = self.now;
        match self.links[link_idx].queue.dequeue(now) {
            Some(pkt) => self.start_transmission(link_idx, pkt),
            None => {
                if self.links[link_idx].queue.len_pkts() > 0 && !self.links[link_idx].poll_pending {
                    self.links[link_idx].poll_pending = true;
                    self.schedule(now + LINK_POLL_INTERVAL, EventKind::LinkPoll { link: link_idx });
                }
            }
        }
    }

    fn start_transmission(&mut self, link_idx: usize, mut pkt: Packet) {
        let spec = self.net.links[link_idx];
        self.defense.on_link_dequeue(self.now, spec.addr, &mut pkt);
        *self.metrics.link_tx_bytes.entry(spec.addr).or_insert(0) += pkt.size as u64;
        *self.metrics.link_tx_pkts.entry(spec.addr).or_insert(0) += 1;
        let ser = transmission_time(pkt.size, spec.capacity);
        self.links[link_idx].busy = true;
        self.links[link_idx].in_flight = Some(pkt);
        self.schedule(self.now + ser, EventKind::TransmitDone { link: link_idx });
    }

    fn transmit_done(&mut self, link_idx: usize) {
        let spec = self.net.links[link_idx];
        if let Some(pkt) = self.links[link_idx].in_flight.take() {
            self.schedule(self.now + spec.delay, EventKind::Arrive { node: spec.to, pkt });
        }
        self.links[link_idx].busy = false;
        self.try_transmit(link_idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::NoDefense;
    use crate::rng::SimRng;
    use crate::tcp::{TcpConfig, TcpFlow, TcpWorkload};
    use crate::topology::QueueKind;
    use crate::udp::UdpFlow;

    const HOST_A: u32 = 0x0a_00_00_01;
    const HOST_B: u32 = 0x0b_00_00_01;

    /// host A — r1 —(bottleneck)— r2 — host B
    fn dumbbell(bottleneck_bps: u64) -> (Network, u32) {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        let (fwd, _rev) = b.duplex(r1, r2, bottleneck_bps, 10 * MILLI, QueueKind::Red);
        b.host(HOST_A, 1, r1, 100_000_000, MILLI);
        b.host(HOST_B, 2, r2, 100_000_000, MILLI);
        let net = b.build();
        let bottleneck_addr = net.links[fwd].addr;
        (net, bottleneck_addr)
    }

    #[test]
    fn tcp_file_transfer_end_to_end() {
        let (net, _addr) = dumbbell(10_000_000);
        let mut sim = Simulator::new(
            net,
            Box::new(NoDefense),
            SimConfig { end_time: 20 * SEC, ..Default::default() },
        );
        let flow = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                HOST_A,
                HOST_B,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(3),
            ))
        });
        sim.run();
        let p = sim.progress(flow);
        assert!(p.completions.len() > 20, "completed {} transfers", p.completions.len());
        assert_eq!(p.failed_transfers, 0);
        // RTT is ~24 ms and the file fits in a few windows: average transfer
        // time well under a second on an idle 10 Mbps path.
        assert!(p.avg_transfer_secs().unwrap() < 0.5);
    }

    #[test]
    fn udp_overload_is_limited_by_bottleneck() {
        let (net, bottleneck) = dumbbell(1_000_000);
        let mut sim = Simulator::new(
            net,
            Box::new(NoDefense),
            SimConfig { end_time: 10 * SEC, ..Default::default() },
        );
        let flow = sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 5_000_000)));
        sim.run();
        let p = sim.progress(flow);
        // Goodput cannot exceed the 1 Mbps bottleneck.
        let goodput = p.goodput_bps(0, 10 * SEC);
        assert!(goodput < 1_050_000.0, "goodput {goodput}");
        assert!(goodput > 800_000.0, "goodput {goodput}");
        // The queue must have dropped the excess.
        assert!(sim.metrics.link_drop_pkts[&bottleneck] > 1000);
        // Utilization of the bottleneck is essentially 100%.
        assert!(sim.metrics.utilization(bottleneck, 1_000_000) > 0.9);
    }

    #[test]
    fn two_tcp_flows_share_the_bottleneck() {
        // Two senders in AS 1 share a 2 Mbps bottleneck toward host B.
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        b.duplex(r1, r2, 2_000_000, 10 * MILLI, QueueKind::Red);
        b.host(HOST_A, 1, r1, 100_000_000, MILLI);
        b.host(HOST_A + 1, 1, r1, 100_000_000, MILLI);
        b.host(HOST_B, 2, r2, 100_000_000, MILLI);
        let net = b.build();

        let mut sim = Simulator::new(
            net,
            Box::new(NoDefense),
            SimConfig { end_time: 30 * SEC, ..Default::default() },
        );
        let f1 = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                HOST_A,
                HOST_B,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(3),
            ))
        });
        let f2 = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                HOST_A + 1,
                HOST_B,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(4),
            ))
        });
        sim.run();
        let g1 = sim.progress(f1).goodput_bps(0, 30 * SEC);
        let g2 = sim.progress(f2).goodput_bps(0, 30 * SEC);
        let total = g1 + g2;
        assert!(total > 1_500_000.0, "total goodput {total}");
        let ratio = g1.max(g2) / g1.min(g2).max(1.0);
        assert!(ratio < 2.5, "long-run TCP shares should be roughly fair: {g1} vs {g2}");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let (net, bottleneck) = dumbbell(1_000_000);
            let mut sim = Simulator::new(
                net,
                Box::new(NoDefense),
                SimConfig { end_time: 5 * SEC, ..Default::default() },
            );
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 3_000_000)));
            sim.add_flow(0, |id| {
                Box::new(TcpFlow::new(
                    id,
                    HOST_A,
                    HOST_B,
                    TcpWorkload::RepeatedFile { bytes: 20_000, gap: 50 * MILLI },
                    TcpConfig::default(),
                    SimRng::new(9),
                ))
            });
            sim.run();
            (
                sim.metrics.link_tx_pkts[&bottleneck],
                sim.metrics.link_drop_pkts.get(&bottleneck).copied().unwrap_or(0),
                sim.progress(1).completions.len(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn defense_drop_action_is_honored() {
        /// A defense that drops every UDP packet at routers.
        #[derive(Debug)]
        struct DropUdp;
        impl DefenseSystem for DropUdp {
            fn name(&self) -> &'static str {
                "drop-udp"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn at_router(
                &mut self,
                _now: Nanos,
                _node: NodeId,
                _is_access: bool,
                _out_link: u32,
                pkt: &mut Packet,
            ) -> RouterAction {
                if pkt.protocol == crate::packet::Protocol::Udp {
                    RouterAction::Drop
                } else {
                    RouterAction::Forward
                }
            }
        }
        let (net, _) = dumbbell(1_000_000);
        let mut sim = Simulator::new(
            net,
            Box::new(DropUdp),
            SimConfig { end_time: 5 * SEC, ..Default::default() },
        );
        let flow = sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, HOST_A, HOST_B, 1_000_000)));
        sim.run();
        assert_eq!(sim.progress(flow).delivered_bytes, 0);
        assert!(sim.metrics.defense_drop_pkts > 100);
    }
}
