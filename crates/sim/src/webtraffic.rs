//! Web-like workload generation (§6.3.2 of the paper).
//!
//! The paper draws web-transfer sizes "from a mixture of Pareto and
//! exponential distributions as in \[28\]", caps the maximum file size at
//! 150 KB, and makes the interval between two transfers uniformly
//! distributed between 0.1 and 0.2 seconds. This module reproduces that
//! generator.

use crate::rng::SimRng;
use crate::time::{Nanos, MILLI};

/// Parameters of the web-like workload.
#[derive(Debug, Clone, Copy)]
pub struct WebWorkload {
    /// Probability that a transfer size is drawn from the exponential
    /// (body) component rather than the Pareto (tail) component.
    pub body_probability: f64,
    /// Mean of the exponential body, bytes.
    pub body_mean: f64,
    /// Scale of the Pareto tail, bytes.
    pub tail_scale: f64,
    /// Shape of the Pareto tail.
    pub tail_shape: f64,
    /// Smallest transfer generated, bytes.
    pub min_bytes: u64,
    /// Largest transfer generated, bytes (the paper caps at 150 KB).
    pub max_bytes: u64,
    /// Lower bound of the think time between transfers.
    pub think_min: Nanos,
    /// Upper bound of the think time between transfers.
    pub think_max: Nanos,
}

impl Default for WebWorkload {
    fn default() -> Self {
        WebWorkload {
            body_probability: 0.83,
            body_mean: 8_000.0,
            tail_scale: 10_000.0,
            tail_shape: 1.2,
            min_bytes: 1_000,
            max_bytes: 150_000,
            think_min: 100 * MILLI,
            think_max: 200 * MILLI,
        }
    }
}

impl WebWorkload {
    /// Draw a transfer size in bytes.
    pub fn draw_size(&self, rng: &mut SimRng) -> u64 {
        let raw = if rng.unit() < self.body_probability {
            rng.exponential(self.body_mean)
        } else {
            rng.pareto(self.tail_scale, self.tail_shape)
        };
        (raw as u64).clamp(self.min_bytes, self.max_bytes)
    }

    /// Draw a think time between transfers.
    pub fn draw_think(&self, rng: &mut SimRng) -> Nanos {
        rng.uniform_time(self.think_min, self.think_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respect_bounds() {
        let w = WebWorkload::default();
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let s = w.draw_size(&mut rng);
            assert!((w.min_bytes..=w.max_bytes).contains(&s));
        }
    }

    #[test]
    fn size_distribution_has_body_and_tail() {
        let w = WebWorkload::default();
        let mut rng = SimRng::new(11);
        let samples: Vec<u64> = (0..20_000).map(|_| w.draw_size(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // Mean around 8–25 kB: dominated by the body, inflated by the tail.
        assert!((5_000.0..40_000.0).contains(&mean), "mean {mean}");
        // The 150 kB cap is actually hit by the heavy tail sometimes.
        let capped = samples.iter().filter(|&&s| s == w.max_bytes).count();
        assert!(capped > 10, "cap hit {capped} times");
        // But most transfers are small.
        let small = samples.iter().filter(|&&s| s < 20_000).count();
        assert!(small as f64 / samples.len() as f64 > 0.6);
    }

    #[test]
    fn think_times_are_in_range() {
        let w = WebWorkload::default();
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let t = w.draw_think(&mut rng);
            assert!((w.think_min..w.think_max).contains(&t));
        }
    }
}
