//! Static network description: nodes, links, AS-aggregated routing, and the
//! builder the topology generators assemble networks through.
//!
//! ## Routing model
//!
//! Routing is **aggregated by destination access router** (one routing
//! destination per host-bearing router — the AS-prefix granularity a real
//! FIB would use) instead of per destination host:
//!
//! * one BFS per *access router* over a router-only reverse-adjacency
//!   graph, instead of one BFS per *host* over a full link scan —
//!   `O(routers · (routers + router_links))` build time instead of
//!   `O(hosts · links)`;
//! * next-hop tables are dense `Vec`s indexed by `(router, destination)`
//!   slot, instead of one `HashMap<HostAddr, link>` per node —
//!   `O(routers · destinations)` words of memory instead of
//!   `O(nodes · hosts)` hash entries;
//! * hosts are resolved at the last hop: the destination's access router
//!   forwards onto the host's recorded downlink, and a sending host always
//!   uses its recorded uplink. Hosts are leaves — they never appear as
//!   routing intermediates (the engine drops mis-delivered packets anyway).
//!
//! On topologies where every host hangs off a single access router (all of
//! them, including the generated internet-scale graphs), the chosen paths
//! are identical to the old per-host BFS: host leaves never altered the
//! router-discovery order, and the reverse adjacency preserves the old
//! link-index tie-breaking.

use std::collections::{HashMap, VecDeque};

use crate::packet::{AsNum, HostAddr, LinkAddr};
use crate::time::Nanos;

/// Index of a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Sentinel for "no slot / no route" in the dense routing tables.
const NONE32: u32 = u32::MAX;

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host with an address, living in an AS.
    Host {
        /// The host's address.
        addr: HostAddr,
        /// The AS the host belongs to.
        as_num: AsNum,
    },
    /// A router.
    Router {
        /// The AS the router belongs to.
        as_num: AsNum,
        /// Whether this is an access router (the trust boundary where
        /// NetFence polices senders).
        access: bool,
    },
}

/// A node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Role and addressing of the node.
    pub kind: NodeKind,
}

impl Node {
    /// The AS this node belongs to.
    pub fn as_num(&self) -> AsNum {
        match self.kind {
            NodeKind::Host { as_num, .. } | NodeKind::Router { as_num, .. } => as_num,
        }
    }

    /// The host address, if this node is a host.
    pub fn host_addr(&self) -> Option<HostAddr> {
        match self.kind {
            NodeKind::Host { addr, .. } => Some(addr),
            NodeKind::Router { .. } => None,
        }
    }

    /// Whether this node is an access router.
    pub fn is_access_router(&self) -> bool {
        matches!(self.kind, NodeKind::Router { access: true, .. })
    }
}

/// Which default queue discipline a link uses (defense systems may override
/// via their `make_queue` hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Plain FIFO, 200 ms of buffering.
    DropTail,
    /// RED with the paper's parameters.
    Red,
}

/// A unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Sending side.
    pub from: NodeId,
    /// Receiving side.
    pub to: NodeId,
    /// Protocol-visible link identifier (what NetFence feedback calls the
    /// link's IP address).
    pub addr: LinkAddr,
    /// Capacity in bits per second.
    pub capacity: u64,
    /// Propagation delay.
    pub delay: Nanos,
    /// Default queue discipline.
    pub queue: QueueKind,
}

/// A host's recorded attachment: its access router and the duplex link pair
/// connecting them (made explicit by [`NetworkBuilder::host`] instead of
/// being re-inferred from the link list, which silently misassigned on
/// multihomed generated graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HostAttach {
    /// The access router.
    router: NodeId,
    /// Link host → router.
    uplink: usize,
    /// Link router → host.
    downlink: usize,
    /// Dense destination slot of `router` in the routing tables.
    dst_slot: u32,
}

/// Size and shape of the derived routing state, for scalability reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteStats {
    /// Routers carrying a next-hop table.
    pub routers: usize,
    /// Routing destinations (host-bearing access routers).
    pub destinations: usize,
    /// Bytes held by the dense next-hop tables.
    pub table_bytes: usize,
}

/// An immutable network description plus derived routing tables.
#[derive(Debug)]
pub struct Network {
    /// All nodes.
    pub nodes: Vec<Node>,
    /// All unidirectional links.
    pub links: Vec<LinkSpec>,
    /// Host address → node index (shared with control planes, which only
    /// read it — see [`ControlPlane::for_network`](crate::deploy::ControlPlane::for_network)).
    pub host_index: std::sync::Arc<HashMap<HostAddr, NodeId>>,
    /// Per-node outgoing link indices.
    pub out_links: Vec<Vec<usize>>,
    /// Each host's directly-attached (access) router (shared like
    /// [`Network::host_index`]).
    pub access_router: std::sync::Arc<HashMap<HostAddr, NodeId>>,
    /// Host address → attachment (uplink/downlink/destination slot).
    host_attach: HashMap<HostAddr, HostAttach>,
    /// Per-node dense router slot (`NONE32` for hosts).
    router_slot: Vec<u32>,
    /// `routes[router_slot][dst_slot]` = outgoing link index, `NONE32` when
    /// the destination router is unreachable.
    routes: Vec<Vec<u32>>,
    /// Protocol link address → link index.
    link_index: HashMap<LinkAddr, usize>,
    /// Number of routing destinations.
    dst_count: usize,
    /// Destination slot → router slot of the destination's access router
    /// (kept so routes can be recomputed after link faults).
    dst_routers: Vec<u32>,
}

impl Network {
    /// Start building a network.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// The node a host address belongs to.
    pub fn host_node(&self, addr: HostAddr) -> NodeId {
        self.host_index[&addr]
    }

    /// The AS of a host address.
    pub fn as_of_host(&self, addr: HostAddr) -> AsNum {
        self.nodes[self.host_node(addr).0].as_num()
    }

    /// The next-hop link index from `node` toward `dst`, if reachable.
    ///
    /// Routers consult their dense per-destination-router table; the
    /// destination's own access router resolves the final hop to the host's
    /// downlink; a sending host uses its uplink (when its access router can
    /// reach the destination).
    pub fn next_hop(&self, node: NodeId, dst: HostAddr) -> Option<usize> {
        let att = *self.host_attach.get(&dst)?;
        if node == att.router {
            return Some(att.downlink);
        }
        match self.nodes[node.0].kind {
            NodeKind::Host { addr, .. } => {
                if addr == dst {
                    return None;
                }
                let own = *self.host_attach.get(&addr)?;
                if own.router == att.router {
                    return Some(own.uplink);
                }
                let r = self.router_slot[own.router.0] as usize;
                (self.routes[r][att.dst_slot as usize] != NONE32).then_some(own.uplink)
            }
            NodeKind::Router { .. } => {
                let r = self.router_slot[node.0] as usize;
                let l = self.routes[r][att.dst_slot as usize];
                (l != NONE32).then_some(l as usize)
            }
        }
    }

    /// Find a link index by its protocol-level address (O(1) via the
    /// prebuilt index).
    pub fn link_by_addr(&self, addr: LinkAddr) -> Option<usize> {
        self.link_index.get(&addr).copied()
    }

    /// The access router a host is attached to, if any.
    pub fn access_router_of(&self, host: HostAddr) -> Option<NodeId> {
        self.access_router.get(&host).copied()
    }

    /// All host addresses in the network.
    pub fn hosts(&self) -> Vec<HostAddr> {
        // lint:allow(nondeterministic-iteration): collected then sorted on the next line — callers only ever see key order
        let mut v: Vec<HostAddr> = self.host_index.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Recompute every next-hop table over the surviving graph, skipping
    /// links for which `down[link_index]` is true (indices past `down`'s
    /// length count as up). Runs the exact BFS of
    /// [`NetworkBuilder::build`] — same traversal order, same equal-cost
    /// tie-breaking — so calling it with an all-false `down` reproduces
    /// the original tables bit-for-bit. Destinations with no surviving
    /// path simply keep `NONE32` entries; forwarding to them becomes a
    /// typed no-route drop at the engine.
    pub fn recompute_routes(&mut self, down: &[bool]) {
        let router_count = self.routes.len();
        let mut rev: Vec<Vec<(u32, u32)>> = vec![Vec::new(); router_count];
        for (li, l) in self.links.iter().enumerate() {
            if down.get(li).copied().unwrap_or(false) {
                continue;
            }
            let (f, t) = (self.router_slot[l.from.0], self.router_slot[l.to.0]);
            if f != NONE32 && t != NONE32 {
                rev[t as usize].push((f, li as u32));
            }
        }
        for row in &mut self.routes {
            row.fill(NONE32);
        }
        let mut dist = vec![u32::MAX; router_count];
        let mut q = VecDeque::new();
        for (dst_slot, &root) in self.dst_routers.iter().enumerate() {
            dist.fill(u32::MAX);
            dist[root as usize] = 0;
            q.clear();
            q.push_back(root);
            while let Some(r) = q.pop_front() {
                let d = dist[r as usize] + 1;
                for &(from, li) in &rev[r as usize] {
                    if dist[from as usize] == u32::MAX {
                        dist[from as usize] = d;
                        self.routes[from as usize][dst_slot] = li;
                        q.push_back(from);
                    }
                }
            }
        }
    }

    /// Size of the derived routing state.
    pub fn route_stats(&self) -> RouteStats {
        RouteStats {
            routers: self.routes.len(),
            destinations: self.dst_count,
            table_bytes: self.routes.len() * self.dst_count * std::mem::size_of::<u32>(),
        }
    }
}

/// Builder for [`Network`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    links: Vec<LinkSpec>,
    next_link_addr: LinkAddr,
    /// `(host address, access router, uplink, downlink)` per host, recorded
    /// at [`NetworkBuilder::host`] time.
    attachments: Vec<(HostAddr, NodeId, usize, usize)>,
}

impl NetworkBuilder {
    /// Add a router in `as_num`. `access` marks it as an access router.
    pub fn router(&mut self, as_num: AsNum, access: bool) -> NodeId {
        self.nodes.push(Node { kind: NodeKind::Router { as_num, access } });
        NodeId(self.nodes.len() - 1)
    }

    /// Add a host with address `addr` in `as_num`, attached to `router` by a
    /// duplex link of `capacity`/`delay`. The attachment is recorded
    /// explicitly: `router` becomes the host's access router for routing,
    /// deployment and control-plane addressing. `addr` must be unique and
    /// `router` must be a router node.
    pub fn host(
        &mut self,
        addr: HostAddr,
        as_num: AsNum,
        router: NodeId,
        capacity: u64,
        delay: Nanos,
    ) -> NodeId {
        assert!(
            matches!(self.nodes[router.0].kind, NodeKind::Router { .. }),
            "host {addr:#x} attached to non-router node {router:?}"
        );
        self.nodes.push(Node { kind: NodeKind::Host { addr, as_num } });
        let id = NodeId(self.nodes.len() - 1);
        let (uplink, downlink) = self.duplex(id, router, capacity, delay, QueueKind::DropTail);
        self.attachments.push((addr, router, uplink, downlink));
        id
    }

    /// Add a unidirectional link and return its index.
    ///
    /// Links added directly (rather than via [`NetworkBuilder::host`]) must
    /// connect routers: hosts are routing leaves, reachable only over their
    /// recorded attachment.
    pub fn link(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity: u64,
        delay: Nanos,
        queue: QueueKind,
    ) -> usize {
        self.next_link_addr += 1;
        let addr = 1_000 + self.next_link_addr;
        self.links.push(LinkSpec { from, to, addr, capacity, delay, queue });
        self.links.len() - 1
    }

    /// Add a duplex link (two unidirectional links); returns the
    /// (forward, reverse) link indices.
    pub fn duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: u64,
        delay: Nanos,
        queue: QueueKind,
    ) -> (usize, usize) {
        let f = self.link(a, b, capacity, delay, queue);
        let r = self.link(b, a, capacity, delay, queue);
        (f, r)
    }

    /// Finalize: computes the host/link indices and the AS-aggregated dense
    /// routing tables (one BFS per host-bearing router over the router-only
    /// reverse adjacency).
    pub fn build(self) -> Network {
        let NetworkBuilder { nodes, links, attachments, .. } = self;

        let mut host_index = HashMap::with_capacity(attachments.len());
        for (i, n) in nodes.iter().enumerate() {
            if let Some(addr) = n.host_addr() {
                let prev = host_index.insert(addr, NodeId(i));
                assert!(prev.is_none(), "duplicate host address {addr:#x}");
            }
        }

        let mut link_index = HashMap::with_capacity(links.len());
        let mut out_links = vec![Vec::new(); nodes.len()];
        for (li, l) in links.iter().enumerate() {
            out_links[l.from.0].push(li);
            let prev = link_index.insert(l.addr, li);
            assert!(prev.is_none(), "duplicate link address {}", l.addr);
        }

        // Dense router slots, in node order.
        let mut router_slot = vec![NONE32; nodes.len()];
        let mut router_count = 0u32;
        for (i, n) in nodes.iter().enumerate() {
            if n.host_addr().is_none() {
                router_slot[i] = router_count;
                router_count += 1;
            }
        }

        // Routing destinations: host-bearing routers, slotted in node order.
        let mut has_host = vec![false; nodes.len()];
        for &(_, router, _, _) in &attachments {
            has_host[router.0] = true;
        }
        let mut dst_slot_of_node = vec![NONE32; nodes.len()];
        let mut dst_routers: Vec<u32> = Vec::new(); // dst slot -> router slot
        for (i, &h) in has_host.iter().enumerate() {
            if h {
                dst_slot_of_node[i] = dst_routers.len() as u32;
                dst_routers.push(router_slot[i]);
            }
        }
        let dst_count = dst_routers.len();

        // Router-only reverse adjacency, in link-index order (preserves the
        // old full-scan tie-breaking): rev[to] lists (from, link) pairs.
        let mut rev: Vec<Vec<(u32, u32)>> = vec![Vec::new(); router_count as usize];
        for (li, l) in links.iter().enumerate() {
            let (f, t) = (router_slot[l.from.0], router_slot[l.to.0]);
            if f != NONE32 && t != NONE32 {
                rev[t as usize].push((f, li as u32));
            }
        }

        // One BFS per destination router, writing next hops straight into
        // the dense column.
        let mut routes: Vec<Vec<u32>> = vec![vec![NONE32; dst_count]; router_count as usize];
        let mut dist = vec![u32::MAX; router_count as usize];
        let mut q = VecDeque::new();
        for (dst_slot, &root) in dst_routers.iter().enumerate() {
            dist.fill(u32::MAX);
            dist[root as usize] = 0;
            q.clear();
            q.push_back(root);
            while let Some(r) = q.pop_front() {
                let d = dist[r as usize] + 1;
                for &(from, li) in &rev[r as usize] {
                    if dist[from as usize] == u32::MAX {
                        dist[from as usize] = d;
                        routes[from as usize][dst_slot] = li;
                        q.push_back(from);
                    }
                }
            }
        }

        let mut access_router = HashMap::with_capacity(attachments.len());
        let mut host_attach = HashMap::with_capacity(attachments.len());
        for &(addr, router, uplink, downlink) in &attachments {
            access_router.insert(addr, router);
            host_attach.insert(
                addr,
                HostAttach { router, uplink, downlink, dst_slot: dst_slot_of_node[router.0] },
            );
        }

        Network {
            nodes,
            links,
            host_index: std::sync::Arc::new(host_index),
            out_links,
            access_router: std::sync::Arc::new(access_router),
            host_attach,
            router_slot,
            routes,
            link_index,
            dst_count,
            dst_routers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MILLI;

    /// A 4-node chain: host A — r1 — r2 — host B.
    fn chain() -> (Network, HostAddr, HostAddr) {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        b.duplex(r1, r2, 10_000_000, 10 * MILLI, QueueKind::Red);
        let a = 0x0a_00_00_01;
        let z = 0x0b_00_00_01;
        b.host(a, 1, r1, 100_000_000, MILLI);
        b.host(z, 2, r2, 100_000_000, MILLI);
        (b.build(), a, z)
    }

    #[test]
    fn routes_follow_the_chain() {
        let (net, a, z) = chain();
        assert_eq!(net.hosts(), vec![a, z]);
        // From host A's node, the next hop toward Z is A's uplink to r1;
        // from r1, it is the r1→r2 link; from r2, the link to host Z.
        let a_node = net.host_node(a);
        let hop1 = net.next_hop(a_node, z).unwrap();
        assert_eq!(net.links[hop1].from, a_node);
        let r1 = net.links[hop1].to;
        let hop2 = net.next_hop(r1, z).unwrap();
        let r2 = net.links[hop2].to;
        let hop3 = net.next_hop(r2, z).unwrap();
        assert_eq!(net.links[hop3].to, net.host_node(z));
        // And the reverse path exists.
        assert!(net.next_hop(net.host_node(z), a).is_some());
    }

    #[test]
    fn as_membership_and_access_routers() {
        let (net, a, z) = chain();
        assert_eq!(net.as_of_host(a), 1);
        assert_eq!(net.as_of_host(z), 2);
        let access_routers: Vec<_> = net.nodes.iter().filter(|n| n.is_access_router()).collect();
        assert_eq!(access_routers.len(), 1);
    }

    #[test]
    fn link_addresses_are_unique_and_resolvable() {
        let (net, _, _) = chain();
        let mut addrs: Vec<_> = net.links.iter().map(|l| l.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), net.links.len());
        for l in &net.links {
            let idx = net.link_by_addr(l.addr).unwrap();
            assert_eq!(net.links[idx].addr, l.addr);
        }
        assert_eq!(net.link_by_addr(0xdead_beef), None);
    }

    #[test]
    fn unreachable_destination_has_no_route() {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let _r2 = b.router(2, false); // not connected
        let a = 1;
        b.host(a, 1, r1, 1_000_000, MILLI);
        let net = b.build();
        assert_eq!(net.next_hop(NodeId(1), 99), None);
    }

    #[test]
    fn partitioned_hosts_have_no_route_to_each_other() {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, true); // island: never linked to r1
        b.host(0xa1, 1, r1, 1_000_000, MILLI);
        b.host(0xb1, 2, r2, 1_000_000, MILLI);
        let net = b.build();
        // Neither the hosts nor their routers can reach across.
        assert_eq!(net.next_hop(net.host_node(0xa1), 0xb1), None);
        assert_eq!(net.next_hop(NodeId(0), 0xb1), None);
        // Same-side routing still works.
        assert!(net.next_hop(NodeId(0), 0xa1).is_some());
        // A host has no route to itself.
        assert_eq!(net.next_hop(net.host_node(0xa1), 0xa1), None);
    }

    #[test]
    fn two_hosts_on_one_router_route_via_the_shared_access_router() {
        let mut b = Network::builder();
        let r = b.router(1, true);
        b.host(0xa1, 1, r, 1_000_000, MILLI);
        b.host(0xa2, 1, r, 1_000_000, MILLI);
        let net = b.build();
        let h1 = net.host_node(0xa1);
        let up = net.next_hop(h1, 0xa2).unwrap();
        assert_eq!(net.links[up].to, r);
        let down = net.next_hop(r, 0xa2).unwrap();
        assert_eq!(net.links[down].to, net.host_node(0xa2));
    }

    #[test]
    fn route_stats_report_dense_table_shape() {
        let (net, _, _) = chain();
        let s = net.route_stats();
        // r1 and r2 are the routers; both bear hosts, so both are
        // destinations.
        assert_eq!(s.routers, 2);
        assert_eq!(s.destinations, 2);
        assert_eq!(s.table_bytes, 2 * 2 * 4);
    }

    #[test]
    fn explicit_attachment_survives_extra_router_links() {
        // A multihomed access router: r1 has links to two transit routers
        // added *before* the host attaches — the old first-out-link
        // heuristic would still work here, but the recorded attachment must
        // hold regardless of link ordering.
        let mut b = Network::builder();
        let t1 = b.router(100, false);
        let t2 = b.router(101, false);
        let r1 = b.router(1, true);
        b.duplex(r1, t1, 10_000_000, MILLI, QueueKind::DropTail);
        b.duplex(r1, t2, 10_000_000, MILLI, QueueKind::DropTail);
        b.duplex(t1, t2, 10_000_000, MILLI, QueueKind::DropTail);
        b.host(0xa1, 1, r1, 1_000_000, MILLI);
        let net = b.build();
        assert_eq!(net.access_router_of(0xa1), Some(r1));
    }

    #[test]
    #[should_panic(expected = "non-router")]
    fn attaching_a_host_to_a_host_panics() {
        let mut b = Network::builder();
        let r = b.router(1, true);
        let h = b.host(0xa1, 1, r, 1_000_000, MILLI);
        b.host(0xa2, 1, h, 1_000_000, MILLI);
    }
}
