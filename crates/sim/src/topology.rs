//! Static network description: nodes, links, routing, and builders for the
//! paper's evaluation topologies (dumbbell and parking lot).

use std::collections::{HashMap, VecDeque};

use crate::packet::{AsNum, HostAddr, LinkAddr};
use crate::time::Nanos;

/// Index of a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host with an address, living in an AS.
    Host {
        /// The host's address.
        addr: HostAddr,
        /// The AS the host belongs to.
        as_num: AsNum,
    },
    /// A router.
    Router {
        /// The AS the router belongs to.
        as_num: AsNum,
        /// Whether this is an access router (the trust boundary where
        /// NetFence polices senders).
        access: bool,
    },
}

/// A node in the network.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Role and addressing of the node.
    pub kind: NodeKind,
}

impl Node {
    /// The AS this node belongs to.
    pub fn as_num(&self) -> AsNum {
        match self.kind {
            NodeKind::Host { as_num, .. } | NodeKind::Router { as_num, .. } => as_num,
        }
    }

    /// The host address, if this node is a host.
    pub fn host_addr(&self) -> Option<HostAddr> {
        match self.kind {
            NodeKind::Host { addr, .. } => Some(addr),
            NodeKind::Router { .. } => None,
        }
    }

    /// Whether this node is an access router.
    pub fn is_access_router(&self) -> bool {
        matches!(self.kind, NodeKind::Router { access: true, .. })
    }
}

/// Which default queue discipline a link uses (defense systems may override
/// via their `make_queue` hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Plain FIFO, 200 ms of buffering.
    DropTail,
    /// RED with the paper's parameters.
    Red,
}

/// A unidirectional link.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Sending side.
    pub from: NodeId,
    /// Receiving side.
    pub to: NodeId,
    /// Protocol-visible link identifier (what NetFence feedback calls the
    /// link's IP address).
    pub addr: LinkAddr,
    /// Capacity in bits per second.
    pub capacity: u64,
    /// Propagation delay.
    pub delay: Nanos,
    /// Default queue discipline.
    pub queue: QueueKind,
}

/// An immutable network description plus derived routing tables.
#[derive(Debug)]
pub struct Network {
    /// All nodes.
    pub nodes: Vec<Node>,
    /// All unidirectional links.
    pub links: Vec<LinkSpec>,
    /// Host address → node index.
    pub host_index: HashMap<HostAddr, NodeId>,
    /// Per-node next-hop table: `routes[node][dst_host]` = outgoing link
    /// index.
    pub routes: Vec<HashMap<HostAddr, usize>>,
    /// Per-node outgoing link indices.
    pub out_links: Vec<Vec<usize>>,
    /// Each host's directly-attached (access) router.
    pub access_router: HashMap<HostAddr, NodeId>,
}

impl Network {
    /// Start building a network.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// The node a host address belongs to.
    pub fn host_node(&self, addr: HostAddr) -> NodeId {
        self.host_index[&addr]
    }

    /// The AS of a host address.
    pub fn as_of_host(&self, addr: HostAddr) -> AsNum {
        self.nodes[self.host_node(addr).0].as_num()
    }

    /// The next-hop link index from `node` toward `dst`, if reachable.
    pub fn next_hop(&self, node: NodeId, dst: HostAddr) -> Option<usize> {
        self.routes[node.0].get(&dst).copied()
    }

    /// Find a link index by its protocol-level address.
    pub fn link_by_addr(&self, addr: LinkAddr) -> Option<usize> {
        self.links.iter().position(|l| l.addr == addr)
    }

    /// The access router a host is attached to (the first router on its
    /// uplink), if any.
    pub fn access_router_of(&self, host: HostAddr) -> Option<NodeId> {
        self.access_router.get(&host).copied()
    }

    /// All host addresses in the network.
    pub fn hosts(&self) -> Vec<HostAddr> {
        let mut v: Vec<HostAddr> = self.host_index.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Builder for [`Network`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    links: Vec<LinkSpec>,
    next_link_addr: LinkAddr,
}

impl NetworkBuilder {
    /// Add a router in `as_num`. `access` marks it as an access router.
    pub fn router(&mut self, as_num: AsNum, access: bool) -> NodeId {
        self.nodes.push(Node { kind: NodeKind::Router { as_num, access } });
        NodeId(self.nodes.len() - 1)
    }

    /// Add a host with address `addr` in `as_num`, attached to `router` by a
    /// duplex link of `capacity`/`delay`.
    pub fn host(
        &mut self,
        addr: HostAddr,
        as_num: AsNum,
        router: NodeId,
        capacity: u64,
        delay: Nanos,
    ) -> NodeId {
        self.nodes.push(Node { kind: NodeKind::Host { addr, as_num } });
        let id = NodeId(self.nodes.len() - 1);
        self.duplex(id, router, capacity, delay, QueueKind::DropTail);
        id
    }

    /// Add a unidirectional link and return its index.
    pub fn link(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity: u64,
        delay: Nanos,
        queue: QueueKind,
    ) -> usize {
        self.next_link_addr += 1;
        let addr = 1_000 + self.next_link_addr;
        self.links.push(LinkSpec { from, to, addr, capacity, delay, queue });
        self.links.len() - 1
    }

    /// Add a duplex link (two unidirectional links); returns the
    /// (forward, reverse) link indices.
    pub fn duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: u64,
        delay: Nanos,
        queue: QueueKind,
    ) -> (usize, usize) {
        let f = self.link(a, b, capacity, delay, queue);
        let r = self.link(b, a, capacity, delay, queue);
        (f, r)
    }

    /// Finalize: computes host index, per-node outgoing links, and shortest
    /// path (hop count) next-hop routes toward every host.
    pub fn build(self) -> Network {
        let NetworkBuilder { nodes, links, .. } = self;
        let mut host_index = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if let Some(addr) = n.host_addr() {
                host_index.insert(addr, NodeId(i));
            }
        }
        let mut out_links = vec![Vec::new(); nodes.len()];
        for (li, l) in links.iter().enumerate() {
            out_links[l.from.0].push(li);
        }
        // BFS from every host over reversed links to get next hops toward it.
        let mut routes: Vec<HashMap<HostAddr, usize>> = vec![HashMap::new(); nodes.len()];
        for (&addr, &host_node) in &host_index {
            // dist[node] = hops to host; parent_link[node] = link to take.
            let mut dist = vec![usize::MAX; nodes.len()];
            let mut via = vec![usize::MAX; nodes.len()];
            dist[host_node.0] = 0;
            let mut q = VecDeque::new();
            q.push_back(host_node.0);
            while let Some(n) = q.pop_front() {
                // Consider links arriving at n: their source can reach the
                // host via that link.
                for (li, l) in links.iter().enumerate() {
                    if l.to.0 == n && dist[l.from.0] == usize::MAX {
                        dist[l.from.0] = dist[n] + 1;
                        via[l.from.0] = li;
                        q.push_back(l.from.0);
                    }
                }
            }
            for (n, &link) in via.iter().enumerate() {
                if link != usize::MAX {
                    routes[n].insert(addr, link);
                }
            }
        }
        // Each host's access router: the node at the far end of its uplink.
        let mut access_router = HashMap::new();
        for (&addr, &node) in &host_index {
            if let Some(&uplink) = out_links[node.0].first() {
                let peer = links[uplink].to;
                if matches!(nodes[peer.0].kind, NodeKind::Router { .. }) {
                    access_router.insert(addr, peer);
                }
            }
        }
        Network { nodes, links, host_index, routes, out_links, access_router }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MILLI;

    /// A 4-node chain: host A — r1 — r2 — host B.
    fn chain() -> (Network, HostAddr, HostAddr) {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        b.duplex(r1, r2, 10_000_000, 10 * MILLI, QueueKind::Red);
        let a = 0x0a_00_00_01;
        let z = 0x0b_00_00_01;
        b.host(a, 1, r1, 100_000_000, MILLI);
        b.host(z, 2, r2, 100_000_000, MILLI);
        (b.build(), a, z)
    }

    #[test]
    fn routes_follow_the_chain() {
        let (net, a, z) = chain();
        assert_eq!(net.hosts(), vec![a, z]);
        // From host A's node, the next hop toward Z is A's uplink to r1;
        // from r1, it is the r1→r2 link; from r2, the link to host Z.
        let a_node = net.host_node(a);
        let hop1 = net.next_hop(a_node, z).unwrap();
        assert_eq!(net.links[hop1].from, a_node);
        let r1 = net.links[hop1].to;
        let hop2 = net.next_hop(r1, z).unwrap();
        let r2 = net.links[hop2].to;
        let hop3 = net.next_hop(r2, z).unwrap();
        assert_eq!(net.links[hop3].to, net.host_node(z));
        // And the reverse path exists.
        assert!(net.next_hop(net.host_node(z), a).is_some());
    }

    #[test]
    fn as_membership_and_access_routers() {
        let (net, a, z) = chain();
        assert_eq!(net.as_of_host(a), 1);
        assert_eq!(net.as_of_host(z), 2);
        let access_routers: Vec<_> = net.nodes.iter().filter(|n| n.is_access_router()).collect();
        assert_eq!(access_routers.len(), 1);
    }

    #[test]
    fn link_addresses_are_unique_and_resolvable() {
        let (net, _, _) = chain();
        let mut addrs: Vec<_> = net.links.iter().map(|l| l.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), net.links.len());
        for l in &net.links {
            let idx = net.link_by_addr(l.addr).unwrap();
            assert_eq!(net.links[idx].addr, l.addr);
        }
    }

    #[test]
    fn unreachable_destination_has_no_route() {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let _r2 = b.router(2, false); // not connected
        let a = 1;
        b.host(a, 1, r1, 1_000_000, MILLI);
        let net = b.build();
        assert_eq!(net.next_hop(NodeId(1), 99), None);
    }
}
