//! A simplified TCP Reno agent.
//!
//! The evaluation workloads need a transport that (a) performs a connection
//! handshake whose SYNs behave like NetFence request packets, with the 1 s
//! initial retransmission timeout and nine-retry abort used in §6.3.1,
//! (b) runs slow start / congestion avoidance / fast retransmit / timeouts
//! so that it fills whatever rate limit or fair share it is given, and
//! (c) reports file-transfer completion times and goodput. This module
//! implements exactly that much of TCP — enough for the paper's
//! experiments, not a full RFC 793/5681 stack (no FIN teardown, no SACK, no
//! delayed ACKs, segment-indexed sequence numbers).

use std::collections::{BTreeSet, HashMap};

use crate::flow::{Flow, FlowActions, FlowProgress};
use crate::packet::{FlowId, HostAddr, Packet, TcpKind, TcpSegment};
use crate::rng::SimRng;
use crate::time::{Nanos, MILLI, SEC};
use crate::webtraffic::WebWorkload;

/// Application payload bytes carried per data segment.
pub const SEG_PAYLOAD: usize = 1000;
/// TCP/IP header bytes per packet (before any defense shim headers).
pub const TCP_HEADER: usize = 40;

/// What the TCP flow transfers.
#[derive(Debug, Clone)]
pub enum TcpWorkload {
    /// Repeatedly transfer a fixed-size file (each transfer is a new
    /// connection), waiting `gap` between transfers. Figure 8 uses 20 KB
    /// files.
    RepeatedFile {
        /// File size in bytes.
        bytes: u64,
        /// Pause between the end of one transfer and the start of the next.
        gap: Nanos,
    },
    /// Web-like traffic: sizes from the Pareto/exponential mixture, think
    /// times uniform in 0.1–0.2 s (§6.3.2).
    WebLike(WebWorkload),
    /// A single long-running transfer that never completes (bulk TCP).
    LongRunning,
}

/// Tunable TCP parameters.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Initial congestion window in segments.
    pub init_cwnd: f64,
    /// Initial slow-start threshold in segments.
    pub init_ssthresh: f64,
    /// Upper bound on the congestion window in segments.
    pub max_cwnd: f64,
    /// Minimum retransmission timeout.
    pub min_rto: Nanos,
    /// Initial SYN retransmission timeout (1 s in the paper's experiments).
    pub syn_timeout: Nanos,
    /// Give up on a handshake after this many SYN retransmissions (9 in the
    /// paper).
    pub max_syn_retries: u32,
    /// Abort a transfer that has not completed within this time (200 s in
    /// the paper).
    pub transfer_deadline: Nanos,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            init_cwnd: 2.0,
            init_ssthresh: 64.0,
            max_cwnd: 256.0,
            min_rto: 200 * MILLI,
            syn_timeout: SEC,
            max_syn_retries: 9,
            transfer_deadline: 200 * SEC,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Between transfers.
    Idle,
    /// SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Transferring data.
    Established,
}

const KIND_SYN: u64 = 1;
const KIND_RTO: u64 = 2;
const KIND_NEXT: u64 = 3;
const KIND_DEADLINE: u64 = 4;

fn token(kind: u64, gen: u64) -> u64 {
    kind << 56 | (gen & 0x00FF_FFFF_FFFF_FFFF)
}
fn token_kind(t: u64) -> u64 {
    t >> 56
}
fn token_gen(t: u64) -> u64 {
    t & 0x00FF_FFFF_FFFF_FFFF
}

/// A TCP flow: one sender host, one receiver host, a sequence of transfers.
#[derive(Debug)]
pub struct TcpFlow {
    id: FlowId,
    src: HostAddr,
    dst: HostAddr,
    cfg: TcpConfig,
    workload: TcpWorkload,
    rng: SimRng,

    // --- connection / transfer state (sender side) ---
    state: ConnState,
    transfer_id: u64,
    transfer_start: Nanos,
    file_bytes: u64,
    file_segs: u64,
    snd_una: u64,
    snd_next: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    srtt: f64,
    rttvar: f64,
    rto: Nanos,
    syn_retries: u32,
    cur_syn_timeout: Nanos,
    syn_sent_at: Nanos,
    send_times: HashMap<u64, (Nanos, bool)>,
    // timer generations for invalidation
    syn_gen: u64,
    rto_gen: u64,
    deadline_gen: u64,

    // --- receiver side ---
    rcv_transfer: u64,
    rcv_next: u64,
    out_of_order: BTreeSet<u64>,

    // --- stats ---
    progress: FlowProgress,
}

impl TcpFlow {
    /// Create a TCP flow.
    pub fn new(
        id: FlowId,
        src: HostAddr,
        dst: HostAddr,
        workload: TcpWorkload,
        cfg: TcpConfig,
        rng: SimRng,
    ) -> Self {
        TcpFlow {
            id,
            src,
            dst,
            cfg,
            workload,
            rng,
            state: ConnState::Idle,
            transfer_id: 0,
            transfer_start: 0,
            file_bytes: 0,
            file_segs: 0,
            snd_una: 0,
            snd_next: 0,
            cwnd: 2.0,
            ssthresh: 64.0,
            dupacks: 0,
            srtt: 0.0,
            rttvar: 0.0,
            rto: SEC,
            syn_retries: 0,
            cur_syn_timeout: SEC,
            syn_sent_at: 0,
            send_times: HashMap::new(),
            syn_gen: 0,
            rto_gen: 0,
            deadline_gen: 0,
            rcv_transfer: u64::MAX,
            rcv_next: 0,
            out_of_order: BTreeSet::new(),
            progress: FlowProgress::default(),
        }
    }

    fn draw_file_size(&mut self) -> u64 {
        match &self.workload {
            TcpWorkload::RepeatedFile { bytes, .. } => *bytes,
            TcpWorkload::WebLike(w) => {
                let w = *w;
                w.draw_size(&mut self.rng)
            }
            TcpWorkload::LongRunning => u64::MAX / 4,
        }
    }

    fn begin_transfer(&mut self, now: Nanos) -> FlowActions {
        self.transfer_id += 1;
        self.progress.started_transfers += 1;
        self.file_bytes = self.draw_file_size();
        self.file_segs = self.file_bytes.div_ceil(SEG_PAYLOAD as u64).max(1);
        self.transfer_start = now;
        self.snd_una = 0;
        self.snd_next = 0;
        self.cwnd = self.cfg.init_cwnd;
        self.ssthresh = self.cfg.init_ssthresh;
        self.dupacks = 0;
        self.send_times.clear();
        self.syn_retries = 0;
        self.cur_syn_timeout = self.cfg.syn_timeout;
        self.state = ConnState::SynSent;
        self.syn_sent_at = now;

        let mut actions = FlowActions::none();
        self.send_syn(now, &mut actions);
        self.syn_gen += 1;
        actions.timers.push((now + self.cur_syn_timeout, token(KIND_SYN, self.syn_gen)));
        if !matches!(self.workload, TcpWorkload::LongRunning) {
            self.deadline_gen += 1;
            actions
                .timers
                .push((now + self.cfg.transfer_deadline, token(KIND_DEADLINE, self.deadline_gen)));
        }
        actions
    }

    fn send_syn(&mut self, now: Nanos, actions: &mut FlowActions) {
        let seg = TcpSegment {
            kind: TcpKind::Syn,
            transfer: self.transfer_id,
            seq: 0,
            ack: 0,
            retransmit: self.syn_retries > 0,
        };
        actions.packets.push(Packet::tcp(self.id, self.src, self.dst, TCP_HEADER, seg, now));
        self.progress.packets_sent += 1;
    }

    fn seg_bytes(&self, seq: u64) -> usize {
        let remaining = self.file_bytes.saturating_sub(seq * SEG_PAYLOAD as u64);
        (remaining.min(SEG_PAYLOAD as u64) as usize).max(1)
    }

    fn pump_data(&mut self, now: Nanos, actions: &mut FlowActions) {
        let window_end = (self.snd_una + self.cwnd as u64).min(self.file_segs);
        let mut burst = 0;
        while self.snd_next < window_end && burst < 128 {
            let seq = self.snd_next;
            let seg = TcpSegment {
                kind: TcpKind::Data,
                transfer: self.transfer_id,
                seq,
                ack: 0,
                retransmit: false,
            };
            let size = TCP_HEADER + self.seg_bytes(seq);
            actions.packets.push(Packet::tcp(self.id, self.src, self.dst, size, seg, now));
            self.progress.packets_sent += 1;
            self.send_times.entry(seq).or_insert((now, false));
            self.snd_next += 1;
            burst += 1;
        }
    }

    fn retransmit(&mut self, now: Nanos, seq: u64, actions: &mut FlowActions) {
        let seg = TcpSegment {
            kind: TcpKind::Data,
            transfer: self.transfer_id,
            seq,
            ack: 0,
            retransmit: true,
        };
        let size = TCP_HEADER + self.seg_bytes(seq);
        actions.packets.push(Packet::tcp(self.id, self.src, self.dst, size, seg, now));
        self.progress.packets_sent += 1;
        self.send_times.insert(seq, (now, true));
    }

    fn arm_rto(&mut self, now: Nanos, actions: &mut FlowActions) {
        self.rto_gen += 1;
        actions.timers.push((now + self.rto, token(KIND_RTO, self.rto_gen)));
    }

    fn update_rtt(&mut self, sample: Nanos) {
        let s = sample as f64;
        if self.srtt == 0.0 {
            self.srtt = s;
            self.rttvar = s / 2.0;
        } else {
            self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - s).abs();
            self.srtt = 0.875 * self.srtt + 0.125 * s;
        }
        let rto = (self.srtt + 4.0 * self.rttvar) as Nanos;
        self.rto = rto.clamp(self.cfg.min_rto, 60 * SEC);
    }

    fn transfer_complete(&mut self, now: Nanos) -> FlowActions {
        self.progress.completions.push((self.transfer_start, now, self.file_bytes));
        self.state = ConnState::Idle;
        // Invalidate outstanding timers.
        self.rto_gen += 1;
        self.syn_gen += 1;
        self.deadline_gen += 1;
        let mut actions = FlowActions::none();
        let gap = match &self.workload {
            TcpWorkload::RepeatedFile { gap, .. } => (*gap).max(MILLI),
            TcpWorkload::WebLike(w) => {
                let w = *w;
                w.draw_think(&mut self.rng)
            }
            TcpWorkload::LongRunning => return actions,
        };
        actions.timers.push((now + gap, token(KIND_NEXT, self.transfer_id)));
        actions
    }

    fn abort_transfer(&mut self, now: Nanos) -> FlowActions {
        self.progress.failed_transfers += 1;
        self.state = ConnState::Idle;
        self.rto_gen += 1;
        self.syn_gen += 1;
        self.deadline_gen += 1;
        // Immediately try again (the user retries).
        self.begin_transfer(now)
    }

    // --- sender-side packet handling ---

    fn on_synack(&mut self, now: Nanos, seg: &TcpSegment) -> FlowActions {
        let mut actions = FlowActions::none();
        if self.state != ConnState::SynSent || seg.transfer != self.transfer_id {
            return actions;
        }
        self.state = ConnState::Established;
        if self.syn_retries == 0 {
            self.update_rtt(now.saturating_sub(self.syn_sent_at));
        }
        self.pump_data(now, &mut actions);
        self.arm_rto(now, &mut actions);
        actions
    }

    fn on_ack(&mut self, now: Nanos, seg: &TcpSegment) -> FlowActions {
        let mut actions = FlowActions::none();
        if self.state != ConnState::Established || seg.transfer != self.transfer_id {
            return actions;
        }
        let ack = seg.ack;
        if ack > self.snd_una {
            // RTT sample from the most recently acknowledged segment,
            // following Karn's rule.
            if let Some((sent_at, retx)) = self.send_times.remove(&(ack - 1)) {
                if !retx {
                    self.update_rtt(now.saturating_sub(sent_at));
                }
            }
            for seq in self.snd_una..ack {
                self.send_times.remove(&seq);
            }
            let newly = (ack - self.snd_una) as f64;
            if self.cwnd < self.ssthresh {
                self.cwnd = (self.cwnd + newly).min(self.cfg.max_cwnd);
            } else {
                self.cwnd = (self.cwnd + newly / self.cwnd).min(self.cfg.max_cwnd);
            }
            self.snd_una = ack;
            self.dupacks = 0;
            if self.snd_una >= self.file_segs {
                return self.transfer_complete(now);
            }
            self.pump_data(now, &mut actions);
            self.arm_rto(now, &mut actions);
        } else if self.snd_next > self.snd_una {
            self.dupacks += 1;
            if self.dupacks == 3 {
                // Fast retransmit / recovery (Reno, simplified).
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                let seq = self.snd_una;
                self.retransmit(now, seq, &mut actions);
                self.arm_rto(now, &mut actions);
            }
        }
        actions
    }

    // --- receiver-side packet handling ---

    fn on_receiver_packet(&mut self, now: Nanos, seg: &TcpSegment) -> FlowActions {
        let mut actions = FlowActions::none();
        match seg.kind {
            TcpKind::Syn => {
                if seg.transfer != self.rcv_transfer {
                    self.rcv_transfer = seg.transfer;
                    self.rcv_next = 0;
                    self.out_of_order.clear();
                }
                let reply = TcpSegment {
                    kind: TcpKind::SynAck,
                    transfer: seg.transfer,
                    seq: 0,
                    ack: 0,
                    retransmit: false,
                };
                actions
                    .packets
                    .push(Packet::tcp(self.id, self.dst, self.src, TCP_HEADER, reply, now));
            }
            TcpKind::Data => {
                if seg.transfer != self.rcv_transfer {
                    self.rcv_transfer = seg.transfer;
                    self.rcv_next = 0;
                    self.out_of_order.clear();
                }
                if seg.seq == self.rcv_next {
                    self.rcv_next += 1;
                    self.progress.delivered_bytes += self.seg_payload_at_receiver(seg.seq);
                    while self.out_of_order.remove(&self.rcv_next) {
                        self.progress.delivered_bytes +=
                            self.seg_payload_at_receiver(self.rcv_next);
                        self.rcv_next += 1;
                    }
                } else if seg.seq > self.rcv_next {
                    self.out_of_order.insert(seg.seq);
                }
                let reply = TcpSegment {
                    kind: TcpKind::Ack,
                    transfer: seg.transfer,
                    seq: seg.seq,
                    ack: self.rcv_next,
                    retransmit: false,
                };
                actions
                    .packets
                    .push(Packet::tcp(self.id, self.dst, self.src, TCP_HEADER, reply, now));
            }
            TcpKind::SynAck | TcpKind::Ack => {}
        }
        actions
    }

    fn seg_payload_at_receiver(&self, _seq: u64) -> u64 {
        // The receiver does not know the exact file size; it credits one
        // full payload per segment, which is accurate except for the last
        // (possibly short) segment — good enough for goodput accounting.
        SEG_PAYLOAD as u64
    }

    /// The current congestion window (exposed for tests/experiments).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// The current retransmission timeout.
    pub fn rto(&self) -> Nanos {
        self.rto
    }
}

impl Flow for TcpFlow {
    fn id(&self) -> FlowId {
        self.id
    }
    fn src(&self) -> HostAddr {
        self.src
    }
    fn dst(&self) -> HostAddr {
        self.dst
    }

    fn start(&mut self, now: Nanos) -> FlowActions {
        self.begin_transfer(now)
    }

    fn on_packet(&mut self, now: Nanos, pkt: &Packet, at_host: HostAddr) -> FlowActions {
        let Some(seg) = pkt.tcp else { return FlowActions::none() };
        if at_host == self.dst {
            self.on_receiver_packet(now, &seg)
        } else if at_host == self.src {
            match seg.kind {
                TcpKind::SynAck => self.on_synack(now, &seg),
                TcpKind::Ack => self.on_ack(now, &seg),
                _ => FlowActions::none(),
            }
        } else {
            FlowActions::none()
        }
    }

    fn on_timer(&mut self, now: Nanos, tok: u64) -> FlowActions {
        match token_kind(tok) {
            KIND_SYN => {
                if self.state != ConnState::SynSent || token_gen(tok) != self.syn_gen {
                    return FlowActions::none();
                }
                self.syn_retries += 1;
                if self.syn_retries > self.cfg.max_syn_retries {
                    return self.abort_transfer(now);
                }
                let mut actions = FlowActions::none();
                self.send_syn(now, &mut actions);
                self.cur_syn_timeout = (self.cur_syn_timeout * 2).min(64 * SEC);
                self.syn_gen += 1;
                actions.timers.push((now + self.cur_syn_timeout, token(KIND_SYN, self.syn_gen)));
                actions
            }
            KIND_RTO => {
                if self.state != ConnState::Established
                    || token_gen(tok) != self.rto_gen
                    || self.snd_una >= self.snd_next
                {
                    return FlowActions::none();
                }
                let mut actions = FlowActions::none();
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = 1.0;
                self.dupacks = 0;
                self.rto = (self.rto * 2).min(60 * SEC);
                // Go-back-N-ish: resend the oldest unacknowledged segment.
                self.snd_next = self.snd_una + 1;
                let seq = self.snd_una;
                self.retransmit(now, seq, &mut actions);
                self.arm_rto(now, &mut actions);
                actions
            }
            KIND_NEXT => self.begin_transfer(now),
            KIND_DEADLINE => {
                if token_gen(tok) != self.deadline_gen || self.state == ConnState::Idle {
                    return FlowActions::none();
                }
                self.abort_transfer(now)
            }
            _ => FlowActions::none(),
        }
    }

    fn progress(&self) -> FlowProgress {
        self.progress.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(workload: TcpWorkload) -> TcpFlow {
        TcpFlow::new(0, 1, 2, workload, TcpConfig::default(), SimRng::new(1))
    }

    /// Drive the flow and a perfect (lossless, fixed-delay) network in
    /// lockstep, returning the time at which the first transfer completed.
    fn run_ideal(mut f: TcpFlow, rtt: Nanos, until: Nanos) -> (TcpFlow, Option<Nanos>) {
        // Very small event loop: (time, either timer token or packet).
        #[derive(Debug)]
        enum Ev {
            Timer(u64),
            Pkt(Packet, HostAddr),
        }
        let mut events: Vec<(Nanos, u64, Ev)> = Vec::new();
        let mut seq = 0u64;
        let push = |events: &mut Vec<(Nanos, u64, Ev)>, t: Nanos, e: Ev, seq: &mut u64| {
            *seq += 1;
            events.push((t, *seq, e));
        };
        let apply = |actions: FlowActions,
                     now: Nanos,
                     events: &mut Vec<(Nanos, u64, Ev)>,
                     seq: &mut u64| {
            for p in actions.packets {
                let arrive_at = if p.src == 1 { 2 } else { 1 };
                push(events, now + rtt / 2, Ev::Pkt(p, arrive_at), seq);
            }
            for (t, tok) in actions.timers {
                push(events, t, Ev::Timer(tok), seq);
            }
        };
        let a0 = f.start(0);
        apply(a0, 0, &mut events, &mut seq);
        let mut completed_at = None;
        while let Some(idx) = {
            events.sort_by_key(|(t, s, _)| (*t, *s));
            if events.is_empty() || events[0].0 > until {
                None
            } else {
                Some(0)
            }
        } {
            let (now, _, ev) = events.remove(idx);
            let actions = match ev {
                Ev::Timer(tok) => f.on_timer(now, tok),
                Ev::Pkt(p, at) => f.on_packet(now, &p, at),
            };
            apply(actions, now, &mut events, &mut seq);
            if completed_at.is_none() && !f.progress.completions.is_empty() {
                completed_at = Some(f.progress.completions[0].1);
            }
        }
        (f, completed_at)
    }

    #[test]
    fn transfer_completes_on_ideal_network() {
        let f = flow(TcpWorkload::RepeatedFile { bytes: 20_000, gap: 10 * SEC });
        let (f, done) = run_ideal(f, 20 * MILLI, 5 * SEC);
        let done = done.expect("20 kB transfer must complete quickly");
        // 20 segments, cwnd starting at 2 and doubling per RTT: roughly
        // 4-5 RTTs plus the handshake => well under a second.
        assert!(done < SEC, "completed at {done}");
        let p = f.progress();
        assert_eq!(p.failed_transfers, 0);
        assert!(p.delivered_bytes >= 20_000);
        assert!((p.completion_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_transfers_keep_going() {
        let f = flow(TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI });
        let (f, _) = run_ideal(f, 20 * MILLI, 10 * SEC);
        let p = f.progress();
        assert!(p.completions.len() >= 10, "only {} transfers completed", p.completions.len());
        // Each 20 kB transfer on an ideal network takes a few hundred ms at
        // most including the gap.
        assert!(p.avg_transfer_secs().unwrap() < 1.0);
    }

    #[test]
    fn weblike_transfers_draw_varied_sizes() {
        let f = flow(TcpWorkload::WebLike(WebWorkload::default()));
        let (f, _) = run_ideal(f, 20 * MILLI, 20 * SEC);
        let p = f.progress();
        assert!(p.completions.len() >= 20);
        let sizes: BTreeSet<u64> = p.completions.iter().map(|(_, _, b)| *b).collect();
        assert!(sizes.len() > 5, "web-like sizes should vary, got {sizes:?}");
    }

    #[test]
    fn long_running_flow_never_completes_but_delivers() {
        let f = flow(TcpWorkload::LongRunning);
        let (f, _) = run_ideal(f, 20 * MILLI, SEC);
        let p = f.progress();
        assert!(p.completions.is_empty());
        assert!(p.delivered_bytes > 100_000, "delivered {}", p.delivered_bytes);
    }

    #[test]
    fn syn_loss_backs_off_and_eventually_aborts() {
        // No network at all: every packet is lost. The flow should retry
        // SYNs with exponential backoff and abort after 9 retries, then
        // start a new attempt.
        let mut f = flow(TcpWorkload::RepeatedFile { bytes: 20_000, gap: SEC });
        let mut timers: Vec<(Nanos, u64)> = Vec::new();
        let mut syn_count = 0;
        let a = f.start(0);
        syn_count += a.packets.len();
        timers.extend(a.timers);
        let mut aborted = false;
        for _ in 0..50 {
            timers.sort_by_key(|(t, _)| *t);
            if timers.is_empty() {
                break;
            }
            let (now, tok) = timers.remove(0);
            if now > 4000 * SEC {
                break;
            }
            let acts = f.on_timer(now, tok);
            syn_count += acts.packets.len();
            timers.extend(acts.timers);
            if f.progress.failed_transfers > 0 {
                aborted = true;
                break;
            }
        }
        assert!(aborted, "handshake must eventually be abandoned");
        assert!(syn_count >= 10, "sent {syn_count} SYNs");
    }

    #[test]
    fn data_loss_triggers_fast_retransmit() {
        let mut f = flow(TcpWorkload::RepeatedFile { bytes: 50_000, gap: SEC });
        let mut actions = f.start(0);
        // Handshake.
        let syn = actions.packets.remove(0);
        let mut acts = f.on_packet(MILLI, &syn, 2);
        let synack = acts.packets.remove(0);
        let mut acts = f.on_packet(2 * MILLI, &synack, 1);
        // Grow the window a bit by delivering the first two segments.
        assert!(acts.packets.len() >= 2);
        let first: Vec<Packet> = acts.packets.drain(..).collect();
        let mut now = 3 * MILLI;
        let mut in_flight: Vec<Packet> = Vec::new();
        for p in first {
            let reply = f.on_packet(now, &p, 2);
            for r in reply.packets {
                let more = f.on_packet(now + MILLI, &r, 1);
                in_flight.extend(more.packets);
            }
            now += MILLI;
        }
        assert!(in_flight.len() >= 3, "window should have opened, got {}", in_flight.len());
        // Drop the first in-flight segment, deliver the next three: the
        // receiver generates duplicate ACKs and the sender fast-retransmits
        // the missing segment.
        let lost = in_flight.remove(0);
        let lost_seq = lost.tcp.unwrap().seq;
        let mut retransmitted = false;
        for p in in_flight.iter().take(3) {
            let reply = f.on_packet(now, p, 2);
            for r in reply.packets {
                let out = f.on_packet(now + MILLI, &r, 1);
                if out
                    .packets
                    .iter()
                    .any(|q| q.tcp.map(|s| s.retransmit && s.seq == lost_seq).unwrap_or(false))
                {
                    retransmitted = true;
                }
            }
            now += MILLI;
        }
        assert!(retransmitted, "3 duplicate ACKs must trigger a fast retransmit of seq {lost_seq}");
    }

    #[test]
    fn rto_fires_when_all_data_lost() {
        let mut f = flow(TcpWorkload::RepeatedFile { bytes: 20_000, gap: SEC });
        let mut actions = f.start(0);
        let syn = actions.packets.remove(0);
        let mut acts = f.on_packet(MILLI, &syn, 2);
        let synack = acts.packets.remove(0);
        let acts = f.on_packet(2 * MILLI, &synack, 1);
        // Discard the data packets (lost); fire the RTO timer.
        let rto_timer = acts.timers.iter().find(|(_, t)| token_kind(*t) == KIND_RTO).copied();
        let (at, tok) = rto_timer.expect("an RTO must be armed when data is sent");
        let before = f.cwnd();
        let out = f.on_timer(at, tok);
        assert_eq!(f.cwnd(), 1.0);
        assert!(f.cwnd() < before);
        assert_eq!(out.packets.len(), 1);
        assert!(out.packets[0].tcp.unwrap().retransmit);
    }
}
