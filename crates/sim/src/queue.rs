//! Queue disciplines for simulated links.
//!
//! The substrate provides the schedulers the NetFence evaluation needs:
//!
//! * [`DropTail`] — plain FIFO with a byte limit;
//! * [`RedQueue`] — Random Early Detection with the parameters from
//!   Figure 3 of the paper (`min_thresh = 0.5·Q_lim`,
//!   `max_thresh = 0.75·Q_lim`, `w_q = 0.1`);
//! * [`DrrQueue`] — Deficit Round Robin fair queuing \[38\] with a pluggable
//!   [`Classifier`] (per-sender, per-destination, per-AS);
//! * [`HierDrrQueue`] — two-level hierarchical DRR (per source AS, then per
//!   source host) as used by TVA+ and StopIt for their request/fallback
//!   channels;
//! * [`PriorityLevelQueue`] — strict priority across request-packet levels;
//! * [`DualChannelQueue`] — the request/regular/legacy channel split of a
//!   NetFence or TVA+ router (Figure 2), with the request channel capped at
//!   a configurable fraction of the link.
//!
//! All disciplines implement [`QueueDisc`], so links can host any of them
//! and defense systems can compose them.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::packet::{ChannelClass, Packet};
use crate::time::Nanos;

/// A queue discipline attached to a link.
pub trait QueueDisc: std::fmt::Debug {
    /// Offer a packet. Returns the packets dropped as a consequence (often
    /// the offered packet itself when the queue is full).
    fn enqueue(&mut self, now: Nanos, pkt: Packet) -> Vec<Packet>;
    /// Remove the next packet to transmit.
    fn dequeue(&mut self, now: Nanos) -> Option<Packet>;
    /// Total queued bytes.
    fn len_bytes(&self) -> usize;
    /// Total queued packets.
    fn len_pkts(&self) -> usize;
    /// Whether the queue currently signals congestion (used by defense
    /// adapters; RED reports average queue above `min_thresh`).
    fn congested(&self) -> bool {
        false
    }
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len_pkts() == 0
    }

    /// Remove and return *every* queued packet (fault injection: a link
    /// that goes down loses its whole backlog at once). The default
    /// repeatedly dequeues, tolerating disciplines that withhold a packet
    /// for a few rounds (DRR deficit build-up) but giving up once the
    /// queue stops making progress; disciplines that can withhold
    /// indefinitely at a fixed instant (token-capped channels) override
    /// this with a direct sweep.
    fn drain(&mut self, now: Nanos) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut idle_rounds = 0usize;
        while self.len_pkts() > 0 && idle_rounds < 64 {
            match self.dequeue(now) {
                Some(p) => {
                    out.push(p);
                    idle_rounds = 0;
                }
                None => idle_rounds += 1,
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// DropTail
// ---------------------------------------------------------------------------

/// A FIFO queue that drops arriving packets once `limit_bytes` is reached.
#[derive(Debug)]
pub struct DropTail {
    queue: VecDeque<Packet>,
    bytes: usize,
    limit_bytes: usize,
}

impl DropTail {
    /// Create a drop-tail queue bounded to `limit_bytes`.
    pub fn new(limit_bytes: usize) -> Self {
        DropTail { queue: VecDeque::new(), bytes: 0, limit_bytes }
    }
}

impl QueueDisc for DropTail {
    fn enqueue(&mut self, _now: Nanos, pkt: Packet) -> Vec<Packet> {
        if self.bytes + pkt.size > self.limit_bytes {
            return vec![pkt];
        }
        self.bytes += pkt.size;
        self.queue.push_back(pkt);
        Vec::new()
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size;
        Some(pkt)
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn congested(&self) -> bool {
        self.bytes * 2 >= self.limit_bytes
    }
}

// ---------------------------------------------------------------------------
// RED
// ---------------------------------------------------------------------------

/// Random Early Detection parameters.
#[derive(Debug, Clone, Copy)]
pub struct RedParams {
    /// Hard queue limit in bytes (`Q_lim`).
    pub limit_bytes: usize,
    /// Early-drop lower threshold in bytes.
    pub min_thresh: usize,
    /// Early-drop upper threshold in bytes.
    pub max_thresh: usize,
    /// Maximum early-drop probability at `max_thresh`.
    pub max_p: f64,
    /// EWMA weight for the average queue size.
    pub wq: f64,
}

impl RedParams {
    /// The paper's parameters for a link of `capacity` bits/second:
    /// `Q_lim = 0.2 s × capacity`, `min = 0.5·Q_lim`, `max = 0.75·Q_lim`,
    /// `w_q = 0.1`.
    pub fn paper_defaults(capacity_bps: u64) -> Self {
        let limit_bytes = (capacity_bps as f64 * 0.2 / 8.0) as usize;
        RedParams {
            limit_bytes: limit_bytes.max(6000),
            min_thresh: (limit_bytes / 2).max(3000),
            max_thresh: (limit_bytes * 3 / 4).max(4500),
            max_p: 0.1,
            wq: 0.1,
        }
    }
}

/// A RED queue (loss-based congestion detection, §4.6 of the paper).
#[derive(Debug)]
pub struct RedQueue {
    params: RedParams,
    queue: VecDeque<Packet>,
    bytes: usize,
    avg: f64,
    /// Packets since the last early drop (makes drops roughly uniform, as in
    /// the RED paper).
    count_since_drop: u64,
    /// Cheap deterministic PRNG (xorshift) for drop decisions.
    prng: u64,
}

impl RedQueue {
    /// Create a RED queue.
    pub fn new(params: RedParams, seed: u64) -> Self {
        RedQueue {
            params,
            queue: VecDeque::new(),
            bytes: 0,
            avg: 0.0,
            count_since_drop: 0,
            prng: seed | 1,
        }
    }

    /// Create a RED queue with the paper's defaults for a link capacity.
    pub fn for_capacity(capacity_bps: u64, seed: u64) -> Self {
        Self::new(RedParams::paper_defaults(capacity_bps), seed)
    }

    fn next_unit(&mut self) -> f64 {
        // xorshift64*
        let mut x = self.prng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.prng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The current average queue estimate in bytes.
    pub fn avg_bytes(&self) -> f64 {
        self.avg
    }
}

impl QueueDisc for RedQueue {
    fn enqueue(&mut self, _now: Nanos, pkt: Packet) -> Vec<Packet> {
        // Update the average on every arrival.
        self.avg = self.avg * (1.0 - self.params.wq) + self.bytes as f64 * self.params.wq;

        let hard_full = self.bytes + pkt.size > self.params.limit_bytes;
        let early_drop = if self.avg >= self.params.max_thresh as f64 {
            true
        } else if self.avg >= self.params.min_thresh as f64 {
            let span = (self.params.max_thresh - self.params.min_thresh) as f64;
            let p_base = self.params.max_p * (self.avg - self.params.min_thresh as f64) / span;
            let p = (p_base / (1.0 - (self.count_since_drop as f64 * p_base).min(0.9))).min(1.0);
            self.next_unit() < p
        } else {
            false
        };

        if hard_full || early_drop {
            self.count_since_drop = 0;
            return vec![pkt];
        }
        self.count_since_drop += 1;
        self.bytes += pkt.size;
        self.queue.push_back(pkt);
        Vec::new()
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size;
        Some(pkt)
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn congested(&self) -> bool {
        self.avg >= self.params.min_thresh as f64
    }
}

// ---------------------------------------------------------------------------
// DRR
// ---------------------------------------------------------------------------

/// How a fair-queuing discipline maps packets to classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classifier {
    /// One class per source host (per-sender fair queuing).
    BySource,
    /// One class per destination host (TVA+'s per-receiver regular queuing).
    ByDestination,
    /// One class per source AS.
    BySourceAs,
    /// One class per flow id.
    ByFlow,
}

impl Classifier {
    fn class_of(&self, pkt: &Packet) -> u64 {
        match self {
            Classifier::BySource => u64::from(pkt.src),
            Classifier::ByDestination => u64::from(pkt.dst),
            Classifier::BySourceAs => u64::from(pkt.src_as),
            Classifier::ByFlow => pkt.flow as u64,
        }
    }
}

/// Deficit Round Robin fair queuing (Shreedhar & Varghese) with O(1)
/// per-packet work.
#[derive(Debug)]
pub struct DrrQueue {
    classifier: Classifier,
    /// Per-class FIFO queues.
    classes: HashMap<u64, VecDeque<Packet>>,
    /// Per-class byte counts.
    class_bytes: HashMap<u64, usize>,
    /// Active list (round-robin order) and deficit counters.
    active: VecDeque<u64>,
    deficit: HashMap<u64, usize>,
    quantum: usize,
    per_class_limit: usize,
    bytes: usize,
    pkts: usize,
}

impl DrrQueue {
    /// Create a DRR queue. `per_class_limit` bounds each class's backlog in
    /// bytes; `quantum` is the per-round service quantum (typically one
    /// MTU).
    pub fn new(classifier: Classifier, quantum: usize, per_class_limit: usize) -> Self {
        DrrQueue {
            classifier,
            classes: HashMap::new(),
            class_bytes: HashMap::new(),
            active: VecDeque::new(),
            deficit: HashMap::new(),
            quantum,
            per_class_limit,
            bytes: 0,
            pkts: 0,
        }
    }

    /// Number of classes with queued packets.
    pub fn active_classes(&self) -> usize {
        self.active.len()
    }
}

impl QueueDisc for DrrQueue {
    fn enqueue(&mut self, _now: Nanos, pkt: Packet) -> Vec<Packet> {
        let class = self.classifier.class_of(&pkt);
        let bytes = self.class_bytes.entry(class).or_insert(0);
        if *bytes + pkt.size > self.per_class_limit {
            return vec![pkt];
        }
        *bytes += pkt.size;
        self.bytes += pkt.size;
        self.pkts += 1;
        let q = self.classes.entry(class).or_default();
        let was_empty = q.is_empty();
        q.push_back(pkt);
        if was_empty {
            self.active.push_back(class);
            self.deficit.insert(class, 0);
        }
        Vec::new()
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        // Standard DRR: visit the head of the active list, add the quantum,
        // serve if the head packet fits in the deficit, otherwise rotate.
        // When the quantum is smaller than the largest packet, several
        // rounds may be needed before anything can be served.
        let rounds_needed = 1500 / self.quantum.max(1) + 2;
        let mut visited = 0;
        while let Some(&class) = self.active.front() {
            visited += 1;
            if visited > self.active.len() * rounds_needed + 2 {
                break;
            }
            let head_size = match self.classes.get_mut(&class).and_then(|q| q.front()) {
                Some(p) => p.size,
                None => {
                    // Stale active entry (no queue or an empty one):
                    // retire it and move on.
                    self.active.pop_front();
                    self.deficit.remove(&class);
                    continue;
                }
            };
            let d = self.deficit.entry(class).or_insert(0);
            if *d >= head_size {
                *d -= head_size;
                let Some(pkt) = self.classes.get_mut(&class).and_then(|q| q.pop_front()) else {
                    self.active.pop_front();
                    self.deficit.remove(&class);
                    continue;
                };
                self.bytes -= pkt.size;
                self.pkts -= 1;
                if let Some(b) = self.class_bytes.get_mut(&class) {
                    *b -= pkt.size;
                }
                if self.classes.get(&class).is_none_or(|q| q.is_empty()) {
                    self.active.pop_front();
                    self.deficit.remove(&class);
                } // else keep the class at the head until its deficit runs out
                return Some(pkt);
            }
            // Not enough deficit: add a quantum and move to the back of the
            // round.
            *d += self.quantum;
            self.active.rotate_left(1);
        }
        None
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.pkts
    }
}

// ---------------------------------------------------------------------------
// Two-level hierarchical DRR (per-AS then per-source)
// ---------------------------------------------------------------------------

/// Two-level hierarchical fair queuing: the outer level shares the link
/// across source ASes, the inner level shares each AS's allocation across
/// its source hosts. TVA+ and StopIt use this for request packets and for
/// the fallback when receivers do not stop attack traffic (§6.3).
#[derive(Debug)]
pub struct HierDrrQueue {
    /// Outer DRR across ASes; each element is the inner per-source DRR.
    inner: HashMap<u64, DrrQueue>,
    active: VecDeque<u64>,
    deficit: HashMap<u64, usize>,
    quantum: usize,
    per_source_limit: usize,
    bytes: usize,
    pkts: usize,
}

impl HierDrrQueue {
    /// Create the hierarchical queue.
    pub fn new(quantum: usize, per_source_limit: usize) -> Self {
        HierDrrQueue {
            inner: HashMap::new(),
            active: VecDeque::new(),
            deficit: HashMap::new(),
            quantum,
            per_source_limit,
            bytes: 0,
            pkts: 0,
        }
    }
}

impl QueueDisc for HierDrrQueue {
    fn enqueue(&mut self, now: Nanos, pkt: Packet) -> Vec<Packet> {
        let as_class = u64::from(pkt.src_as);
        let size = pkt.size;
        let q = self.inner.entry(as_class).or_insert_with(|| {
            DrrQueue::new(Classifier::BySource, self.quantum, self.per_source_limit)
        });
        let was_empty = q.is_empty();
        let dropped = q.enqueue(now, pkt);
        if dropped.is_empty() {
            self.bytes += size;
            self.pkts += 1;
            if was_empty {
                self.active.push_back(as_class);
                self.deficit.insert(as_class, 0);
            }
        }
        dropped
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        let rounds_needed = 1500 / self.quantum.max(1) + 2;
        let mut visited = 0;
        while let Some(&as_class) = self.active.front() {
            visited += 1;
            if visited > self.active.len() * rounds_needed + 2 {
                break;
            }
            let Some(q) = self.inner.get_mut(&as_class) else {
                // Stale active entry without a queue: retire it.
                self.active.pop_front();
                self.deficit.remove(&as_class);
                continue;
            };
            if q.is_empty() {
                self.active.pop_front();
                self.deficit.remove(&as_class);
                continue;
            }
            // Peek is awkward through the trait; DRR classes are FIFO so use
            // an MTU-sized charge when deficits are checked.
            let head_size = 1500.min(q.len_bytes().max(1));
            let d = self.deficit.entry(as_class).or_insert(0);
            if *d >= head_size {
                if let Some(pkt) = q.dequeue(now) {
                    *d -= pkt.size.min(*d);
                    self.bytes -= pkt.size;
                    self.pkts -= 1;
                    if q.is_empty() {
                        self.active.pop_front();
                        self.deficit.remove(&as_class);
                    }
                    return Some(pkt);
                }
                // The inner queue declined (its own per-round deficit needs
                // to build up): give the round to the next AS but keep this
                // one active.
                *d += self.quantum;
                self.active.rotate_left(1);
                continue;
            }
            *d += self.quantum;
            self.active.rotate_left(1);
        }
        None
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.pkts
    }
}

// ---------------------------------------------------------------------------
// Priority levels (request channel)
// ---------------------------------------------------------------------------

/// Strict-priority queue across request-packet priority levels: higher
/// levels are always served first (§4.2: "routers forward a level-k packet
/// with higher priority than lower-level packets").
#[derive(Debug)]
pub struct PriorityLevelQueue {
    levels: BTreeMap<u8, VecDeque<Packet>>,
    bytes: usize,
    pkts: usize,
    limit_bytes: usize,
}

impl PriorityLevelQueue {
    /// Create a priority-level queue bounded to `limit_bytes`.
    pub fn new(limit_bytes: usize) -> Self {
        PriorityLevelQueue { levels: BTreeMap::new(), bytes: 0, pkts: 0, limit_bytes }
    }
}

impl QueueDisc for PriorityLevelQueue {
    fn enqueue(&mut self, _now: Nanos, pkt: Packet) -> Vec<Packet> {
        if self.bytes + pkt.size > self.limit_bytes {
            // Drop the lowest-priority queued packet if the newcomer beats
            // it; otherwise drop the newcomer.
            let lowest = self.levels.iter().find(|(_, q)| !q.is_empty()).map(|(l, _)| *l);
            match lowest {
                Some(l) if l < pkt.priority => {
                    let Some(victim) = self.levels.get_mut(&l).and_then(|q| q.pop_front()) else {
                        return vec![pkt];
                    };
                    self.bytes -= victim.size;
                    self.pkts -= 1;
                    self.bytes += pkt.size;
                    self.pkts += 1;
                    self.levels.entry(pkt.priority).or_default().push_back(pkt);
                    return vec![victim];
                }
                _ => return vec![pkt],
            }
        }
        self.bytes += pkt.size;
        self.pkts += 1;
        self.levels.entry(pkt.priority).or_default().push_back(pkt);
        Vec::new()
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        // Serve the highest priority level that has packets.
        let level = *self.levels.iter().rev().find(|(_, q)| !q.is_empty())?.0;
        let pkt = self.levels.get_mut(&level).and_then(|q| q.pop_front())?;
        self.bytes -= pkt.size;
        self.pkts -= 1;
        Some(pkt)
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn len_pkts(&self) -> usize {
        self.pkts
    }
}

// ---------------------------------------------------------------------------
// Channel split (request / regular / legacy)
// ---------------------------------------------------------------------------

/// The three-channel router queue of Figure 2: regular and request traffic
/// are separated, the request channel is strictly capped at a fraction of
/// the link capacity (§3.1/§4.2: "limited to consume no more than a small
/// fraction (5%) of the output link capacity"), and legacy traffic is only
/// served when both are empty.
///
/// The cap is enforced with a token bucket refilled at
/// `fraction × capacity`; when the request channel has exhausted its tokens
/// its packets wait even if the link is otherwise idle.
#[derive(Debug)]
pub struct DualChannelQueue {
    regular: Box<dyn QueueDisc>,
    request: Box<dyn QueueDisc>,
    legacy: DropTail,
    /// Request-channel rate cap in bits per second.
    request_rate_bps: f64,
    /// Token bucket (bits) for the request channel.
    request_tokens: f64,
    /// Maximum token accumulation (bits).
    request_burst: f64,
    /// Last token refill time.
    last_refill: Nanos,
    served_request: u64,
    served_total: u64,
}

impl DualChannelQueue {
    /// Build the channel split from a regular-channel and request-channel
    /// discipline. `capacity_bps` is the link capacity and
    /// `request_fraction` the share reserved for the request channel.
    pub fn new(
        regular: Box<dyn QueueDisc>,
        request: Box<dyn QueueDisc>,
        legacy_limit_bytes: usize,
        capacity_bps: u64,
        request_fraction: f64,
    ) -> Self {
        let rate = capacity_bps as f64 * request_fraction;
        DualChannelQueue {
            regular,
            request,
            legacy: DropTail::new(legacy_limit_bytes),
            request_rate_bps: rate,
            request_tokens: 2.0 * 1500.0 * 8.0,
            request_burst: (2.0 * 1500.0 * 8.0f64).max(rate * 0.05),
            last_refill: 0,
            served_request: 0,
            served_total: 0,
        }
    }

    /// Immutable access to the regular channel (for congestion inspection).
    pub fn regular(&self) -> &dyn QueueDisc {
        self.regular.as_ref()
    }

    /// Bytes served from the request channel so far.
    pub fn served_request_bytes(&self) -> u64 {
        self.served_request
    }

    fn refill(&mut self, now: Nanos) {
        let elapsed = now.saturating_sub(self.last_refill);
        self.last_refill = now;
        self.request_tokens = (self.request_tokens + elapsed as f64 / 1e9 * self.request_rate_bps)
            .min(self.request_burst);
    }
}

impl QueueDisc for DualChannelQueue {
    fn enqueue(&mut self, now: Nanos, pkt: Packet) -> Vec<Packet> {
        match pkt.channel {
            ChannelClass::Regular => self.regular.enqueue(now, pkt),
            ChannelClass::Request => self.request.enqueue(now, pkt),
            ChannelClass::Legacy => self.legacy.enqueue(now, pkt),
        }
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.refill(now);
        // Serve the request channel when it has packets and tokens: its
        // small slice is guaranteed even under regular backlog, and strictly
        // capped even when the link is idle.
        let pkt = if !self.request.is_empty() && self.request_tokens > 0.0 {
            self.request.dequeue(now)
        } else if !self.regular.is_empty() {
            self.regular.dequeue(now)
        } else if self.request.is_empty() {
            self.legacy.dequeue(now)
        } else {
            // Request packets waiting but out of tokens: keep the link idle
            // for them (strict cap).
            None
        };
        if let Some(p) = &pkt {
            self.served_total += p.size as u64;
            if p.channel == ChannelClass::Request {
                self.served_request += p.size as u64;
                self.request_tokens -= p.size as f64 * 8.0;
            }
        }
        pkt
    }

    fn len_bytes(&self) -> usize {
        self.regular.len_bytes() + self.request.len_bytes() + self.legacy.len_bytes()
    }

    fn len_pkts(&self) -> usize {
        self.regular.len_pkts() + self.request.len_pkts() + self.legacy.len_pkts()
    }

    fn congested(&self) -> bool {
        self.regular.congested()
    }

    fn drain(&mut self, now: Nanos) -> Vec<Packet> {
        // The request channel's token cap would starve the default
        // dequeue-until-empty loop; sweep all three channels directly.
        // Drained packets are lost, not served: the served counters stay
        // untouched.
        let mut out = self.regular.drain(now);
        out.extend(self.request.drain(now));
        out.extend(self.legacy.drain(now));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: u32, size: usize) -> Packet {
        Packet::udp(0, src, 999, size, 0)
    }

    #[test]
    fn drop_tail_limits_bytes() {
        let mut q = DropTail::new(3000);
        assert!(q.enqueue(0, pkt(1, 1500)).is_empty());
        assert!(q.enqueue(0, pkt(1, 1500)).is_empty());
        let dropped = q.enqueue(0, pkt(1, 1500));
        assert_eq!(dropped.len(), 1);
        assert_eq!(q.len_pkts(), 2);
        assert_eq!(q.len_bytes(), 3000);
        assert!(q.dequeue(0).is_some());
        assert_eq!(q.len_bytes(), 1500);
    }

    #[test]
    fn red_drops_probabilistically_under_load() {
        let mut q = RedQueue::for_capacity(1_000_000, 42); // Qlim = 25 kB
        let mut dropped = 0;
        // Fill without draining: the average climbs, early drops kick in,
        // and the hard limit is never exceeded.
        for _ in 0..100 {
            dropped += q.enqueue(0, pkt(1, 1500)).len();
        }
        assert!(dropped > 0, "RED should early-drop under sustained arrival");
        assert!(q.len_bytes() <= RedParams::paper_defaults(1_000_000).limit_bytes);
        assert!(q.congested());
    }

    #[test]
    fn red_is_quiet_at_low_load() {
        let mut q = RedQueue::for_capacity(10_000_000, 42);
        for _ in 0..200 {
            let d = q.enqueue(0, pkt(1, 1500));
            assert!(d.is_empty());
            assert!(q.dequeue(0).is_some());
        }
        assert!(!q.congested());
    }

    #[test]
    fn drr_shares_bandwidth_equally() {
        let mut q = DrrQueue::new(Classifier::BySource, 1500, 1_000_000);
        // Source 1 floods 100 packets, source 2 queues 10.
        for _ in 0..100 {
            q.enqueue(0, pkt(1, 1500));
        }
        for _ in 0..10 {
            q.enqueue(0, pkt(2, 1500));
        }
        assert_eq!(q.active_classes(), 2);
        // Dequeue 20: both sources should be served ~10 times each.
        let mut count = HashMap::new();
        for _ in 0..20 {
            let p = q.dequeue(0).unwrap();
            *count.entry(p.src).or_insert(0) += 1;
        }
        assert_eq!(count[&2], 10, "the light source gets its full backlog served");
        assert_eq!(count[&1], 10, "the flooder gets only its fair share");
    }

    #[test]
    fn drr_respects_per_class_limit() {
        let mut q = DrrQueue::new(Classifier::BySource, 1500, 4500);
        let mut dropped = 0;
        for _ in 0..10 {
            dropped += q.enqueue(0, pkt(7, 1500)).len();
        }
        assert_eq!(dropped, 7);
        assert_eq!(q.len_pkts(), 3);
    }

    #[test]
    fn drr_handles_unequal_packet_sizes() {
        let mut q = DrrQueue::new(Classifier::BySource, 1500, 1_000_000);
        for _ in 0..50 {
            q.enqueue(0, pkt(1, 1500)); // big packets
            for _ in 0..15 {
                q.enqueue(0, pkt(2, 100)); // the same bytes in small packets
            }
        }
        // Serve ~30 kB: byte shares should be roughly equal, so source 2
        // gets many more packets out.
        let mut bytes = HashMap::new();
        let mut served = 0usize;
        while served < 30_000 {
            let p = q.dequeue(0).unwrap();
            served += p.size;
            *bytes.entry(p.src).or_insert(0usize) += p.size;
        }
        let b1 = bytes[&1] as f64;
        let b2 = bytes[&2] as f64;
        assert!((b1 / b2) < 1.5 && (b2 / b1) < 1.5, "byte shares {b1} vs {b2}");
    }

    #[test]
    fn hierarchical_drr_fair_across_ases_then_sources() {
        let mut q = HierDrrQueue::new(1500, 1_000_000);
        // AS 1 has two hosts (one floods), AS 2 has one host.
        let mk = |src: u32, as_num: u32| {
            let mut p = pkt(src, 1500);
            p.src_as = as_num;
            p
        };
        for _ in 0..100 {
            q.enqueue(0, mk(11, 1));
        }
        for _ in 0..20 {
            q.enqueue(0, mk(12, 1));
            q.enqueue(0, mk(21, 2));
        }
        let mut count = HashMap::new();
        for _ in 0..40 {
            let p = q.dequeue(0).unwrap();
            *count.entry(p.src).or_insert(0) += 1;
        }
        // AS-level fairness: AS 2 gets ~half the service.
        assert!(count[&21] >= 15, "AS 2 share {:?}", count);
        // Within AS 1, host 12 is not starved by host 11.
        assert!(count[&12] >= 8, "intra-AS share {:?}", count);
    }

    #[test]
    fn priority_levels_served_highest_first() {
        let mut q = PriorityLevelQueue::new(1_000_000);
        let mk = |prio: u8| {
            let mut p = pkt(prio as u32, 92);
            p.priority = prio;
            p
        };
        q.enqueue(0, mk(0));
        q.enqueue(0, mk(5));
        q.enqueue(0, mk(3));
        q.enqueue(0, mk(5));
        let order: Vec<u8> = (0..4).map(|_| q.dequeue(0).unwrap().priority).collect();
        assert_eq!(order, vec![5, 5, 3, 0]);
    }

    #[test]
    fn priority_queue_evicts_lower_priority_when_full() {
        let mut q = PriorityLevelQueue::new(200);
        let mk = |prio: u8| {
            let mut p = pkt(prio as u32, 92);
            p.priority = prio;
            p
        };
        q.enqueue(0, mk(0));
        q.enqueue(0, mk(0));
        // A high-priority packet displaces a low-priority one.
        let dropped = q.enqueue(0, mk(9));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].priority, 0);
        // A low-priority packet arriving at a full queue is itself dropped.
        let dropped = q.enqueue(0, mk(0));
        assert_eq!(dropped[0].priority, 0);
        assert_eq!(q.dequeue(0).unwrap().priority, 9);
    }

    #[test]
    fn dual_channel_caps_request_share_and_starves_legacy() {
        let mut q = DualChannelQueue::new(
            Box::new(DropTail::new(1_000_000)),
            Box::new(PriorityLevelQueue::new(1_000_000)),
            1_000_000,
            10_000_000,
            0.05,
        );
        for _ in 0..200 {
            let mut r = pkt(1, 1000);
            r.channel = ChannelClass::Regular;
            q.enqueue(0, r);
            let mut rq = pkt(2, 1000);
            rq.channel = ChannelClass::Request;
            q.enqueue(0, rq);
            let mut l = pkt(3, 1000);
            l.channel = ChannelClass::Legacy;
            q.enqueue(0, l);
        }
        let mut served = HashMap::new();
        for _ in 0..100 {
            let p = q.dequeue(0).unwrap();
            *served.entry(p.channel).or_insert(0) += 1;
        }
        // Request share stays close to the 5% cap while regular packets are
        // backlogged, and legacy gets nothing.
        let req = *served.get(&ChannelClass::Request).unwrap_or(&0);
        assert!(req <= 8, "request served {req} of 100");
        assert!(req >= 3, "request channel must not be fully starved, got {req}");
        assert_eq!(served.get(&ChannelClass::Legacy), None);
        assert!(served[&ChannelClass::Regular] >= 90);
    }

    #[test]
    fn dual_channel_is_work_conserving() {
        let mut q = DualChannelQueue::new(
            Box::new(DropTail::new(1_000_000)),
            Box::new(PriorityLevelQueue::new(1_000_000)),
            1_000_000,
            10_000_000,
            0.05,
        );
        for _ in 0..10 {
            let mut rq = pkt(2, 92);
            rq.channel = ChannelClass::Request;
            q.enqueue(0, rq);
        }
        let mut l = pkt(3, 1500);
        l.channel = ChannelClass::Legacy;
        q.enqueue(0, l);
        // With an empty regular channel the request packets are all served,
        // then the legacy packet.
        let mut kinds = Vec::new();
        while let Some(p) = q.dequeue(0) {
            kinds.push(p.channel);
        }
        assert_eq!(kinds.len(), 11);
        assert_eq!(kinds[10], ChannelClass::Legacy);
        assert!(kinds[..10].iter().all(|c| *c == ChannelClass::Request));
    }
}
