//! Per-node defense deployment: the API through which DoS defense systems
//! are *deployed onto* a network instead of observing it from a global
//! oracle.
//!
//! NetFence's thesis is "inside out": policing state lives at individual
//! access routers, bottleneck routers and end-host shims, and the paper's
//! deployment story only makes sense when some networks deploy and others
//! don't. This module models exactly that:
//!
//! * a [`DefenseFactory`] deploys a defense onto a [`Network`] according to
//!   a [`DeploymentSpec`] (which ASes adopt), producing a [`Deployment`];
//! * a [`Deployment`] holds dense per-node agents — one optional
//!   [`HostShim`] per host node, one optional [`RouterAgent`] per router
//!   node — plus a per-link [`QueueFactory`] and a [`ControlPlane`] message
//!   bus for out-of-band coordination (Passport key exchange, StopIt filter
//!   requests);
//! * nodes *without* an agent are legacy nodes: their hosts send plain
//!   packets and their routers forward blindly, which is how partial
//!   (incremental) deployment scenarios are expressed;
//! * after a run, [`Deployment::report`] merges every agent's counters into
//!   one typed [`DefenseReport`] — there is no downcasting to inspect
//!   defense-specific state.
//!
//! The engine indexes agents by dense node id and links by dense link
//! index, so the per-packet fast path never hashes.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use netfence_telemetry::{DropBudget, DropCause, Timeline};

use crate::packet::{AsNum, HostAddr, LinkAddr, Packet};
use crate::queue::QueueDisc;
use crate::time::Nanos;
use crate::topology::{LinkSpec, Network, NodeId};

/// What a router does with a packet about to be forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterAction {
    /// Enqueue on the outgoing link now.
    Forward,
    /// Hold the packet (e.g. in an access-router rate limiter) and enqueue
    /// it at the given absolute time.
    Delay {
        /// When to release the packet.
        release_at: Nanos,
    },
    /// Drop the packet, stating which mechanism killed it (the engine
    /// folds the cause into the run's drop budget).
    Drop(DropCause),
}

/// A dense reference to a link handed to router agents: the engine-side
/// index (for dense agent state) plus the protocol-visible address (what
/// NetFence feedback calls the link's IP address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkRef {
    /// Index into [`Network::links`].
    pub index: usize,
    /// Protocol-level link address.
    pub addr: LinkAddr,
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

/// An addressable agent on the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// The host shim at a host node.
    Host(NodeId),
    /// The router agent at a router node.
    Router(NodeId),
}

/// One queued control-plane message.
pub struct ControlMsg {
    /// Destination agent.
    pub to: Endpoint,
    /// Originating agent, when the message was queued from inside an agent
    /// hook; `None` for deploy-time (controller-origin) messages. Transports
    /// use this to locate the sender's AS.
    pub from: Option<Endpoint>,
    /// Type-erased payload; the receiving agent downcasts to the message
    /// types it understands and ignores the rest.
    pub payload: Box<dyn Any>,
}

impl std::fmt::Debug for ControlMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ControlMsg {{ to: {:?}, from: {:?} }}", self.to, self.from)
    }
}

/// The transport's decision for one control-plane message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelVerdict {
    /// Deliver at absolute time `at` (times in the past are delivered
    /// immediately), after `retransmits` lost attempts were recovered by
    /// retransmission.
    Deliver {
        /// Absolute delivery time.
        at: Nanos,
        /// Lost attempts that were retransmitted before one got through.
        retransmits: u32,
    },
    /// Every attempt (the original plus `retransmits` retries) was lost —
    /// the message never arrives.
    Lost {
        /// Retransmissions spent before giving up.
        retransmits: u32,
    },
}

/// A pluggable control-plane transport: decides when (and whether) each
/// queued message reaches its destination.
///
/// Without an installed channel the [`ControlPlane`] keeps its historical
/// behavior — synchronous, reliable, zero-latency delivery. Installing a
/// channel (see the `netfence-ctrl` crate) subjects every message to
/// propagation latency, loss/retransmission and controller outages.
pub trait ControlChannel: std::fmt::Debug {
    /// Plan the fate of a message queued at simulated time `now` from
    /// `from` (or `None` for deploy-time controller-origin messages) to
    /// `to`.
    fn plan(&mut self, now: Nanos, from: Option<Endpoint>, to: Endpoint) -> ChannelVerdict;

    /// Sample this transport's state (per-AS session health, reconnect
    /// counts) into a telemetry timeline. Pure observer: implementations
    /// must not mutate transport state and must emit rows in a
    /// deterministic order. Default: nothing to report.
    fn probe(&self, _now: Nanos, _out: &mut Timeline) {}
}

/// The out-of-band coordination bus of a deployment.
///
/// Agents cannot reach into each other's state: anything that crosses a
/// node boundary outside a packet — Passport AES key announcements, StopIt
/// filter-installation requests — travels as a message. The engine drains
/// the bus after every hook invocation. With no installed
/// [`ControlChannel`] every message is delivered reliably at the current
/// simulated time (control traffic modelled as reliable and prompt); an
/// installed channel subjects messages to latency, loss and outages.
#[derive(Debug, Default)]
pub struct ControlPlane {
    outbox: Vec<ControlMsg>,
    host_node: Arc<HashMap<HostAddr, NodeId>>,
    access_router: Arc<HashMap<HostAddr, NodeId>>,
    channel: Option<Box<dyn ControlChannel>>,
    sender: Option<Endpoint>,
    /// Messages delivered to an agent.
    pub delivered: u64,
    /// Messages addressed to a legacy (agent-less) node and dropped — the
    /// partial-deployment failure mode (e.g. a StopIt filter request for a
    /// source whose AS never deployed).
    pub undeliverable: u64,
    /// Transport-level retransmissions performed before messages got
    /// through (zero without an installed channel).
    pub retransmits: u64,
    /// Messages lost in transit after exhausting retransmission (zero
    /// without an installed channel).
    pub lost: u64,
}

impl ControlPlane {
    /// A control plane with the address books of `net` (shared, not
    /// copied — deployments only read them).
    pub fn for_network(net: &Network) -> Self {
        ControlPlane {
            host_node: Arc::clone(&net.host_index),
            access_router: Arc::clone(&net.access_router),
            ..ControlPlane::default()
        }
    }

    /// Install a transport; subsequent messages go through its
    /// [`ControlChannel::plan`] instead of the instant-reliable default.
    pub fn install_channel(&mut self, channel: Box<dyn ControlChannel>) {
        self.channel = Some(channel);
    }

    /// Whether a transport is installed.
    pub fn has_channel(&self) -> bool {
        self.channel.is_some()
    }

    /// Record which agent's hook is currently running, so queued messages
    /// carry their origin. The engine maintains this; agents never call it.
    pub fn set_sender(&mut self, sender: Option<Endpoint>) {
        self.sender = sender;
    }

    /// Plan the fate of one message (engine-side). Without a channel this
    /// is the degenerate instant-reliable verdict.
    pub fn plan_delivery(&mut self, now: Nanos, msg: &ControlMsg) -> ChannelVerdict {
        match &mut self.channel {
            Some(ch) => ch.plan(now, msg.from, msg.to),
            None => ChannelVerdict::Deliver { at: now, retransmits: 0 },
        }
    }

    /// Queue a message to the shim of host `host`. Returns false when the
    /// address is unknown.
    pub fn to_host(&mut self, host: HostAddr, payload: impl Any) -> bool {
        match self.host_node.get(&host) {
            Some(&node) => {
                self.outbox.push(ControlMsg {
                    to: Endpoint::Host(node),
                    from: self.sender,
                    payload: Box::new(payload),
                });
                true
            }
            None => false,
        }
    }

    /// Queue a message to the router agent at `node`.
    pub fn to_router(&mut self, node: NodeId, payload: impl Any) {
        self.outbox.push(ControlMsg {
            to: Endpoint::Router(node),
            from: self.sender,
            payload: Box::new(payload),
        });
    }

    /// Queue a message to the access router of `host` (how StopIt filter
    /// requests find the router nearest the source). Returns false when the
    /// host has no access router.
    pub fn to_access_router_of(&mut self, host: HostAddr, payload: impl Any) -> bool {
        match self.access_router.get(&host) {
            Some(&node) => {
                self.outbox.push(ControlMsg {
                    to: Endpoint::Router(node),
                    from: self.sender,
                    payload: Box::new(payload),
                });
                true
            }
            None => false,
        }
    }

    /// Sample the installed transport's state into a telemetry timeline
    /// (no-op on the instant-reliable default bus).
    pub fn probe(&self, now: Nanos, out: &mut Timeline) {
        if let Some(ch) = &self.channel {
            ch.probe(now, out);
        }
    }

    /// Number of queued, undelivered messages.
    pub fn pending(&self) -> usize {
        self.outbox.len()
    }

    /// Take the queued messages for delivery (used by the engine).
    pub fn take_outbox(&mut self) -> Vec<ControlMsg> {
        std::mem::take(&mut self.outbox)
    }
}

// ---------------------------------------------------------------------------
// Agent traits
// ---------------------------------------------------------------------------

/// The defense agent running on one end host (the "shim layer between IP
/// and TCP/UDP" of §3.1). All methods default to no-ops.
pub trait HostShim: std::fmt::Debug {
    /// The host is about to hand a packet to the network: attach shim
    /// headers, set the channel/priority, grow the wire size.
    fn on_send(&mut self, _now: Nanos, _pkt: &mut Packet, _ctl: &mut ControlPlane) {}

    /// A packet arrived at this host, before the transport sees it.
    fn on_receive(&mut self, _now: Nanos, _pkt: &Packet, _ctl: &mut ControlPlane) {}

    /// A control-plane message addressed to this host arrived.
    fn on_control(&mut self, _now: Nanos, _msg: Box<dyn Any>, _ctl: &mut ControlPlane) {}

    /// Periodic housekeeping, every `defense_tick`.
    fn tick(&mut self, _now: Nanos, _ctl: &mut ControlPlane) {}

    /// Merge this shim's counters into the deployment-wide report.
    fn report(&self, _out: &mut DefenseReport) {}
}

/// A data-plane fault delivered to one router's defense agent by the
/// engine's fault-injection machinery (`netfence-faults` compiles a
/// declarative plan into these). Every variant is a *state* fault: link
/// failures are handled by the engine itself and never reach an agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterFault {
    /// The router lost power and came back: the agent must discard all
    /// volatile defense state (rate limiters, pairwise AS keys, filter
    /// tables, capabilities) exactly as the paper's fail-safe argument
    /// assumes (§4.4), then re-bootstrap through the control plane.
    Reboot,
    /// The router's time-varying secret `Ka` rotated out from under the
    /// feedback already circulating: held stamps stop validating until
    /// senders obtain fresh ones.
    KeyDesync,
    /// The router's clock is skewed by `offset_ns` (signed, nanoseconds)
    /// relative to true simulated time from this instant on. A window's
    /// end is delivered as a second `ClockSkew { offset_ns: 0 }` fault.
    ClockSkew {
        /// Signed skew applied to the agent's view of `now`.
        offset_ns: i64,
    },
    /// Memory pressure forced the router to evict up to `evict` rules from
    /// each of its policy stores (oldest-expiry first, deterministic).
    MemoryPressure {
        /// Maximum rules force-evicted per store.
        evict: usize,
    },
}

/// The defense agent running on one router. All methods default to no-ops
/// (a legacy router simply has no agent at all).
pub trait RouterAgent: std::fmt::Debug {
    /// The router is about to enqueue `pkt` on `out_link`; `is_access`
    /// tells whether this router is the packet's access router (first
    /// router after the sending host).
    fn at_router(
        &mut self,
        _now: Nanos,
        _is_access: bool,
        _out_link: LinkRef,
        _pkt: &mut Packet,
        _ctl: &mut ControlPlane,
    ) -> RouterAction {
        RouterAction::Forward
    }

    /// A packet this agent previously delayed via [`RouterAction::Delay`]
    /// is being released.
    fn on_delayed_release(&mut self, _now: Nanos, _pkt: &mut Packet, _ctl: &mut ControlPlane) {}

    /// A packet is being pulled off one of this router's outgoing links for
    /// transmission (bottleneck routers stamp congestion policing feedback
    /// here).
    fn on_link_dequeue(&mut self, _now: Nanos, _link: LinkRef, _pkt: &mut Packet) {}

    /// One of this router's outgoing links dropped a packet from its queue.
    fn on_link_drop(&mut self, _now: Nanos, _link: LinkRef, _pkt: &Packet) {}

    /// A control-plane message addressed to this router arrived.
    fn on_control(&mut self, _now: Nanos, _msg: Box<dyn Any>, _ctl: &mut ControlPlane) {}

    /// Periodic housekeeping (control-interval AIMD, detection EWMAs, …).
    fn tick(&mut self, _now: Nanos, _ctl: &mut ControlPlane) {}

    /// A data-plane fault hit this router (see [`RouterFault`]). Default:
    /// nothing to lose — an agent without volatile state is trivially
    /// fail-safe.
    fn on_fault(&mut self, _now: Nanos, _fault: RouterFault, _ctl: &mut ControlPlane) {}

    /// Merge this agent's counters into the deployment-wide report.
    fn report(&self, _out: &mut DefenseReport) {}

    /// Sample this agent's live state (limiter rates, policy-store
    /// occupancy) into a telemetry timeline. Pure observer: called on the
    /// engine's sample clock when the timeline is enabled; implementations
    /// must not mutate agent state and must emit rows in a deterministic
    /// order (aggregate hash maps through a `BTreeMap` first). Default:
    /// nothing to report.
    fn probe(&self, _now: Nanos, _out: &mut Timeline) {}
}

/// Per-link queue-discipline construction for a deployment. Returning
/// `None` keeps the engine's default (DropTail/RED per the topology).
pub trait QueueFactory: std::fmt::Debug {
    /// Build the queue for link `link_index` with spec `spec`, or `None`
    /// for the default.
    fn make_queue(&mut self, link_index: usize, spec: &LinkSpec) -> Option<Box<dyn QueueDisc>>;
}

/// The default: every link keeps its topology-declared discipline.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultQueues;

impl QueueFactory for DefaultQueues {
    fn make_queue(&mut self, _link_index: usize, _spec: &LinkSpec) -> Option<Box<dyn QueueDisc>> {
        None
    }
}

// ---------------------------------------------------------------------------
// Deployment spec
// ---------------------------------------------------------------------------

/// Which ASes a partial deployment covers.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// `coverage` applies to the host-bearing (edge) ASes in ascending AS
    /// order: the first `round(coverage · n)` deploy. Hostless transit ASes
    /// deploy whenever at least one edge AS does (the "infrastructure
    /// first" adoption story of §5.3).
    FirstEdgeAses,
    /// Like [`Placement::FirstEdgeAses`] but the deploying edge ASes are
    /// picked pseudo-randomly from the given seed.
    Seeded(u64),
    /// Exactly these ASes deploy; `coverage` is ignored.
    Explicit(Vec<AsNum>),
}

/// How much of the network deploys the defense.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentSpec {
    /// Fraction of edge ASes that deploy (0.0 = pure legacy network,
    /// 1.0 = universal deployment).
    pub coverage: f64,
    /// Which ASes the coverage falls on.
    pub placement: Placement,
}

impl Default for DeploymentSpec {
    fn default() -> Self {
        DeploymentSpec::full()
    }
}

impl DeploymentSpec {
    /// Universal deployment (every AS).
    pub fn full() -> Self {
        DeploymentSpec { coverage: 1.0, placement: Placement::FirstEdgeAses }
    }

    /// No deployment anywhere (equivalent to an undefended network).
    pub fn none() -> Self {
        DeploymentSpec { coverage: 0.0, placement: Placement::FirstEdgeAses }
    }

    /// Deploy on the first `coverage` fraction of edge ASes.
    pub fn coverage(coverage: f64) -> Self {
        DeploymentSpec { coverage: coverage.clamp(0.0, 1.0), placement: Placement::FirstEdgeAses }
    }

    /// Deploy on a seeded pseudo-random `coverage` fraction of edge ASes.
    pub fn seeded(coverage: f64, seed: u64) -> Self {
        DeploymentSpec { coverage: coverage.clamp(0.0, 1.0), placement: Placement::Seeded(seed) }
    }

    /// Deploy on exactly the listed ASes.
    pub fn explicit(ases: Vec<AsNum>) -> Self {
        DeploymentSpec { coverage: 1.0, placement: Placement::Explicit(ases) }
    }

    /// Resolve which ASes of `net` deploy, sorted ascending.
    pub fn deploying_ases(&self, net: &Network) -> Vec<AsNum> {
        let (edge, transit) = partition_ases(net);
        let all: Vec<AsNum> = {
            let mut v = edge.clone();
            v.extend(&transit);
            v.sort_unstable();
            v
        };
        match &self.placement {
            Placement::Explicit(list) => {
                let mut v: Vec<AsNum> = all.iter().copied().filter(|a| list.contains(a)).collect();
                v.sort_unstable();
                v
            }
            Placement::FirstEdgeAses | Placement::Seeded(_) => {
                let seed = match &self.placement {
                    Placement::Seeded(seed) => Some(*seed),
                    _ => None,
                };
                let mut chosen = pick_fraction(&edge, self.coverage, seed);
                if chosen.is_empty() {
                    return Vec::new();
                }
                chosen.extend(transit);
                chosen.sort_unstable();
                chosen
            }
        }
    }

    /// Resolve fractional coverage against an explicit list of *source*
    /// (sender-hosting) ASes into an equivalent [`Placement::Explicit`]
    /// spec: the first (or seeded) `coverage` fraction of `source_ases`
    /// deploy, and every other AS of `net` — destination side, transit
    /// core — deploys whenever coverage is nonzero (the "infrastructure
    /// first" adoption story of §5.3). Explicit placements pass through
    /// untouched.
    ///
    /// This is the single coverage rule shared by the experiment runner
    /// (which feeds it the role metadata of classic or generated
    /// topologies) — it must agree with [`DeploymentSpec::deploying_ases`]
    /// or `coverage = 1.0` would stop reproducing full deployment.
    pub fn resolve_for_source_ases(&self, net: &Network, source_ases: &[AsNum]) -> DeploymentSpec {
        match &self.placement {
            Placement::Explicit(_) => self.clone(),
            Placement::FirstEdgeAses | Placement::Seeded(_) => {
                if self.coverage <= 0.0 {
                    return DeploymentSpec::explicit(Vec::new());
                }
                let mut sources = source_ases.to_vec();
                sources.sort_unstable();
                sources.dedup();
                let seed = match self.placement {
                    Placement::Seeded(seed) => Some(seed),
                    _ => None,
                };
                let mut chosen = pick_fraction(&sources, self.coverage, seed);
                let mut all: Vec<AsNum> = net.nodes.iter().map(|n| n.as_num()).collect();
                all.sort_unstable();
                all.dedup();
                chosen.extend(all.into_iter().filter(|a| sources.binary_search(a).is_err()));
                chosen.sort_unstable();
                chosen.dedup();
                DeploymentSpec::explicit(chosen)
            }
        }
    }

    /// Resolve the spec against `net` into per-node deployment flags.
    pub fn resolve(&self, net: &Network) -> DeployMap {
        let ases = self.deploying_ases(net);
        let (edge, transit) = partition_ases(net);
        let node_deployed =
            net.nodes.iter().map(|n| ases.binary_search(&n.as_num()).is_ok()).collect();
        DeployMap { node_deployed, ases, total_ases: edge.len() + transit.len() }
    }
}

/// Partition a network's ASes into (edge, transit): edge ASes contain at
/// least one host, transit ASes are router-only. Both lists come back
/// sorted ascending and deduplicated, in one pass over the nodes.
fn partition_ases(net: &Network) -> (Vec<AsNum>, Vec<AsNum>) {
    let mut host_as: Vec<AsNum> = Vec::new();
    let mut router_as: Vec<AsNum> = Vec::new();
    for n in &net.nodes {
        if n.host_addr().is_some() {
            host_as.push(n.as_num());
        } else {
            router_as.push(n.as_num());
        }
    }
    host_as.sort_unstable();
    host_as.dedup();
    router_as.sort_unstable();
    router_as.dedup();
    let transit: Vec<AsNum> =
        router_as.into_iter().filter(|a| host_as.binary_search(a).is_err()).collect();
    (host_as, transit)
}

/// Pick the first (or, with `seed`, a pseudo-random) `coverage` fraction
/// of `ases` (sorted ascending, deduplicated). This is the single
/// coverage-selection rule, shared by [`DeploymentSpec::deploying_ases`]
/// and the experiment runner's source-AS interpretation — the two must
/// agree or `coverage = 1.0` would stop reproducing full deployment.
pub fn pick_fraction(ases: &[AsNum], coverage: f64, seed: Option<u64>) -> Vec<AsNum> {
    let k = (coverage.clamp(0.0, 1.0) * ases.len() as f64).round() as usize;
    let k = k.min(ases.len());
    match seed {
        Some(seed) => {
            let mut keyed: Vec<(u64, AsNum)> = ases
                .iter()
                .map(|&a| {
                    let mut x = seed ^ (a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    (crate::rng::splitmix64(&mut x), a)
                })
                .collect();
            keyed.sort_unstable();
            keyed.into_iter().take(k).map(|(_, a)| a).collect()
        }
        None => ases.iter().copied().take(k).collect(),
    }
}

/// A [`DeploymentSpec`] resolved against a concrete network.
#[derive(Debug, Clone)]
pub struct DeployMap {
    node_deployed: Vec<bool>,
    /// The deploying ASes, sorted ascending.
    pub ases: Vec<AsNum>,
    /// Total number of ASes in the network.
    pub total_ases: usize,
}

impl DeployMap {
    /// Whether the node deploys the defense.
    pub fn node(&self, node: NodeId) -> bool {
        self.node_deployed[node.0]
    }

    /// Whether an AS deploys the defense.
    pub fn as_deployed(&self, as_num: AsNum) -> bool {
        self.ases.binary_search(&as_num).is_ok()
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// The typed post-run summary of a deployment, merged from every agent's
/// counters. This replaces the old `as_any()` downcast paths: the fields a
/// given defense does not use simply stay zero.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseReport {
    /// Short defense name ("netfence", "tva+", "stopit", "fq", "none").
    pub name: &'static str,
    /// How many ASes deployed the defense.
    pub deployed_ases: usize,
    /// Total ASes in the network.
    pub total_ases: usize,
    /// Host shims installed.
    pub host_shims: usize,
    /// Router agents installed.
    pub router_agents: usize,
    /// Packets dropped by access-router request limiters (NetFence).
    pub request_drops: u64,
    /// Packets dropped by per-(sender, bottleneck) rate limiters
    /// (NetFence).
    pub regular_drops: u64,
    /// Packets dropped by per-AS damage-localization policers (NetFence
    /// §4.5).
    pub as_policer_drops: u64,
    /// Packets dropped by installed filters (StopIt).
    pub filtered_drops: u64,
    /// Unauthorized regular packets dropped (TVA+).
    pub unauthorized_drops: u64,
    /// Packets whose feedback was stamped `L↓` at a bottleneck (NetFence).
    pub stamped_decr: u64,
    /// Regular packets whose presented feedback failed MAC validation at
    /// their access router and were demoted to the request channel
    /// (NetFence §4.3; spikes when a secret key rotates out from under
    /// held feedback).
    pub invalid_feedback: u64,
    /// Per-(sender, bottleneck) rate limiters across all access routers
    /// (NetFence's scalability metric, §5.1).
    pub rate_limiters: usize,
    /// Filters installed across all routers (StopIt).
    pub filters: usize,
    /// Capability grants across all receivers (TVA+).
    pub capabilities_granted: usize,
    /// Bottleneck links currently inside a monitoring cycle (NetFence).
    pub links_in_mon: Vec<LinkAddr>,
    /// Control-plane messages delivered.
    pub control_delivered: u64,
    /// Control-plane messages dropped at legacy nodes.
    pub control_undeliverable: u64,
    /// Control-plane transport retransmissions (lossy channel only).
    pub control_retransmits: u64,
    /// Control-plane messages lost in transit after exhausting
    /// retransmission (lossy/partitioned channel only).
    pub control_lost: u64,
    /// TTL'd policy rules (filters, keys, capabilities) installed into
    /// policy stores.
    pub rules_installed: u64,
    /// Policy rules re-installed before their TTL lapsed (refreshes).
    pub rules_refreshed: u64,
    /// Policy rules that expired and were purged.
    pub rules_expired: u64,
    /// Policy-rule installs rejected by a store's capacity limit.
    pub rules_rejected: u64,
    /// The run's typed drop budget — every dropped packet counted once by
    /// cause (queue overflow, rate limit, filter, …). Filled in by the
    /// engine from its always-on drop ledger; [`Deployment::report`] alone
    /// leaves it zero.
    pub drop_budget: DropBudget,
}

impl Default for DefenseReport {
    fn default() -> Self {
        DefenseReport {
            name: "none",
            deployed_ases: 0,
            total_ases: 0,
            host_shims: 0,
            router_agents: 0,
            request_drops: 0,
            regular_drops: 0,
            as_policer_drops: 0,
            filtered_drops: 0,
            unauthorized_drops: 0,
            stamped_decr: 0,
            invalid_feedback: 0,
            rate_limiters: 0,
            filters: 0,
            capabilities_granted: 0,
            links_in_mon: Vec::new(),
            control_delivered: 0,
            control_undeliverable: 0,
            control_retransmits: 0,
            control_lost: 0,
            rules_installed: 0,
            rules_refreshed: 0,
            rules_expired: 0,
            rules_rejected: 0,
            drop_budget: DropBudget::default(),
        }
    }
}

impl DefenseReport {
    /// Whether a bottleneck link is currently in a monitoring cycle.
    pub fn link_in_mon(&self, link: LinkAddr) -> bool {
        self.links_in_mon.contains(&link)
    }

    /// Total packets the defense dropped across all mechanisms.
    pub fn total_defense_drops(&self) -> u64 {
        self.request_drops
            + self.regular_drops
            + self.as_policer_drops
            + self.filtered_drops
            + self.unauthorized_drops
    }

    /// Deployed fraction of the network's ASes.
    pub fn deployed_fraction(&self) -> f64 {
        if self.total_ases == 0 {
            0.0
        } else {
            self.deployed_ases as f64 / self.total_ases as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Deployment
// ---------------------------------------------------------------------------

/// A defense deployed onto a network: dense per-node agents, a queue
/// factory and the control-plane bus, ready to be moved into a
/// [`Simulator`](crate::engine::Simulator).
#[derive(Debug)]
pub struct Deployment {
    /// Short defense name.
    pub name: &'static str,
    /// One optional host shim per node (host nodes only; router slots stay
    /// `None`).
    pub hosts: Vec<Option<Box<dyn HostShim>>>,
    /// One optional router agent per node.
    pub routers: Vec<Option<Box<dyn RouterAgent>>>,
    /// Per-link queue construction.
    pub queues: Box<dyn QueueFactory>,
    /// The out-of-band coordination bus. Messages queued here at deploy
    /// time (e.g. key announcements) are delivered when the simulator is
    /// constructed.
    pub bus: ControlPlane,
    /// ASes that deployed.
    pub deployed_ases: usize,
    /// Total ASes in the network.
    pub total_ases: usize,
}

impl Deployment {
    /// Start building a deployment for `net`.
    pub fn builder<'a>(net: &'a Network, name: &'static str) -> DeploymentBuilder<'a> {
        DeploymentBuilder {
            net,
            name,
            hosts: (0..net.nodes.len()).map(|_| None).collect(),
            routers: (0..net.nodes.len()).map(|_| None).collect(),
            queues: None,
            deployed_ases: 0,
            total_ases: 0,
        }
    }

    /// The empty deployment: a pure legacy network with default queues.
    pub fn undefended(net: &Network) -> Deployment {
        Deployment::builder(net, "none").build()
    }

    /// Merge every agent's counters into one typed report.
    pub fn report(&self) -> DefenseReport {
        let mut out = DefenseReport {
            name: self.name,
            deployed_ases: self.deployed_ases,
            total_ases: self.total_ases,
            host_shims: self.hosts.iter().flatten().count(),
            router_agents: self.routers.iter().flatten().count(),
            control_delivered: self.bus.delivered,
            control_undeliverable: self.bus.undeliverable,
            control_retransmits: self.bus.retransmits,
            control_lost: self.bus.lost,
            ..DefenseReport::default()
        };
        for shim in self.hosts.iter().flatten() {
            shim.report(&mut out);
        }
        for agent in self.routers.iter().flatten() {
            agent.report(&mut out);
        }
        out.links_in_mon.sort_unstable();
        out
    }
}

/// Assembles a [`Deployment`] (used by [`DefenseFactory`] implementations).
#[derive(Debug)]
pub struct DeploymentBuilder<'a> {
    net: &'a Network,
    name: &'static str,
    hosts: Vec<Option<Box<dyn HostShim>>>,
    routers: Vec<Option<Box<dyn RouterAgent>>>,
    queues: Option<Box<dyn QueueFactory>>,
    deployed_ases: usize,
    total_ases: usize,
}

impl<'a> DeploymentBuilder<'a> {
    /// Install a shim on the host with address `host`.
    pub fn host_shim(&mut self, host: HostAddr, shim: Box<dyn HostShim>) -> &mut Self {
        let node = self.net.host_node(host);
        self.hosts[node.0] = Some(shim);
        self
    }

    /// Install an agent on the router at `node`.
    pub fn router_agent(&mut self, node: NodeId, agent: Box<dyn RouterAgent>) -> &mut Self {
        self.routers[node.0] = Some(agent);
        self
    }

    /// Set the queue factory.
    pub fn queues(&mut self, factory: Box<dyn QueueFactory>) -> &mut Self {
        self.queues = Some(factory);
        self
    }

    /// Record the deployment extent for the report.
    pub fn ases(&mut self, deployed: usize, total: usize) -> &mut Self {
        self.deployed_ases = deployed;
        self.total_ases = total;
        self
    }

    /// Finish the deployment.
    pub fn build(&mut self) -> Deployment {
        Deployment {
            name: self.name,
            hosts: std::mem::take(&mut self.hosts),
            routers: std::mem::take(&mut self.routers),
            queues: self.queues.take().unwrap_or_else(|| Box::new(DefaultQueues)),
            bus: ControlPlane::for_network(self.net),
            deployed_ases: self.deployed_ases,
            total_ases: self.total_ases,
        }
    }
}

/// Builds a defense's agents for a concrete network and deployment extent.
///
/// Implemented by `netfence-systems` for NetFence, TVA+, StopIt and
/// per-sender fair queuing; [`NoDefense`] is the undefended baseline.
pub trait DefenseFactory: std::fmt::Debug {
    /// Short name used in experiment output.
    fn name(&self) -> &'static str;

    /// Deploy onto `net` according to `spec`.
    fn deploy(&self, net: &Network, spec: &DeploymentSpec) -> Deployment;
}

/// The undefended baseline: no agents anywhere, default queues.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDefense;

impl DefenseFactory for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }

    fn deploy(&self, net: &Network, _spec: &DeploymentSpec) -> Deployment {
        Deployment::undefended(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MILLI;
    use crate::topology::QueueKind;

    /// Three edge ASes (1, 2, 3) behind a transit AS (100).
    fn net() -> Network {
        let mut b = Network::builder();
        let rt = b.router(100, false);
        for asn in 1..=3u32 {
            let ra = b.router(asn, true);
            b.duplex(ra, rt, 10_000_000, MILLI, QueueKind::Red);
            b.host(asn * 0x100 + 1, asn, ra, 100_000_000, MILLI);
        }
        b.build()
    }

    #[test]
    fn coverage_resolution_is_monotone_and_bounded() {
        let net = net();
        assert_eq!(DeploymentSpec::none().deploying_ases(&net), Vec::<AsNum>::new());
        assert_eq!(DeploymentSpec::full().deploying_ases(&net), vec![1, 2, 3, 100]);
        // One third of three edge ASes: the first one plus the transit AS.
        assert_eq!(DeploymentSpec::coverage(1.0 / 3.0).deploying_ases(&net), vec![1, 100]);
        // Monotone: growing coverage never removes a deploying AS.
        let mut prev: Vec<AsNum> = Vec::new();
        for k in 0..=10 {
            let cur = DeploymentSpec::coverage(k as f64 / 10.0).deploying_ases(&net);
            assert!(prev.iter().all(|a| cur.contains(a)), "coverage {k}/10 removed an AS");
            prev = cur;
        }
    }

    #[test]
    fn seeded_placement_is_deterministic_and_sized() {
        let net = net();
        let a = DeploymentSpec::seeded(2.0 / 3.0, 42).deploying_ases(&net);
        let b = DeploymentSpec::seeded(2.0 / 3.0, 42).deploying_ases(&net);
        assert_eq!(a, b);
        // Two of three edge ASes plus the transit AS.
        assert_eq!(a.len(), 3);
        assert!(a.contains(&100));
    }

    #[test]
    fn explicit_placement_filters_unknown_ases() {
        let net = net();
        let d = DeploymentSpec::explicit(vec![2, 100, 999]).deploying_ases(&net);
        assert_eq!(d, vec![2, 100]);
        let map = DeploymentSpec::explicit(vec![2, 100]).resolve(&net);
        assert!(map.as_deployed(2));
        assert!(!map.as_deployed(1));
        assert_eq!(map.total_ases, 4);
    }

    #[test]
    fn control_plane_addresses_hosts_and_access_routers() {
        let net = net();
        let mut bus = ControlPlane::for_network(&net);
        assert!(bus.to_host(0x101, 7u32));
        assert!(!bus.to_host(0xdead, 7u32));
        assert!(bus.to_access_router_of(0x201, "filter"));
        let msgs = bus.take_outbox();
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0].to, Endpoint::Host(_)));
        assert!(matches!(msgs[1].to, Endpoint::Router(_)));
        assert_eq!(bus.pending(), 0);
    }

    #[test]
    fn undefended_deployment_reports_empty() {
        let net = net();
        let d = Deployment::undefended(&net);
        let r = d.report();
        assert_eq!(r.name, "none");
        assert_eq!(r.host_shims, 0);
        assert_eq!(r.router_agents, 0);
        assert_eq!(r.total_defense_drops(), 0);
        assert_eq!(r.deployed_fraction(), 0.0);
    }
}
