//! # netfence-systems
//!
//! DoS defense systems bound to the `netfence-sim` discrete-event
//! simulator:
//!
//! * [`netfence`] — the NetFence architecture (this repository's main
//!   subject), wiring the protocol state machines of `netfence-core` into
//!   the simulator's forwarding path;
//! * [`tva`] — the TVA+ capability baseline;
//! * [`stopit`] — the StopIt filter baseline;
//! * [`fq`] — per-sender fair queuing at every link;
//! * [`attacker`] — strategic-attacker arithmetic shared by the experiment
//!   harnesses (request-priority races of §6.3.1; the adaptive attack
//!   *agents* live in `netfence-adversary`);
//! * [`headers`] — the shim headers attached to simulated packets.
//!
//! All four systems implement `netfence_sim::deploy::DefenseFactory`: they
//! are *deployed onto* a network, installing per-node host shims and router
//! agents only on the ASes a `DeploymentSpec` covers. An experiment can
//! swap the defense (and its deployment extent) while keeping the topology
//! and workload fixed — exactly how the paper's comparison figures and the
//! incremental-deployment sweeps are produced.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attacker;
pub mod fq;
pub mod headers;
pub mod netfence;
pub mod stopit;
pub mod tva;

pub use attacker::{legitimate_priority_after, strategic_request_priority};
pub use fq::FairQueuingDefense;
pub use headers::{NetFenceExt, TvaExt};
pub use netfence::{KeyAnnouncement, NetFenceDefense};
pub use stopit::{FilterRequest, StopItDefense};
pub use tva::TvaDefense;
