//! Per-sender fair queuing at every link (the "FQ" baseline of §6.3).
//!
//! The paper uses Deficit Round Robin fair queuing to represent defenses
//! that simply throttle every sender to its fair share at each link. It
//! bounds an attacker to `C/N`, but — as Figure 8 shows — it makes every
//! legitimate packet compete with the full set of attackers at every hop,
//! so small file transfers slow down linearly with the number of senders.
//!
//! FQ is a pure queue-discipline defense: its deployment installs no host
//! shims and no router agents, only a [`QueueFactory`] that replaces the
//! scheduler of every link owned by a deploying AS.

use netfence_sim::deploy::{DefenseFactory, Deployment, DeploymentSpec, QueueFactory};
use netfence_sim::queue::{Classifier, DrrQueue, QueueDisc};
use netfence_sim::topology::{LinkSpec, Network};

/// The per-sender DRR fair-queuing factory.
#[derive(Debug, Default)]
pub struct FairQueuingDefense {
    /// Byte limit of each per-sender queue.
    per_sender_limit: usize,
}

impl FairQueuingDefense {
    /// Create the baseline with a default 30 kB per-sender backlog limit.
    pub fn new() -> Self {
        FairQueuingDefense { per_sender_limit: 30_000 }
    }

    /// Override the per-sender backlog limit.
    pub fn with_per_sender_limit(limit: usize) -> Self {
        FairQueuingDefense { per_sender_limit: limit }
    }
}

impl DefenseFactory for FairQueuingDefense {
    fn name(&self) -> &'static str {
        "fq"
    }

    fn deploy(&self, net: &Network, spec: &DeploymentSpec) -> Deployment {
        let map = spec.resolve(net);
        let links: Vec<usize> = net
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| map.node(l.from))
            .map(|(i, _)| i)
            .collect();
        let mut builder = Deployment::builder(net, "fq");
        builder.ases(map.ases.len(), map.total_ases);
        builder.queues(Box::new(FqQueues { per_sender_limit: self.per_sender_limit, links }));
        builder.build()
    }
}

/// Per-sender DRR on every deployed link.
#[derive(Debug)]
struct FqQueues {
    per_sender_limit: usize,
    links: Vec<usize>,
}

impl QueueFactory for FqQueues {
    fn make_queue(&mut self, link_index: usize, _spec: &LinkSpec) -> Option<Box<dyn QueueDisc>> {
        if self.links.binary_search(&link_index).is_ok() {
            Some(Box::new(DrrQueue::new(Classifier::BySource, 1500, self.per_sender_limit)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::prelude::*;

    const USER: u32 = 1;
    const ATTACKER: u32 = 2;
    const VICTIM: u32 = 100;

    #[test]
    fn fair_queuing_protects_a_tcp_flow_from_a_flooder() {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        b.duplex(r1, r2, 1_000_000, 10 * MILLI, QueueKind::Red);
        b.host(USER, 1, r1, 100_000_000, MILLI);
        b.host(ATTACKER, 1, r1, 100_000_000, MILLI);
        b.host(VICTIM, 2, r2, 100_000_000, MILLI);
        let net = b.build();

        let deployment = FairQueuingDefense::new().deploy(&net, &DeploymentSpec::full());
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 60 * SEC, ..Default::default() });
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 2_000_000)));
        sim.run();
        let user_bps = sim.progress(user).goodput_bps(0, 60 * SEC);
        let attacker_bps = sim.progress(attacker).goodput_bps(0, 60 * SEC);
        // The attacker cannot exceed its ~half share; the TCP user gets a
        // substantial share (the paper notes DRR+TCP gives the TCP flow a
        // bit less than the UDP flooder, which we tolerate here).
        assert!(attacker_bps < 650_000.0, "attacker got {attacker_bps:.0} bps");
        assert!(user_bps > 250_000.0, "user got {user_bps:.0} bps");
        // FQ deploys no agents, only queues.
        let report = sim.report();
        assert_eq!(report.host_shims, 0);
        assert_eq!(report.router_agents, 0);
    }
}
