//! StopIt (Liu, Yang, Lu — SIGCOMM 2008), as described and used by the
//! NetFence evaluation (§6.3).
//!
//! StopIt is a filter-based defense: a targeted victim that can identify
//! attack traffic asks the network to block the (source, destination) pair
//! close to the source. In this deployment model the victim's host shim
//! sends a [`FilterRequest`] over the control-plane bus to the *source's
//! access router*, whose agent installs the filter — the closed-loop
//! StopIt protocol collapsed to one reliable message. When the source's AS
//! has not deployed (no agent at its access router), the request is
//! undeliverable and the attack traffic keeps flowing: exactly the
//! partial-deployment weakness of filter systems. When receivers fail to
//! install filters (e.g. colluding receivers), StopIt falls back to
//! two-level hierarchical fair queuing (source AS, then source host) at
//! congested links.
//!
//! Filters live in a TTL'd [`PolicyStore`]: with
//! [`StopItDefense::filter_ttl`] set, an installed filter lapses unless the
//! victim's refresh request lands in time — and the victim only re-requests
//! when leaked traffic reaches it again, so an expired filter *is* visible
//! as a resumed flood until the refresh crosses the control plane. The
//! default TTL of 0 keeps the legacy permanent-filter behavior.

use std::collections::{BTreeSet, HashMap};

use netfence_ctrl::policy::PolicyStore;
use netfence_sim::deploy::{
    ControlPlane, DefenseFactory, DefenseReport, Deployment, DeploymentSpec, HostShim, LinkRef,
    QueueFactory, RouterAction, RouterAgent, RouterFault,
};
use netfence_sim::packet::{HostAddr, Packet};
use netfence_sim::prelude::{DropCause, Timeline};
use netfence_sim::queue::{HierDrrQueue, QueueDisc};
use netfence_sim::time::Nanos;
use netfence_sim::topology::{LinkSpec, Network, NodeId};

/// A control-plane request to block `src → dst` at the source's access
/// router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterRequest {
    /// The sender to block.
    pub src: HostAddr,
    /// The destination filing the filter.
    pub dst: HostAddr,
}

/// The StopIt defense factory.
#[derive(Debug, Default)]
pub struct StopItDefense {
    /// Receivers that automatically file a filter request against every
    /// sender not on their whitelist (the victim behaviour in §6.3.1).
    auto_filter_victims: BTreeSet<HostAddr>,
    /// Senders a victim accepts (never filtered): (sender, victim).
    /// BTreeSet: deploy() sweeps this per host, and per-host shim state
    /// must never depend on hash order.
    whitelist: BTreeSet<(HostAddr, HostAddr)>,
    /// Filters to pre-install at deploy time.
    preinstalled: Vec<FilterRequest>,
    /// Whether inter-router links use the hierarchical fair-queuing
    /// fallback.
    hierarchical_fallback: bool,
    /// Installed filters lapse after this long without a refresh
    /// (0 = permanent, the legacy behavior).
    filter_ttl: Nanos,
    /// Per-router filter-table capacity (0 = unbounded).
    filter_capacity: usize,
}

impl StopItDefense {
    /// Create a StopIt factory with the hierarchical fair-queuing fallback
    /// enabled.
    pub fn new() -> Self {
        StopItDefense { hierarchical_fallback: true, ..Default::default() }
    }

    /// Mark a receiver as a victim that files a filter against any sender
    /// not whitelisted, as soon as it receives traffic from it.
    pub fn auto_filter(&mut self, victim: HostAddr) {
        self.auto_filter_victims.insert(victim);
    }

    /// Whitelist a sender at a victim.
    pub fn allow(&mut self, victim: HostAddr, sender: HostAddr) {
        self.whitelist.insert((sender, victim));
    }

    /// Pre-install a filter blocking `src → dst` (sent over the bus at
    /// deploy time).
    pub fn install_filter(&mut self, src: HostAddr, dst: HostAddr) {
        self.preinstalled.push(FilterRequest { src, dst });
    }

    /// Make installed filters lapse after `ttl` without a refresh
    /// (0 restores the legacy permanent filters). Victims re-request a
    /// filter when leaked traffic reaches them again.
    pub fn filter_ttl(&mut self, ttl: Nanos) {
        self.filter_ttl = ttl;
    }

    /// Cap each router's filter table (0 = unbounded). Requests beyond the
    /// cap are rejected and counted.
    pub fn filter_capacity(&mut self, capacity: usize) {
        self.filter_capacity = capacity;
    }
}

impl DefenseFactory for StopItDefense {
    fn name(&self) -> &'static str {
        "stopit"
    }

    fn deploy(&self, net: &Network, spec: &DeploymentSpec) -> Deployment {
        let map = spec.resolve(net);
        let mut builder = Deployment::builder(net, "stopit");
        builder.ases(map.ases.len(), map.total_ases);

        if self.hierarchical_fallback {
            let links: Vec<usize> = net
                .links
                .iter()
                .enumerate()
                .filter(|(_, l)| {
                    net.nodes[l.from.0].host_addr().is_none()
                        && net.nodes[l.to.0].host_addr().is_none()
                        && map.node(l.from)
                })
                .map(|(i, _)| i)
                .collect();
            builder.queues(Box::new(StopItQueues { links }));
        }

        for (i, node) in net.nodes.iter().enumerate() {
            if node.host_addr().is_some() || !map.node(NodeId(i)) {
                continue;
            }
            builder.router_agent(
                NodeId(i),
                Box::new(StopItRouterAgent {
                    filters: PolicyStore::new(self.filter_ttl, self.filter_capacity),
                    filtered_drops: 0,
                }),
            );
        }
        for host in net.hosts() {
            if !map.as_deployed(net.as_of_host(host)) {
                continue;
            }
            let whitelist =
                self.whitelist.iter().filter(|&&(_, v)| v == host).map(|&(s, _)| s).collect();
            builder.host_shim(
                host,
                Box::new(StopItHostShim {
                    auto_filter: self.auto_filter_victims.contains(&host),
                    whitelist,
                    requested: HashMap::new(),
                    filter_ttl: self.filter_ttl,
                }),
            );
        }

        let mut deployment = builder.build();
        for &req in &self.preinstalled {
            deployment.bus.to_access_router_of(req.src, req);
        }
        deployment
    }
}

/// The hierarchical fair-queuing fallback on deployed inter-router links.
#[derive(Debug)]
struct StopItQueues {
    links: Vec<usize>,
}

impl QueueFactory for StopItQueues {
    fn make_queue(&mut self, link_index: usize, _spec: &LinkSpec) -> Option<Box<dyn QueueDisc>> {
        if self.links.binary_search(&link_index).is_ok() {
            Some(Box::new(HierDrrQueue::new(1500, 30_000)))
        } else {
            None
        }
    }
}

/// The StopIt shim of one host: a victim identifies unwanted traffic and
/// files filter requests over the control plane.
#[derive(Debug)]
struct StopItHostShim {
    auto_filter: bool,
    whitelist: BTreeSet<HostAddr>,
    /// Sender → time of the last filed request. With permanent filters
    /// (ttl 0) one request suffices; with a TTL the victim re-requests
    /// when leaked traffic shows the filter lapsed.
    requested: HashMap<HostAddr, Nanos>,
    filter_ttl: Nanos,
}

impl StopItHostShim {
    /// Whether to file a (re-)request against `src` at `now`.
    fn should_request(&mut self, now: Nanos, src: HostAddr) -> bool {
        match self.requested.get_mut(&src) {
            None => {
                self.requested.insert(src, now);
                true
            }
            Some(last) if self.filter_ttl > 0 && now >= *last + self.filter_ttl / 2 => {
                *last = now;
                true
            }
            Some(_) => false,
        }
    }
}

impl HostShim for StopItHostShim {
    fn on_receive(&mut self, now: Nanos, pkt: &Packet, ctl: &mut ControlPlane) {
        if self.auto_filter
            && !self.whitelist.contains(&pkt.src)
            && self.should_request(now, pkt.src)
        {
            ctl.to_access_router_of(pkt.src, FilterRequest { src: pkt.src, dst: pkt.dst });
        }
    }
}

/// The StopIt agent of one deployed router: the TTL'd filter store
/// populated by [`FilterRequest`] messages.
#[derive(Debug)]
struct StopItRouterAgent {
    filters: PolicyStore<(HostAddr, HostAddr)>,
    filtered_drops: u64,
}

impl RouterAgent for StopItRouterAgent {
    fn at_router(
        &mut self,
        now: Nanos,
        is_access: bool,
        _out_link: LinkRef,
        pkt: &mut Packet,
        _ctl: &mut ControlPlane,
    ) -> RouterAction {
        if is_access && self.filters.contains(now, &(pkt.src, pkt.dst)) {
            self.filtered_drops += 1;
            RouterAction::Drop(DropCause::StopItFilter)
        } else {
            RouterAction::Forward
        }
    }

    fn probe(&self, now: Nanos, out: &mut Timeline) {
        out.record(now, "filter_table_len", "stopit".to_string(), self.filters.len() as f64);
        out.record(now, "filtered_drops", "stopit".to_string(), self.filtered_drops as f64);
    }

    fn on_control(&mut self, now: Nanos, msg: Box<dyn std::any::Any>, _ctl: &mut ControlPlane) {
        if let Some(req) = msg.downcast_ref::<FilterRequest>() {
            self.filters.insert(now, (req.src, req.dst));
        }
    }

    fn tick(&mut self, now: Nanos, _ctl: &mut ControlPlane) {
        self.filters.purge(now);
    }

    fn on_fault(&mut self, _now: Nanos, fault: RouterFault, _ctl: &mut ControlPlane) {
        match fault {
            RouterFault::Reboot => {
                // A reboot loses the filter table; the flood leaks again
                // until victims notice and re-file their requests. The
                // lifecycle counters are measurement, not router state, so
                // they survive.
                let carried = self.filters.stats;
                self.filters = PolicyStore::new(self.filters.ttl(), self.filters.capacity());
                self.filters.stats = carried;
            }
            RouterFault::MemoryPressure { evict } => {
                self.filters.evict_oldest(evict);
            }
            // StopIt carries no MACs and stamps no timestamps: key desync
            // and clock skew have nothing to corrupt here.
            RouterFault::KeyDesync | RouterFault::ClockSkew { .. } => {}
        }
    }

    fn report(&self, out: &mut DefenseReport) {
        out.filters += self.filters.len();
        out.filtered_drops += self.filtered_drops;
        out.rules_installed += self.filters.stats.installed;
        out.rules_refreshed += self.filters.stats.refreshed;
        out.rules_expired += self.filters.stats.expired;
        out.rules_rejected += self.filters.stats.rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::prelude::*;

    const USER: u32 = 1;
    const ATTACKER: u32 = 2;
    const VICTIM: u32 = 100;
    const COLLUDER: u32 = 101;

    fn net() -> Network {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        let r3 = b.router(3, true);
        b.duplex(r1, r2, 1_000_000, 10 * MILLI, QueueKind::Red);
        b.duplex(r2, r3, 10_000_000, 10 * MILLI, QueueKind::Red);
        b.host(USER, 1, r1, 100_000_000, MILLI);
        b.host(ATTACKER, 1, r1, 100_000_000, MILLI);
        b.host(VICTIM, 3, r3, 100_000_000, MILLI);
        b.host(COLLUDER, 3, r3, 100_000_000, MILLI);
        b.build()
    }

    #[test]
    fn filters_block_unwanted_traffic_near_the_source() {
        let mut d = StopItDefense::new();
        d.auto_filter(VICTIM);
        d.allow(VICTIM, USER);
        let net = net();
        let deployment = d.deploy(&net, &DeploymentSpec::full());
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 20 * SEC, ..Default::default() });
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
        sim.run();
        let report = sim.report();
        assert_eq!(report.filters, 1, "one filter against the attacker");
        assert!(report.filtered_drops > 100);
        // Attack traffic is blocked after the first packets reach the
        // victim; the user transfers at full speed.
        let attacker_goodput = sim.progress(attacker).goodput_bps(0, 20 * SEC);
        assert!(attacker_goodput < 50_000.0, "attacker delivered {attacker_goodput:.0} bps");
        let p = sim.progress(user);
        assert!(p.completions.len() > 30);
        assert!(p.avg_transfer_secs().unwrap() < 1.0);
    }

    #[test]
    fn colluding_attack_falls_back_to_hierarchical_fair_queuing() {
        // The colluder never files a filter; StopIt's per-AS/per-source fair
        // queuing still gives the user a share of the bottleneck.
        let d = StopItDefense::new();
        let net = net();
        let deployment = d.deploy(&net, &DeploymentSpec::full());
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 60 * SEC, ..Default::default() });
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 1_000_000)));
        sim.run();
        let user_bps = sim.progress(user).goodput_bps(0, 60 * SEC);
        let attacker_bps = sim.progress(attacker).goodput_bps(0, 60 * SEC);
        assert!(attacker_bps < 650_000.0, "attacker {attacker_bps:.0}");
        assert!(user_bps > 250_000.0, "user {user_bps:.0}");
        assert_eq!(sim.report().filters, 0);
    }

    #[test]
    fn ttl_filters_lapse_and_leaked_traffic_refiles_them() {
        // With a 2 s filter TTL the victim stops refreshing while the
        // filter works (nothing arrives), so it lapses, the flood leaks
        // through, and the leak itself triggers the re-request — repeat.
        let run = |ttl| {
            let mut d = StopItDefense::new();
            d.auto_filter(VICTIM);
            d.filter_ttl(ttl);
            let net = net();
            let deployment = d.deploy(&net, &DeploymentSpec::full());
            let mut sim = Simulator::new(
                net,
                deployment,
                SimConfig { end_time: 30 * SEC, ..Default::default() },
            );
            let attacker =
                sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
            sim.run();
            (sim.report(), sim.progress(attacker).goodput_bps(0, 30 * SEC))
        };
        let (permanent, permanent_bps) = run(0);
        assert_eq!(permanent.rules_installed, 1);
        assert_eq!(permanent.rules_expired, 0);
        let (ttl, ttl_bps) = run(2 * SEC);
        assert!(ttl.rules_expired >= 2, "filters never lapsed: {ttl:?}");
        assert!(
            ttl.rules_installed + ttl.rules_refreshed >= 3,
            "leaks never refiled the filter: {ttl:?}"
        );
        // Leak windows let more attack traffic through than permanent
        // filters, but the refreshed filter keeps the flood mostly blocked.
        assert!(ttl_bps > permanent_bps, "{ttl_bps} vs {permanent_bps}");
        assert!(ttl_bps < 500_000.0, "flood effectively unblocked: {ttl_bps:.0} bps");
    }

    #[test]
    fn legacy_source_as_escapes_the_filter() {
        // The victim's AS deploys but the attacker's AS does not: the
        // filter request is undeliverable and the flood keeps arriving —
        // the partial-deployment weakness of filter systems.
        let mut d = StopItDefense::new();
        d.auto_filter(VICTIM);
        let net = net();
        let deployment = d.deploy(&net, &DeploymentSpec::explicit(vec![2, 3]));
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 20 * SEC, ..Default::default() });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
        sim.run();
        let report = sim.report();
        assert_eq!(report.filters, 0, "no agent near the source to install the filter");
        assert!(report.control_undeliverable >= 1);
        let delivered = sim.progress(attacker).goodput_bps(0, 20 * SEC);
        assert!(delivered > 500_000.0, "flood not blocked: {delivered:.0} bps keep flowing");
    }
}
