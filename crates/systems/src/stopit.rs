//! StopIt (Liu, Yang, Lu — SIGCOMM 2008), as described and used by the
//! NetFence evaluation (§6.3).
//!
//! StopIt is a filter-based defense: a targeted victim that can identify
//! attack traffic installs a network filter that blocks the (source,
//! destination) pair close to the source — in this model, at the source's
//! access router. When receivers fail to install filters (e.g. colluding
//! receivers), StopIt falls back to two-level hierarchical fair queuing
//! (source AS, then source host) at congested links.

use std::collections::HashSet;

use netfence_sim::defense::{DefenseSystem, RouterAction};
use netfence_sim::packet::{HostAddr, LinkAddr, Packet};
use netfence_sim::queue::{HierDrrQueue, QueueDisc};
use netfence_sim::time::Nanos;
use netfence_sim::topology::{LinkSpec, Network, NodeId};

/// The StopIt defense system.
#[derive(Debug, Default)]
pub struct StopItDefense {
    /// Receivers that automatically file a filter request against every
    /// sender not on their whitelist (the victim behaviour in §6.3.1).
    auto_filter_victims: HashSet<HostAddr>,
    /// Senders a victim accepts (never filtered).
    whitelist: HashSet<(HostAddr, HostAddr)>,
    /// Installed filters: (src, dst) pairs blocked at the source access
    /// router.
    filters: HashSet<(HostAddr, HostAddr)>,
    /// Whether inter-router links use the hierarchical fair-queuing
    /// fallback.
    hierarchical_fallback: bool,
    /// Inter-router links (learned at install time).
    router_links: HashSet<LinkAddr>,
    /// Packets dropped by filters.
    pub filtered_drops: u64,
}

impl StopItDefense {
    /// Create a StopIt deployment with the hierarchical fair-queuing
    /// fallback enabled.
    pub fn new() -> Self {
        StopItDefense { hierarchical_fallback: true, ..Default::default() }
    }

    /// Mark a receiver as a victim that files a filter against any sender
    /// not whitelisted, as soon as it receives traffic from it.
    pub fn auto_filter(&mut self, victim: HostAddr) {
        self.auto_filter_victims.insert(victim);
    }

    /// Whitelist a sender at a victim.
    pub fn allow(&mut self, victim: HostAddr, sender: HostAddr) {
        self.whitelist.insert((sender, victim));
    }

    /// Explicitly install a filter blocking `src → dst`.
    pub fn install_filter(&mut self, src: HostAddr, dst: HostAddr) {
        self.filters.insert((src, dst));
    }

    /// Number of filters currently installed.
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }
}

impl DefenseSystem for StopItDefense {
    fn name(&self) -> &'static str {
        "stopit"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn install(&mut self, net: &Network) {
        for l in &net.links {
            if net.nodes[l.from.0].host_addr().is_none() && net.nodes[l.to.0].host_addr().is_none()
            {
                self.router_links.insert(l.addr);
            }
        }
    }

    fn make_queue(&mut self, _link_index: usize, spec: &LinkSpec) -> Option<Box<dyn QueueDisc>> {
        if self.hierarchical_fallback && self.router_links.contains(&spec.addr) {
            Some(Box::new(HierDrrQueue::new(1500, 30_000)))
        } else {
            None
        }
    }

    fn on_host_receive(&mut self, _now: Nanos, pkt: &Packet) {
        // A victim identifies unwanted traffic and installs a filter near
        // the source (modelled as an immediate, reliable installation; the
        // StopIt closed-loop protocol itself is out of scope here).
        if self.auto_filter_victims.contains(&pkt.dst)
            && !self.whitelist.contains(&(pkt.src, pkt.dst))
        {
            self.filters.insert((pkt.src, pkt.dst));
        }
    }

    fn at_router(
        &mut self,
        _now: Nanos,
        _node: NodeId,
        is_access: bool,
        _out_link: LinkAddr,
        pkt: &mut Packet,
    ) -> RouterAction {
        if is_access && self.filters.contains(&(pkt.src, pkt.dst)) {
            self.filtered_drops += 1;
            RouterAction::Drop
        } else {
            RouterAction::Forward
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::prelude::*;

    const USER: u32 = 1;
    const ATTACKER: u32 = 2;
    const VICTIM: u32 = 100;
    const COLLUDER: u32 = 101;

    fn net() -> Network {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        let r3 = b.router(3, true);
        b.duplex(r1, r2, 1_000_000, 10 * MILLI, QueueKind::Red);
        b.duplex(r2, r3, 10_000_000, 10 * MILLI, QueueKind::Red);
        b.host(USER, 1, r1, 100_000_000, MILLI);
        b.host(ATTACKER, 1, r1, 100_000_000, MILLI);
        b.host(VICTIM, 3, r3, 100_000_000, MILLI);
        b.host(COLLUDER, 3, r3, 100_000_000, MILLI);
        b.build()
    }

    #[test]
    fn filters_block_unwanted_traffic_near_the_source() {
        let mut d = StopItDefense::new();
        d.auto_filter(VICTIM);
        d.allow(VICTIM, USER);
        let mut sim = Simulator::new(
            net(),
            Box::new(d),
            SimConfig { end_time: 20 * SEC, ..Default::default() },
        );
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
        sim.run();
        let d = sim.defense.as_any().downcast_ref::<StopItDefense>().unwrap();
        assert_eq!(d.filter_count(), 1, "one filter against the attacker");
        // Attack traffic is blocked after the first packets reach the
        // victim; the user transfers at full speed.
        let attacker_goodput = sim.progress(attacker).goodput_bps(0, 20 * SEC);
        assert!(attacker_goodput < 50_000.0, "attacker delivered {attacker_goodput:.0} bps");
        let p = sim.progress(user);
        assert!(p.completions.len() > 30);
        assert!(p.avg_transfer_secs().unwrap() < 1.0);
    }

    #[test]
    fn colluding_attack_falls_back_to_hierarchical_fair_queuing() {
        // The colluder never files a filter; StopIt's per-AS/per-source fair
        // queuing still gives the user a share of the bottleneck.
        let d = StopItDefense::new();
        let mut sim = Simulator::new(
            net(),
            Box::new(d),
            SimConfig { end_time: 60 * SEC, ..Default::default() },
        );
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 1_000_000)));
        sim.run();
        let user_bps = sim.progress(user).goodput_bps(0, 60 * SEC);
        let attacker_bps = sim.progress(attacker).goodput_bps(0, 60 * SEC);
        assert!(attacker_bps < 650_000.0, "attacker {attacker_bps:.0}");
        assert!(user_bps > 250_000.0, "user {user_bps:.0}");
        let d = sim.defense.as_any().downcast_ref::<StopItDefense>().unwrap();
        assert_eq!(d.filter_count(), 0);
    }
}
