//! Shim headers attached to simulated packets by the defense systems.
//!
//! Each defense system stores its typed header inside the simulator's
//! type-erased [`Extension`] slot and reads it back through the single
//! typed accessor [`Packet::ext_as`](netfence_sim::packet::Packet::ext_as)
//! / [`Packet::ext_as_mut`](netfence_sim::packet::Packet::ext_as_mut) — no
//! call site spells out the `as_any().downcast_ref()` dance. The extension
//! also reports its wire length so packet sizes reflect the header overhead
//! the paper accounts for (§4.6, §6.1).

use std::any::Any;

use netfence_core::header::NetFenceHeader;
use netfence_core::passport::PASSPORT_HEADER_LEN;
use netfence_core::types::LinkId;
use netfence_sim::packet::Extension;
use netfence_sim::time::Nanos;

/// The NetFence shim header (plus the Passport header length) carried by a
/// packet in a NetFence-defended simulation.
#[derive(Debug, Clone)]
pub struct NetFenceExt {
    /// The typed NetFence header.
    pub header: NetFenceHeader,
    /// If the packet was held by a per-(sender, bottleneck) rate limiter at
    /// its access router, the bottleneck link of that limiter (used to
    /// notify the limiter when the packet is released).
    pub queued_for: Option<LinkId>,
}

impl NetFenceExt {
    /// Wrap a header.
    pub fn new(header: NetFenceHeader) -> Self {
        NetFenceExt { header, queued_for: None }
    }
}

impl Extension for NetFenceExt {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn clone_box(&self) -> Box<dyn Extension> {
        Box::new(self.clone())
    }
    fn wire_len(&self) -> usize {
        self.header.nominal_len() + PASSPORT_HEADER_LEN
    }
}

/// The TVA+ shim. Since TVA returns capabilities inside reply packets, both
/// variants can piggyback the sender's current grant for the destination
/// (the capability for the *reverse* direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TvaExt {
    /// A capability request (the sender holds no valid capability).
    Request {
        /// The sender's grant for the destination, piggybacked so the
        /// destination learns the reverse-direction capability.
        grant: Option<Nanos>,
    },
    /// A regular packet carrying the sender's capability.
    Regular {
        /// Expiry of the capability authorizing this packet; routers verify
        /// it is still in the future.
        cap_expiry: Nanos,
        /// Piggybacked reverse-direction grant, as in `Request`.
        grant: Option<Nanos>,
    },
}

impl TvaExt {
    /// The piggybacked reverse-direction grant, if any.
    pub fn grant(&self) -> Option<Nanos> {
        match self {
            TvaExt::Request { grant } | TvaExt::Regular { grant, .. } => *grant,
        }
    }
}

impl Extension for TvaExt {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn clone_box(&self) -> Box<dyn Extension> {
        Box::new(*self)
    }
    fn wire_len(&self) -> usize {
        // TVA's capability header is in the same ballpark as NetFence's
        // (the paper's Figure 7 compares against TVA+ with similar sizes).
        match self {
            TvaExt::Request { .. } => 12,
            TvaExt::Regular { .. } => 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_core::feedback::Feedback;
    use netfence_sim::packet::Packet;

    #[test]
    fn netfence_ext_roundtrips_through_packet() {
        let h = NetFenceHeader::regular(6, Feedback::Nop { ts: 1, token: 2 }, None);
        let mut p = Packet::udp(0, 1, 2, 1500, 0);
        let wire = NetFenceExt::new(h.clone()).wire_len();
        assert_eq!(wire, h.nominal_len() + PASSPORT_HEADER_LEN);
        p.ext = Some(Box::new(NetFenceExt::new(h.clone())));
        let got = p.ext_as::<NetFenceExt>().unwrap();
        assert_eq!(got.header, h);
        let cloned = p.clone();
        assert_eq!(cloned.ext_as::<NetFenceExt>().unwrap().header, h);
    }

    #[test]
    fn tva_ext_sizes_and_grant_accessor() {
        assert_eq!(TvaExt::Request { grant: None }.wire_len(), 12);
        assert_eq!(TvaExt::Regular { cap_expiry: 5, grant: Some(9) }.wire_len(), 20);
        assert_eq!(TvaExt::Request { grant: Some(3) }.grant(), Some(3));
        assert_eq!(TvaExt::Regular { cap_expiry: 5, grant: None }.grant(), None);
    }
}
