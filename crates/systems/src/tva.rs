//! TVA+ (Yang, Wetherall, Anderson; with the refinements of [27]), as
//! described and used by the NetFence evaluation (§6.3).
//!
//! TVA+ is a capability-based defense:
//!
//! * a sender first transmits a *request* packet; requests are forwarded on
//!   a channel capped at a small fraction of each link and scheduled with
//!   two-level hierarchical fair queuing (source AS, then source host);
//! * the receiver decides whether to grant a capability; only packets
//!   carrying a valid capability use the regular channel;
//! * to contain colluding (or incompetent) receivers that authorize attack
//!   traffic, regular packets are scheduled with per-destination fair
//!   queuing at congested links — which is exactly the weakness Figure 9
//!   exposes: a handful of colluder destinations can grab most of the
//!   bottleneck.
//!
//! Capabilities here are modelled as (sender, receiver) grants with an
//! expiration time rather than cryptographic tokens; the cryptographic
//! machinery is NetFence-specific and is implemented in `netfence-core`.

use std::collections::{HashMap, HashSet};

use netfence_sim::defense::{DefenseSystem, RouterAction};
use netfence_sim::packet::{ChannelClass, Extension, HostAddr, LinkAddr, Packet};
use netfence_sim::queue::{Classifier, DrrQueue, DualChannelQueue, HierDrrQueue, QueueDisc};
use netfence_sim::time::{Nanos, SEC};
use netfence_sim::topology::{LinkSpec, Network, NodeId};

use crate::headers::TvaExt;

/// How long a granted capability remains valid.
const CAPABILITY_LIFETIME: Nanos = 10 * SEC;

/// The TVA+ defense system.
#[derive(Debug, Default)]
pub struct TvaDefense {
    /// Receivers that refuse to grant capabilities to non-whitelisted
    /// senders (victims).
    deny_by_default: HashSet<HostAddr>,
    /// Senders explicitly allowed at a deny-by-default receiver.
    whitelist: HashSet<(HostAddr, HostAddr)>,
    /// Capabilities granted by receivers: (src, dst) → expiry.
    granted: HashMap<(HostAddr, HostAddr), Nanos>,
    /// Capabilities the senders have learned about (a grant becomes usable
    /// once any packet flows back from the receiver): (src, dst) → expiry.
    held: HashMap<(HostAddr, HostAddr), Nanos>,
    /// Inter-router links.
    router_links: HashSet<LinkAddr>,
    /// Packets dropped because they were unauthorized regular packets.
    pub unauthorized_drops: u64,
}

impl TvaDefense {
    /// Create a TVA+ deployment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make `victim` refuse capabilities to all senders except those
    /// whitelisted with [`TvaDefense::allow`].
    pub fn deny_by_default(&mut self, victim: HostAddr) {
        self.deny_by_default.insert(victim);
    }

    /// Whitelist a sender at a deny-by-default receiver.
    pub fn allow(&mut self, victim: HostAddr, sender: HostAddr) {
        self.whitelist.insert((sender, victim));
    }

    /// Number of currently granted capabilities.
    pub fn granted_count(&self) -> usize {
        self.granted.len()
    }

    fn wants(&self, sender: HostAddr, receiver: HostAddr) -> bool {
        !self.deny_by_default.contains(&receiver) || self.whitelist.contains(&(sender, receiver))
    }
}

impl DefenseSystem for TvaDefense {
    fn name(&self) -> &'static str {
        "tva+"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn install(&mut self, net: &Network) {
        for l in &net.links {
            if net.nodes[l.from.0].host_addr().is_none() && net.nodes[l.to.0].host_addr().is_none()
            {
                self.router_links.insert(l.addr);
            }
        }
    }

    fn make_queue(&mut self, _link_index: usize, spec: &LinkSpec) -> Option<Box<dyn QueueDisc>> {
        if !self.router_links.contains(&spec.addr) {
            return None;
        }
        // Regular channel: per-destination (per-receiver) fair queuing.
        // Request channel: two-level hierarchical fair queuing, capped at 5%.
        let regular = Box::new(DrrQueue::new(Classifier::ByDestination, 1500, 30_000));
        let request = Box::new(HierDrrQueue::new(1500, 10_000));
        let qlim_bytes = ((spec.capacity as f64 * 0.2 / 8.0) as usize).max(15_000);
        Some(Box::new(DualChannelQueue::new(regular, request, qlim_bytes / 4, spec.capacity, 0.05)))
    }

    fn on_host_send(&mut self, now: Nanos, pkt: &mut Packet) {
        let key = (pkt.src, pkt.dst);
        let authorized = self.held.get(&key).map(|&exp| exp > now).unwrap_or(false);
        let ext = if authorized {
            pkt.channel = ChannelClass::Regular;
            TvaExt::Regular { authorized: true }
        } else {
            pkt.channel = ChannelClass::Request;
            TvaExt::Request
        };
        pkt.size += ext.wire_len();
        pkt.ext = Some(Box::new(ext));
    }

    fn on_host_receive(&mut self, now: Nanos, pkt: &Packet) {
        // 1. The receiver decides whether to (re)grant a capability to this
        //    sender.
        if self.wants(pkt.src, pkt.dst) {
            self.granted.insert((pkt.src, pkt.dst), now + CAPABILITY_LIFETIME);
        }
        // 2. Any packet flowing dst→src delivers the capability state to the
        //    original sender: if dst has granted src, src now holds it.
        if let Some(&exp) = self.granted.get(&(pkt.dst, pkt.src)) {
            if exp > now {
                self.held.insert((pkt.dst, pkt.src), exp);
            }
        }
    }

    fn at_router(
        &mut self,
        now: Nanos,
        _node: NodeId,
        _is_access: bool,
        _out_link: LinkAddr,
        pkt: &mut Packet,
    ) -> RouterAction {
        match pkt.ext_as::<TvaExt>() {
            Some(TvaExt::Regular { authorized }) => {
                // Routers verify capabilities; unauthorized regular packets
                // are dropped (they would be demoted to the legacy channel
                // in full TVA — equivalent for the evaluation).
                let valid = *authorized
                    && self.held.get(&(pkt.src, pkt.dst)).map(|&exp| exp > now).unwrap_or(false);
                if valid {
                    RouterAction::Forward
                } else {
                    self.unauthorized_drops += 1;
                    RouterAction::Drop
                }
            }
            _ => RouterAction::Forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::prelude::*;

    const USER: u32 = 1;
    const ATTACKER: u32 = 2;
    const VICTIM: u32 = 100;
    const COLLUDER: u32 = 101;

    fn net() -> Network {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        let r3 = b.router(3, true);
        b.duplex(r1, r2, 1_000_000, 10 * MILLI, QueueKind::Red);
        b.duplex(r2, r3, 10_000_000, 10 * MILLI, QueueKind::Red);
        b.host(USER, 1, r1, 100_000_000, MILLI);
        b.host(ATTACKER, 1, r1, 100_000_000, MILLI);
        b.host(VICTIM, 3, r3, 100_000_000, MILLI);
        b.host(COLLUDER, 3, r3, 100_000_000, MILLI);
        b.build()
    }

    #[test]
    fn capabilities_gate_the_regular_channel() {
        let mut d = TvaDefense::new();
        d.deny_by_default(VICTIM);
        d.allow(VICTIM, USER);
        let mut sim = Simulator::new(
            net(),
            Box::new(d),
            SimConfig { end_time: 20 * SEC, ..Default::default() },
        );
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
        sim.run();
        // The attacker never obtains a capability: its 1 Mbps flood is
        // squeezed into the 5% request channel.
        let attacker_goodput = sim.progress(attacker).goodput_bps(0, 20 * SEC);
        assert!(attacker_goodput < 120_000.0, "attacker delivered {attacker_goodput:.0} bps");
        // The legitimate user is granted a capability and transfers quickly.
        let p = sim.progress(user);
        assert!(p.completions.len() > 30, "completions {}", p.completions.len());
        assert!(p.avg_transfer_secs().unwrap() < 1.5);
    }

    #[test]
    fn colluders_hurt_tva_per_destination_queuing() {
        // With per-destination fair queuing, one colluder destination gets
        // half the bottleneck while the victim's many legitimate senders
        // share the other half — the TVA+ weakness the paper highlights.
        let d = TvaDefense::new();
        let mut sim = Simulator::new(
            net(),
            Box::new(d),
            SimConfig { end_time: 60 * SEC, ..Default::default() },
        );
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 1_500_000)));
        sim.run();
        let user_bps = sim.progress(user).goodput_bps(0, 60 * SEC);
        let attacker_bps = sim.progress(attacker).goodput_bps(0, 60 * SEC);
        // Both destinations get roughly half of the 1 Mbps bottleneck.
        assert!(attacker_bps > 350_000.0 && attacker_bps < 650_000.0, "attacker {attacker_bps:.0}");
        assert!(user_bps > 250_000.0, "user {user_bps:.0}");
        let d = sim.defense.as_any().downcast_ref::<TvaDefense>().unwrap();
        assert!(d.granted_count() >= 2);
    }
}
