//! TVA+ (Yang, Wetherall, Anderson; with the refinements of \[27\]), as
//! described and used by the NetFence evaluation (§6.3).
//!
//! TVA+ is a capability-based defense:
//!
//! * a sender first transmits a *request* packet; requests are forwarded on
//!   a channel capped at a small fraction of each link and scheduled with
//!   two-level hierarchical fair queuing (source AS, then source host);
//! * the receiver decides whether to grant a capability; the grant is
//!   piggybacked on reverse-direction traffic (carried in the shim header,
//!   as real TVA returns capabilities in its replies), and only packets
//!   carrying a valid capability use the regular channel;
//! * to contain colluding (or incompetent) receivers that authorize attack
//!   traffic, regular packets are scheduled with per-destination fair
//!   queuing at congested links — which is exactly the weakness Figure 9
//!   exposes: a handful of colluder destinations can grab most of the
//!   bottleneck.
//!
//! Deployment is per-AS: hosts of deploying ASes run a [`HostShim`] that
//! requests/holds/grants capabilities, routers of deploying ASes run a
//! [`RouterAgent`] that verifies the capability carried in each regular
//! packet. Legacy traffic (no shim header) is forwarded unverified.
//! Capabilities here are modelled as expiry timestamps rather than
//! cryptographic tokens; the cryptographic machinery is NetFence-specific
//! and is implemented in `netfence-core`.

use std::collections::{BTreeSet, HashMap};

use netfence_ctrl::policy::PolicyStore;
use netfence_sim::deploy::{
    ControlPlane, DefenseFactory, DefenseReport, Deployment, DeploymentSpec, HostShim, LinkRef,
    QueueFactory, RouterAction, RouterAgent,
};
use netfence_sim::packet::{ChannelClass, Extension, HostAddr, Packet};
use netfence_sim::prelude::{DropCause, Timeline};
use netfence_sim::queue::{Classifier, DrrQueue, DualChannelQueue, HierDrrQueue, QueueDisc};
use netfence_sim::time::{Nanos, SEC};
use netfence_sim::topology::{LinkSpec, Network, NodeId};

use crate::headers::TvaExt;

/// Default validity of a granted capability.
const CAPABILITY_LIFETIME: Nanos = 10 * SEC;

/// The TVA+ defense factory.
#[derive(Debug)]
pub struct TvaDefense {
    /// Receivers that refuse to grant capabilities to non-whitelisted
    /// senders (victims).
    deny_by_default: BTreeSet<HostAddr>,
    /// Senders explicitly allowed at a deny-by-default receiver:
    /// (sender, receiver).
    /// BTreeSet: deploy() sweeps this per host, and per-host shim state
    /// must never depend on hash order.
    whitelist: BTreeSet<(HostAddr, HostAddr)>,
    /// How long a granted capability remains valid before the sender must
    /// obtain a fresh grant.
    capability_lifetime: Nanos,
}

impl Default for TvaDefense {
    fn default() -> Self {
        TvaDefense {
            deny_by_default: BTreeSet::new(),
            whitelist: BTreeSet::new(),
            capability_lifetime: CAPABILITY_LIFETIME,
        }
    }
}

impl TvaDefense {
    /// Create a TVA+ factory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Change how long granted capabilities stay valid (default 10 s).
    /// Senders whose reverse traffic stalls — e.g. during a control-plane
    /// outage at the receiver's AS — lose the regular channel when the
    /// grant lapses and must re-request.
    pub fn capability_lifetime(&mut self, lifetime: Nanos) {
        self.capability_lifetime = lifetime;
    }

    /// Make `victim` refuse capabilities to all senders except those
    /// whitelisted with [`TvaDefense::allow`].
    pub fn deny_by_default(&mut self, victim: HostAddr) {
        self.deny_by_default.insert(victim);
    }

    /// Whitelist a sender at a deny-by-default receiver.
    pub fn allow(&mut self, victim: HostAddr, sender: HostAddr) {
        self.whitelist.insert((sender, victim));
    }
}

impl DefenseFactory for TvaDefense {
    fn name(&self) -> &'static str {
        "tva+"
    }

    fn deploy(&self, net: &Network, spec: &DeploymentSpec) -> Deployment {
        let map = spec.resolve(net);
        let mut builder = Deployment::builder(net, "tva+");
        builder.ases(map.ases.len(), map.total_ases);

        let router_links: Vec<usize> = net
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                net.nodes[l.from.0].host_addr().is_none()
                    && net.nodes[l.to.0].host_addr().is_none()
                    && map.node(l.from)
            })
            .map(|(i, _)| i)
            .collect();
        builder.queues(Box::new(TvaQueues { links: router_links }));

        for (i, node) in net.nodes.iter().enumerate() {
            if node.host_addr().is_some() || !map.node(NodeId(i)) {
                continue;
            }
            builder.router_agent(NodeId(i), Box::new(TvaRouterAgent { unauthorized_drops: 0 }));
        }
        for host in net.hosts() {
            if !map.as_deployed(net.as_of_host(host)) {
                continue;
            }
            let whitelist =
                self.whitelist.iter().filter(|&&(_, r)| r == host).map(|&(s, _)| s).collect();
            builder.host_shim(
                host,
                Box::new(TvaHostShim {
                    deny_by_default: self.deny_by_default.contains(&host),
                    whitelist,
                    granted: PolicyStore::new(self.capability_lifetime, 0),
                    held: HashMap::new(),
                }),
            );
        }
        builder.build()
    }
}

/// The TVA+ queue construction: per-destination fair queuing on the regular
/// channel, capped hierarchical fair queuing on the request channel, on
/// every deployed inter-router link.
#[derive(Debug)]
struct TvaQueues {
    links: Vec<usize>,
}

impl QueueFactory for TvaQueues {
    fn make_queue(&mut self, link_index: usize, spec: &LinkSpec) -> Option<Box<dyn QueueDisc>> {
        if self.links.binary_search(&link_index).is_err() {
            return None;
        }
        // Regular channel: per-destination (per-receiver) fair queuing.
        // Request channel: two-level hierarchical fair queuing, capped at 5%.
        let regular = Box::new(DrrQueue::new(Classifier::ByDestination, 1500, 30_000));
        let request = Box::new(HierDrrQueue::new(1500, 10_000));
        let qlim_bytes = ((spec.capacity as f64 * 0.2 / 8.0) as usize).max(15_000);
        Some(Box::new(DualChannelQueue::new(regular, request, qlim_bytes / 4, spec.capacity, 0.05)))
    }
}

/// The TVA+ shim of one host: the capabilities it has granted to peers and
/// the capabilities it holds for its own destinations.
#[derive(Debug)]
struct TvaHostShim {
    deny_by_default: bool,
    /// Senders this receiver always grants.
    whitelist: BTreeSet<HostAddr>,
    /// Capabilities granted by this receiver, TTL'd by the configured
    /// lifetime; lapsed grants are purged on tick and counted in the
    /// report's `rules_expired`.
    granted: PolicyStore<HostAddr>,
    /// Capabilities this sender holds: destination → expiry (learned from
    /// grants piggybacked on reverse traffic).
    held: HashMap<HostAddr, Nanos>,
}

impl TvaHostShim {
    fn wants(&self, sender: HostAddr) -> bool {
        !self.deny_by_default || self.whitelist.contains(&sender)
    }
}

impl HostShim for TvaHostShim {
    fn on_send(&mut self, now: Nanos, pkt: &mut Packet, _ctl: &mut ControlPlane) {
        // Piggyback this host's (still valid) grant for the destination, so
        // the destination learns it may send back on the regular channel.
        let grant = self.granted.expiry_of(&pkt.dst).filter(|&exp| exp > now);
        let cap = self.held.get(&pkt.dst).copied().filter(|&exp| exp > now);
        let ext = if let Some(exp) = cap {
            pkt.channel = ChannelClass::Regular;
            TvaExt::Regular { cap_expiry: exp, grant }
        } else {
            pkt.channel = ChannelClass::Request;
            TvaExt::Request { grant }
        };
        pkt.size += ext.wire_len();
        pkt.ext = Some(Box::new(ext));
    }

    fn on_receive(&mut self, now: Nanos, pkt: &Packet, _ctl: &mut ControlPlane) {
        // 1. The receiver decides whether to (re)grant a capability to this
        //    sender; the grant travels back inside this host's own reverse
        //    traffic.
        if self.wants(pkt.src) {
            self.granted.insert(now, pkt.src);
        }
        // 2. A grant piggybacked on the arriving packet delivers the
        //    capability for the reverse direction.
        if let Some(grant) = pkt.ext_as::<TvaExt>().and_then(|e| e.grant()) {
            if grant > now {
                self.held.insert(pkt.src, grant);
            }
        }
    }

    fn tick(&mut self, now: Nanos, _ctl: &mut ControlPlane) {
        self.granted.purge(now);
    }

    fn report(&self, out: &mut DefenseReport) {
        out.capabilities_granted += self.granted.len();
        out.rules_installed += self.granted.stats.installed;
        out.rules_refreshed += self.granted.stats.refreshed;
        out.rules_expired += self.granted.stats.expired;
        out.rules_rejected += self.granted.stats.rejected;
    }
}

/// The TVA+ agent of one deployed router: verifies the capability carried
/// by regular packets.
#[derive(Debug)]
struct TvaRouterAgent {
    unauthorized_drops: u64,
}

impl RouterAgent for TvaRouterAgent {
    fn at_router(
        &mut self,
        now: Nanos,
        _is_access: bool,
        _out_link: LinkRef,
        pkt: &mut Packet,
        _ctl: &mut ControlPlane,
    ) -> RouterAction {
        match pkt.ext_as::<TvaExt>() {
            Some(TvaExt::Regular { cap_expiry, .. }) => {
                // Routers verify capabilities; regular packets with an
                // expired capability are dropped (they would be demoted to
                // the legacy channel in full TVA — equivalent for the
                // evaluation).
                if *cap_expiry > now {
                    RouterAction::Forward
                } else {
                    self.unauthorized_drops += 1;
                    RouterAction::Drop(DropCause::TvaNoCapability)
                }
            }
            _ => RouterAction::Forward,
        }
    }

    fn probe(&self, now: Nanos, out: &mut Timeline) {
        out.record(now, "unauthorized_drops", "tva".to_string(), self.unauthorized_drops as f64);
    }

    fn report(&self, out: &mut DefenseReport) {
        out.unauthorized_drops += self.unauthorized_drops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::prelude::*;

    const USER: u32 = 1;
    const ATTACKER: u32 = 2;
    const VICTIM: u32 = 100;
    const COLLUDER: u32 = 101;

    fn net() -> Network {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        let r3 = b.router(3, true);
        b.duplex(r1, r2, 1_000_000, 10 * MILLI, QueueKind::Red);
        b.duplex(r2, r3, 10_000_000, 10 * MILLI, QueueKind::Red);
        b.host(USER, 1, r1, 100_000_000, MILLI);
        b.host(ATTACKER, 1, r1, 100_000_000, MILLI);
        b.host(VICTIM, 3, r3, 100_000_000, MILLI);
        b.host(COLLUDER, 3, r3, 100_000_000, MILLI);
        b.build()
    }

    #[test]
    fn capabilities_gate_the_regular_channel() {
        let mut d = TvaDefense::new();
        d.deny_by_default(VICTIM);
        d.allow(VICTIM, USER);
        let net = net();
        let deployment = d.deploy(&net, &DeploymentSpec::full());
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 20 * SEC, ..Default::default() });
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
        sim.run();
        // The attacker never obtains a capability: its 1 Mbps flood is
        // squeezed into the 5% request channel.
        let attacker_goodput = sim.progress(attacker).goodput_bps(0, 20 * SEC);
        assert!(attacker_goodput < 120_000.0, "attacker delivered {attacker_goodput:.0} bps");
        // The legitimate user is granted a capability and transfers quickly.
        let p = sim.progress(user);
        assert!(p.completions.len() > 30, "completions {}", p.completions.len());
        assert!(p.avg_transfer_secs().unwrap() < 1.5);
    }

    #[test]
    fn idle_grants_lapse_and_senders_re_request() {
        // Capability lifetime 2 s, transfer gap 5 s: every grant expires
        // between transfers, so each transfer re-enters via the request
        // channel and a fresh grant is installed — transfers keep
        // completing regardless.
        let mut d = TvaDefense::new();
        d.capability_lifetime(2 * SEC);
        let net = net();
        let deployment = d.deploy(&net, &DeploymentSpec::full());
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 30 * SEC, ..Default::default() });
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 5 * SEC },
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        sim.run();
        let p = sim.progress(user);
        assert!(p.completions.len() >= 3, "completions {}", p.completions.len());
        assert_eq!(p.failed_transfers, 0);
        let report = sim.report();
        assert!(report.rules_expired >= 2, "expired: {}", report.rules_expired);
        assert!(report.rules_installed >= 3, "installed: {}", report.rules_installed);
    }

    #[test]
    fn colluders_hurt_tva_per_destination_queuing() {
        // With per-destination fair queuing, one colluder destination gets
        // half the bottleneck while the victim's many legitimate senders
        // share the other half — the TVA+ weakness the paper highlights.
        let d = TvaDefense::new();
        let net = net();
        let deployment = d.deploy(&net, &DeploymentSpec::full());
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 60 * SEC, ..Default::default() });
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 1_500_000)));
        sim.run();
        let user_bps = sim.progress(user).goodput_bps(0, 60 * SEC);
        let attacker_bps = sim.progress(attacker).goodput_bps(0, 60 * SEC);
        // Both destinations get roughly half of the 1 Mbps bottleneck.
        assert!(attacker_bps > 350_000.0 && attacker_bps < 650_000.0, "attacker {attacker_bps:.0}");
        assert!(user_bps > 250_000.0, "user {user_bps:.0}");
        assert!(sim.report().capabilities_granted >= 2);
    }
}
