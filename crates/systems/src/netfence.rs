//! The NetFence defense system bound to the simulator.
//!
//! This adapter owns one [`AccessRouter`] per access-router node, one
//! [`BottleneckLink`] per inter-router link, and the sender/receiver shims
//! of every host, and wires them into the simulator's forwarding path via
//! the [`DefenseSystem`] hooks:
//!
//! * `on_host_send` — the sender shim builds the NetFence header (request or
//!   regular, presenting held feedback, echoing feedback for the reverse
//!   direction);
//! * `at_router` (access router) — validation, request policing, per-(sender,
//!   bottleneck) rate limiting, feedback re-stamping (Figure 18);
//! * `on_link_dequeue` / `on_link_drop` (bottleneck links) — attack
//!   detection input and `L↓` stamping (§4.3.1–4.3.2);
//! * `on_host_receive` — the receiver shim records presented feedback and
//!   the sender shim learns echoed feedback;
//! * `tick` — control-interval AIMD adjustment and monitoring-cycle
//!   bookkeeping.

use std::collections::HashMap;

use netfence_core::access::{AccessRouter, AccessVerdict, DropReason};
use netfence_core::as_police::{AsPolicer, AsPolicingMode};
use netfence_core::bottleneck::{BottleneckLink, Channel};
use netfence_core::config::Config;
use netfence_core::endpoint::{ReceiverPolicy, ReceiverShim, SenderShim};
use netfence_core::types::{AsId, FlowPair, HostId, LinkId};
use netfence_crypto::{full_mesh_exchange, AsKeyAgent, AsKeyTable};
use netfence_sim::defense::{DefenseSystem, RouterAction};
use netfence_sim::packet::{AsNum, ChannelClass, Extension, HostAddr, LinkAddr, Packet, Protocol};
use netfence_sim::queue::{DualChannelQueue, PriorityLevelQueue, QueueDisc, RedQueue};
use netfence_sim::time::Nanos;
use netfence_sim::topology::{LinkSpec, Network, NodeId};

use crate::headers::NetFenceExt;

/// Aggregate counters for experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct NetFenceStats {
    /// Packets dropped by access-router request limiters.
    pub request_drops: u64,
    /// Packets dropped by per-(sender, bottleneck) rate limiters.
    pub regular_drops: u64,
    /// Packets dropped by the per-AS damage-localization policer.
    pub as_policer_drops: u64,
    /// Packets whose feedback was stamped `L↓` at a bottleneck.
    pub stamped_decr: u64,
}

/// The NetFence defense system.
#[derive(Debug)]
pub struct NetFenceDefense {
    cfg: Config,
    /// Per-access-router protocol state.
    access: HashMap<NodeId, AccessRouter>,
    /// Per-bottleneck-link protocol state (keyed by link address).
    bottlenecks: HashMap<LinkAddr, BottleneckLink>,
    /// Sender-side shims per host.
    senders: HashMap<HostAddr, SenderShim>,
    /// Receiver-side shims per host.
    receivers: HashMap<HostAddr, ReceiverShim>,
    /// Hosts whose receivers suppress feedback by default (victims with a
    /// whitelist).
    deny_by_default: Vec<HostAddr>,
    /// Fixed request-priority override for (attacker) hosts.
    priority_override: HashMap<HostAddr, u8>,
    /// Optional per-AS damage localization at bottleneck links (§4.5).
    as_policers: HashMap<LinkAddr, AsPolicer>,
    as_policing_mode: Option<AsPolicingMode>,
    /// Per-AS key tables from the Passport-style exchange.
    as_tables: HashMap<AsNum, AsKeyTable>,
    /// Statistics.
    pub stats: NetFenceStats,
    seed: u64,
}

impl NetFenceDefense {
    /// Create a NetFence deployment with the given protocol parameters.
    pub fn new(cfg: Config) -> Self {
        NetFenceDefense {
            cfg,
            access: HashMap::new(),
            bottlenecks: HashMap::new(),
            senders: HashMap::new(),
            receivers: HashMap::new(),
            deny_by_default: Vec::new(),
            priority_override: HashMap::new(),
            as_policers: HashMap::new(),
            as_policing_mode: None,
            as_tables: HashMap::new(),
            stats: NetFenceStats::default(),
            seed: 0x4E46_4E46,
        }
    }

    /// Make a receiver suppress feedback for every sender not explicitly
    /// whitelisted (a victim with a whitelist). Must be called before the
    /// simulator is constructed.
    pub fn deny_all_senders(&mut self, receiver: HostAddr) {
        self.deny_by_default.push(receiver);
    }

    /// Configure a receiver to suppress feedback for a specific sender
    /// (classifying it as attack traffic, §3.3).
    pub fn suppress_sender(&mut self, receiver: HostAddr, sender: HostAddr) {
        self.receivers
            .entry(receiver)
            .or_default()
            .set_policy(HostId(sender), ReceiverPolicy::Suppress);
    }

    /// Force a host's request packets to a fixed priority level (used to
    /// model the strategic attackers of §6.3.1).
    pub fn set_request_priority(&mut self, host: HostAddr, level: u8) {
        self.priority_override.insert(host, level);
    }

    /// Enable per-AS damage localization at every bottleneck link.
    pub fn enable_as_policing(&mut self, mode: AsPolicingMode) {
        self.as_policing_mode = Some(mode);
    }

    /// Number of rate limiters across all access routers (scalability
    /// metric, §5.1).
    pub fn total_rate_limiters(&self) -> usize {
        self.access.values().map(|a| a.limiter_count()).sum()
    }

    /// Whether the given link is currently in a monitoring cycle.
    pub fn link_in_mon(&self, link: LinkAddr) -> bool {
        self.bottlenecks.get(&link).map(|b| b.in_mon()).unwrap_or(false)
    }

    /// The rate limit an access router currently applies to (sender, link),
    /// if such a limiter exists.
    pub fn rate_limit_of(&self, sender: HostAddr, link: LinkAddr) -> Option<u64> {
        self.access.values().find_map(|a| a.rate_limit(HostId(sender), LinkId(link)))
    }

    fn ext_of(pkt: &mut Packet) -> Option<&mut NetFenceExt> {
        pkt.ext_as_mut::<NetFenceExt>()
    }

    fn channel_of(c: Channel) -> ChannelClass {
        match c {
            Channel::Regular => ChannelClass::Regular,
            Channel::Request => ChannelClass::Request,
            Channel::Legacy => ChannelClass::Legacy,
        }
    }
}

impl DefenseSystem for NetFenceDefense {
    fn name(&self) -> &'static str {
        "netfence"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn install(&mut self, net: &Network) {
        // 1. Passport-style pairwise keys between all ASes.
        let mut as_numbers: Vec<AsNum> = net.nodes.iter().map(|n| n.as_num()).collect();
        as_numbers.sort_unstable();
        as_numbers.dedup();
        let agents: Vec<AsKeyAgent> = as_numbers
            .iter()
            .map(|&a| {
                AsKeyAgent::new(a, self.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(a as u64 + 1)))
            })
            .collect();
        let tables = full_mesh_exchange(&agents);
        for (i, &a) in as_numbers.iter().enumerate() {
            let mut table = tables[i].clone();
            // Also install a self-key so a bottleneck router can stamp L↓
            // for senders that live in its own AS (the paper's topology
            // always crosses AS boundaries, but intra-AS bottlenecks are
            // legitimate deployments too).
            table.install(a, agents[i].shared_key(a, agents[i].public_value()));
            self.as_tables.insert(a, table);
        }

        // 2. One AccessRouter per access-router node; it learns the AS of
        //    every inter-router link so it can validate L↓ feedback.
        let inter_router_links: Vec<(usize, &LinkSpec)> = net
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                net.nodes[l.from.0].host_addr().is_none() && net.nodes[l.to.0].host_addr().is_none()
            })
            .collect();
        for (i, node) in net.nodes.iter().enumerate() {
            if !node.is_access_router() {
                continue;
            }
            let as_num = node.as_num();
            let mut ka_root = [0u8; 16];
            ka_root[..8].copy_from_slice(&(i as u64 + 1).to_be_bytes());
            ka_root[8..].copy_from_slice(&self.seed.to_be_bytes());
            let table = self.as_tables.get(&as_num).cloned().unwrap_or_default();
            let mut access = AccessRouter::new(self.cfg.clone(), AsId(as_num), ka_root, table);
            for (_, spec) in &inter_router_links {
                let owner_as = net.nodes[spec.from.0].as_num();
                access.register_link_as(LinkId(spec.addr), AsId(owner_as));
            }
            self.access.insert(NodeId(i), access);
        }

        // 3. One BottleneckLink per inter-router link.
        for (_, spec) in &inter_router_links {
            let owner_as = net.nodes[spec.from.0].as_num();
            let table = self.as_tables.get(&owner_as).cloned().unwrap_or_default();
            self.bottlenecks.insert(
                spec.addr,
                BottleneckLink::new(LinkId(spec.addr), spec.capacity, table, self.cfg.clone(), 0),
            );
            if let Some(mode) = self.as_policing_mode {
                self.as_policers.insert(spec.addr, AsPolicer::new(mode, spec.capacity, 0));
            }
        }

        // 4. Deny-by-default receivers requested before install.
        for host in self.deny_by_default.clone() {
            self.receivers.insert(host, ReceiverShim::deny_by_default());
        }
    }

    fn make_queue(&mut self, _link_index: usize, spec: &LinkSpec) -> Option<Box<dyn QueueDisc>> {
        // Only bottleneck (inter-router) links get the three-channel split;
        // host access links keep their defaults.
        if !self.bottlenecks.contains_key(&spec.addr) {
            return None;
        }
        let qlim_bytes = ((spec.capacity as f64 * 0.2 / 8.0) as usize).max(15_000);
        let regular = Box::new(RedQueue::for_capacity(spec.capacity, self.seed ^ spec.addr as u64));
        let request = Box::new(PriorityLevelQueue::new(
            (qlim_bytes as f64 * self.cfg.request_channel_fraction).max(4_600.0) as usize,
        ));
        Some(Box::new(DualChannelQueue::new(
            regular,
            request,
            qlim_bytes / 4,
            spec.capacity,
            self.cfg.request_channel_fraction,
        )))
    }

    fn on_host_send(&mut self, now: Nanos, pkt: &mut Packet) {
        let proto = match pkt.protocol {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        };
        let echo = self.receivers.entry(pkt.src).or_default().echo_for(HostId(pkt.dst));
        let sender = self.senders.entry(pkt.src).or_default();
        let mut header = sender.make_header(now, HostId(pkt.dst), proto, echo, &self.cfg);
        if header.kind == netfence_core::header::PacketKind::Request {
            if let Some(&level) = self.priority_override.get(&pkt.src) {
                header.priority = level;
            }
            pkt.channel = ChannelClass::Request;
        } else {
            pkt.channel = ChannelClass::Regular;
        }
        pkt.priority = header.priority;
        let ext = NetFenceExt::new(header);
        pkt.size += ext.wire_len();
        pkt.ext = Some(Box::new(ext));
    }

    fn at_router(
        &mut self,
        now: Nanos,
        node: NodeId,
        is_access: bool,
        out_link: LinkAddr,
        pkt: &mut Packet,
    ) -> RouterAction {
        if is_access {
            let Some(access) = self.access.get_mut(&node) else {
                return RouterAction::Forward;
            };
            let flow = FlowPair::new(HostId(pkt.src), HostId(pkt.dst));
            let size = pkt.size;
            let Some(ext) = Self::ext_of(pkt) else {
                // Legacy traffic: forwarded with the lowest priority.
                pkt.channel = ChannelClass::Legacy;
                return RouterAction::Forward;
            };
            let verdict = access.process_outbound(now, flow, &mut ext.header, size);
            match verdict {
                AccessVerdict::Forward { channel } => {
                    let priority = ext.header.priority;
                    pkt.channel = Self::channel_of(channel);
                    pkt.priority = priority;
                    RouterAction::Forward
                }
                AccessVerdict::Queued { release_at } => {
                    ext.queued_for = ext.header.presented.link();
                    pkt.channel = ChannelClass::Regular;
                    RouterAction::Delay { release_at }
                }
                AccessVerdict::Drop(reason) => {
                    match reason {
                        DropReason::RequestRateLimited => self.stats.request_drops += 1,
                        DropReason::RegularRateLimited => self.stats.regular_drops += 1,
                    }
                    RouterAction::Drop
                }
            }
        } else {
            // A core/bottleneck router: optional per-AS damage localization
            // on its outgoing link (only once a monitoring cycle is active).
            if let Some(policer) = self.as_policers.get_mut(&out_link) {
                let in_mon = self.bottlenecks.get(&out_link).map(|b| b.in_mon()).unwrap_or(false);
                if in_mon && pkt.channel == ChannelClass::Regular {
                    let src_as = AsId(pkt.src_as);
                    if !policer.admit(now, src_as, pkt.size) {
                        self.stats.as_policer_drops += 1;
                        return RouterAction::Drop;
                    }
                }
            }
            RouterAction::Forward
        }
    }

    fn on_delayed_release(&mut self, _now: Nanos, pkt: &mut Packet) {
        let src = pkt.src;
        let Some(ext) = Self::ext_of(pkt) else { return };
        if let Some(link) = ext.queued_for.take() {
            for access in self.access.values_mut() {
                access.packet_released(HostId(src), link);
            }
        }
    }

    fn on_link_dequeue(&mut self, now: Nanos, link: LinkAddr, pkt: &mut Packet) {
        let Some(bl) = self.bottlenecks.get_mut(&link) else { return };
        if pkt.channel == ChannelClass::Regular {
            bl.record_regular(pkt.size, false);
        }
        let flow = FlowPair::new(HostId(pkt.src), HostId(pkt.dst));
        let src_as = AsId(pkt.src_as);
        if let Some(ext) = Self::ext_of(pkt) {
            let outcome = bl.update_feedback(now, flow, src_as, &mut ext.header.presented);
            if outcome == netfence_core::bottleneck::StampOutcome::StampedDecr {
                self.stats.stamped_decr += 1;
            }
        }
    }

    fn on_link_drop(&mut self, now: Nanos, link: LinkAddr, pkt: &Packet) {
        let Some(bl) = self.bottlenecks.get_mut(&link) else { return };
        if pkt.channel == ChannelClass::Regular {
            bl.record_regular(pkt.size, true);
            bl.note_congestion(now);
        }
    }

    fn on_host_receive(&mut self, _now: Nanos, pkt: &Packet) {
        let Some(ext) = pkt.ext.as_ref().and_then(|e| e.as_any().downcast_ref::<NetFenceExt>())
        else {
            return;
        };
        self.receivers
            .entry(pkt.dst)
            .or_default()
            .packet_received(HostId(pkt.src), ext.header.presented);
        if let Some(echo) = ext.header.echoed {
            self.senders.entry(pkt.dst).or_default().feedback_returned(HostId(pkt.src), echo);
        }
    }

    fn tick(&mut self, now: Nanos) {
        for access in self.access.values_mut() {
            access.tick(now);
        }
        for bl in self.bottlenecks.values_mut() {
            bl.tick(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::prelude::*;

    const USER: u32 = 0x0a_00_00_01;
    const ATTACKER: u32 = 0x0a_00_00_02;
    const VICTIM: u32 = 0x0b_00_00_01;
    const COLLUDER: u32 = 0x0b_00_00_02;

    /// Two source hosts in AS 1, two destination hosts in AS 3, a 2 Mbps
    /// bottleneck between the transit routers of AS 1 and AS 2.
    fn small_net(bottleneck: u64) -> (Network, LinkAddr) {
        let mut b = Network::builder();
        let ra = b.router(1, true);
        let rb = b.router(2, false);
        let rc = b.router(3, true);
        let (fwd, _) = b.duplex(ra, rb, bottleneck, 10 * MILLI, QueueKind::Red);
        b.duplex(rb, rc, bottleneck * 10, 10 * MILLI, QueueKind::Red);
        b.host(USER, 1, ra, 100_000_000, MILLI);
        b.host(ATTACKER, 1, ra, 100_000_000, MILLI);
        b.host(VICTIM, 3, rc, 100_000_000, MILLI);
        b.host(COLLUDER, 3, rc, 100_000_000, MILLI);
        let net = b.build();
        let addr = net.links[fwd].addr;
        (net, addr)
    }

    #[test]
    fn no_attack_means_no_monitoring_and_no_limiters() {
        let (net, bottleneck) = small_net(5_000_000);
        let defense = NetFenceDefense::new(Config::short_timers());
        let mut sim = Simulator::new(
            net,
            Box::new(defense),
            SimConfig { end_time: 10 * SEC, ..Default::default() },
        );
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        sim.run();
        let p = sim.progress(user);
        assert!(p.completions.len() > 20, "completed {}", p.completions.len());
        assert_eq!(p.failed_transfers, 0);
        // Idle state: no monitoring cycle ever starts and no limiter exists.
        let d = sim.defense.as_any().downcast_ref::<NetFenceDefense>().unwrap();
        assert!(!d.link_in_mon(bottleneck));
        assert_eq!(d.total_rate_limiters(), 0);
        assert!(sim.metrics.link_drop_pkts.get(&bottleneck).copied().unwrap_or(0) < 10);
    }

    #[test]
    fn colluding_flood_is_brought_to_fair_share() {
        // One legitimate TCP user and one attacker→colluder UDP flood share
        // a 1 Mbps bottleneck. Without NetFence the attacker starves TCP
        // (cf. engine tests); with NetFence both converge to roughly half.
        let (net, bottleneck) = small_net(1_000_000);
        let defense = NetFenceDefense::new(Config::short_timers());
        let mut sim = Simulator::new(
            net,
            Box::new(defense),
            SimConfig { end_time: 120 * SEC, ..Default::default() },
        );
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 1_000_000)));
        sim.run();
        let user_bps = sim.progress(user).goodput_bps(0, 120 * SEC);
        let attacker_bps = sim.progress(attacker).goodput_bps(0, 120 * SEC);
        let ratio = user_bps / attacker_bps.max(1.0);
        assert!(
            ratio > 0.5,
            "user should get a comparable share: user {user_bps:.0} bps vs attacker {attacker_bps:.0} bps"
        );
        assert!(
            attacker_bps < 900_000.0,
            "attacker must not keep the whole bottleneck ({attacker_bps:.0} bps)"
        );
        // The bottleneck entered a monitoring cycle (it stamped L↓, which
        // only happens in mon — whether it is *still* in mon at the final
        // instant depends on the cycle phase) and installed per-(sender,
        // bottleneck) rate limiters.
        let d = sim.defense.as_any().downcast_ref::<NetFenceDefense>().unwrap();
        assert!(d.stats.stamped_decr > 0, "no L↓ ever stamped");
        assert!(d.total_rate_limiters() >= 2, "limiters: {}", d.total_rate_limiters());
        assert!(sim.metrics.link_drop_pkts.get(&bottleneck).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn victim_suppressing_feedback_starves_attacker_regular_traffic() {
        let (net, _) = small_net(1_000_000);
        let mut defense = NetFenceDefense::new(Config::short_timers());
        // The victim classifies ATTACKER as unwanted and never returns
        // feedback; the attacker's request packets are also sent at the
        // lowest priority.
        defense.suppress_sender(VICTIM, ATTACKER);
        let mut sim = Simulator::new(
            net,
            Box::new(defense),
            SimConfig { end_time: 30 * SEC, ..Default::default() },
        );
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
        sim.run();
        let attacker_goodput = sim.progress(attacker).goodput_bps(0, 30 * SEC);
        // All the attacker can deliver is strictly rate-limited request
        // traffic: a tiny fraction of its 1 Mbps offered load.
        assert!(
            attacker_goodput < 150_000.0,
            "unwanted traffic must be suppressed, got {attacker_goodput:.0} bps"
        );
        // The legitimate user is essentially unaffected.
        let p = sim.progress(user);
        assert!(p.completions.len() > 20);
        assert!(p.avg_transfer_secs().unwrap() < 3.0);
    }
}
