//! The NetFence defense system deployed onto the simulator.
//!
//! [`NetFenceDefense`] is a [`DefenseFactory`]: given a network and a
//! [`DeploymentSpec`], it installs one [`HostShim`] per host of every
//! deploying AS (the sender/receiver shim layer of §3.1) and one
//! [`RouterAgent`] per router of every deploying AS, holding that router's
//! [`AccessRouter`] protocol state and one [`BottleneckLink`] per outgoing
//! inter-router link:
//!
//! * `on_send` — the sender shim builds the NetFence header (request or
//!   regular, presenting held feedback, echoing feedback for the reverse
//!   direction);
//! * `at_router` (access router) — validation, request policing, per-(sender,
//!   bottleneck) rate limiting, feedback re-stamping (Figure 18);
//! * `on_link_dequeue` / `on_link_drop` (bottleneck links) — attack
//!   detection input and `L↓` stamping (§4.3.1–4.3.2);
//! * `on_receive` — the receiver shim records presented feedback and the
//!   sender shim learns echoed feedback;
//! * `tick` — control-interval AIMD adjustment and monitoring-cycle
//!   bookkeeping.
//!
//! The Passport-style pairwise AS keys are established over the
//! deployment's [`ControlPlane`] bus: at deploy time every deploying AS
//! posts a [`KeyAnnouncement`] (its Diffie–Hellman public value) to every
//! deployed router agent, which derives and installs the shared key — the
//! BGP-piggybacked exchange of §4.4, in message form. With
//! [`NetFenceDefense::key_ttl`] set, installed keys lapse unless the
//! owning AS's designated announcer (its first deployed router) re-posts
//! the announcement every `ttl / 2`; over a lossy or partitioned control
//! plane a missed refresh uninstalls the key and that AS's traffic
//! reverts to unverifiable until an announcement lands again. Nodes of
//! non-deploying ASes get no agents at all; their traffic carries no
//! NetFence header and is demoted to the legacy channel at deployed
//! routers, which is the paper's adoption incentive (§5.3).

use std::collections::{BTreeMap, HashMap};

use netfence_core::access::{AccessRouter, AccessVerdict, DropReason};
use netfence_core::as_police::{AsPolicer, AsPolicingMode};
use netfence_core::bottleneck::{BottleneckLink, Channel};
use netfence_core::config::Config;
use netfence_core::endpoint::{ReceiverPolicy, ReceiverShim, SenderShim};
use netfence_core::types::{AsId, FlowPair, HostId, LinkId};
use netfence_crypto::AsKeyAgent;
use netfence_ctrl::policy::PolicyStore;
use netfence_sim::deploy::{
    ControlPlane, DefenseFactory, DefenseReport, Deployment, DeploymentSpec, HostShim, LinkRef,
    QueueFactory, RouterAction, RouterAgent, RouterFault,
};
use netfence_sim::packet::{AsNum, ChannelClass, Extension, HostAddr, Packet, Protocol};
use netfence_sim::prelude::{DropCause, Timeline};
use netfence_sim::queue::{DualChannelQueue, PriorityLevelQueue, QueueDisc, RedQueue};
use netfence_sim::time::Nanos;
use netfence_sim::topology::{LinkSpec, Network, NodeId};

use crate::headers::NetFenceExt;

/// A Passport key announcement carried on the control-plane bus: the
/// announcing AS and its Diffie–Hellman public value. Every deployed router
/// derives the pairwise AES key from it (§4.4).
#[derive(Debug, Clone, Copy)]
pub struct KeyAnnouncement {
    /// The announcing AS.
    pub asn: AsNum,
    /// Its public Diffie–Hellman value.
    pub public_value: u64,
}

/// The NetFence defense factory: protocol parameters plus the per-host
/// policies (suppression, priority overrides) applied when deploying.
#[derive(Debug)]
pub struct NetFenceDefense {
    cfg: Config,
    /// Hosts whose receivers suppress feedback by default (victims with a
    /// whitelist).
    deny_by_default: Vec<HostAddr>,
    /// (receiver, sender) pairs the receiver classifies as unwanted.
    suppressed: Vec<(HostAddr, HostAddr)>,
    /// Fixed request-priority override for (attacker) hosts.
    priority_override: HashMap<HostAddr, u8>,
    /// Optional per-AS damage localization at bottleneck links (§4.5).
    as_policing_mode: Option<AsPolicingMode>,
    /// Installed pairwise AS keys lapse after this long without a refresh
    /// announcement (0 = permanent, the legacy behavior).
    key_ttl: Nanos,
    seed: u64,
}

impl NetFenceDefense {
    /// Create a NetFence factory with the given protocol parameters.
    pub fn new(cfg: Config) -> Self {
        NetFenceDefense {
            cfg,
            deny_by_default: Vec::new(),
            suppressed: Vec::new(),
            priority_override: HashMap::new(),
            as_policing_mode: None,
            key_ttl: 0,
            seed: 0x4E46_4E46,
        }
    }

    /// Make a receiver suppress feedback for every sender not explicitly
    /// whitelisted (a victim with a whitelist).
    pub fn deny_all_senders(&mut self, receiver: HostAddr) {
        self.deny_by_default.push(receiver);
    }

    /// Configure a receiver to suppress feedback for a specific sender
    /// (classifying it as attack traffic, §3.3).
    pub fn suppress_sender(&mut self, receiver: HostAddr, sender: HostAddr) {
        self.suppressed.push((receiver, sender));
    }

    /// Force a host's request packets to a fixed priority level (used to
    /// model the strategic attackers of §6.3.1).
    pub fn set_request_priority(&mut self, host: HostAddr, level: u8) {
        self.priority_override.insert(host, level);
    }

    /// Enable per-AS damage localization at every bottleneck link.
    pub fn enable_as_policing(&mut self, mode: AsPolicingMode) {
        self.as_policing_mode = Some(mode);
    }

    /// Make installed pairwise AS keys lapse after `ttl` without a refresh
    /// (0 restores the legacy permanent keys). Each deploying AS's
    /// designated announcer re-posts its [`KeyAnnouncement`] every
    /// `ttl / 2` over the control plane.
    pub fn key_ttl(&mut self, ttl: Nanos) {
        self.key_ttl = ttl;
    }

    /// The deterministic key agent of a deploying AS.
    fn key_agent(&self, asn: AsNum) -> AsKeyAgent {
        AsKeyAgent::new(asn, self.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(asn as u64 + 1)))
    }
}

impl DefenseFactory for NetFenceDefense {
    fn name(&self) -> &'static str {
        "netfence"
    }

    fn deploy(&self, net: &Network, spec: &DeploymentSpec) -> Deployment {
        let map = spec.resolve(net);
        let inter_router_links: Vec<(usize, &LinkSpec)> = net
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                net.nodes[l.from.0].host_addr().is_none() && net.nodes[l.to.0].host_addr().is_none()
            })
            .collect();

        let mut builder = Deployment::builder(net, "netfence");
        builder.ases(map.ases.len(), map.total_ases);

        // The three-channel queues replace the defaults on every
        // inter-router link whose owning (sending-side) AS deploys.
        let bottleneck_links: Vec<usize> =
            inter_router_links.iter().filter(|(_, l)| map.node(l.from)).map(|(i, _)| *i).collect();
        builder.queues(Box::new(NetFenceQueues {
            cfg: self.cfg.clone(),
            seed: self.seed,
            links: bottleneck_links,
        }));

        // Router agents for every router in a deploying AS.
        let agent_nodes: Vec<NodeId> = net
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, node)| node.host_addr().is_none() && map.node(NodeId(i)))
            .map(|(i, _)| NodeId(i))
            .collect();
        // With a key TTL, each deploying AS's first router doubles as its
        // designated announcer, re-posting the AS's public value every
        // `ttl / 2` so installed keys stay refreshed.
        let mut announcer_of: HashMap<AsNum, NodeId> = HashMap::new();
        if self.key_ttl > 0 {
            for &node in &agent_nodes {
                announcer_of.entry(net.nodes[node.0].as_num()).or_insert(node);
            }
        }
        // The (bottleneck link → owning AS) registrations every access
        // router needs; identical for all of them, captured once.
        let link_as_pairs: Vec<(LinkId, AsId)> = inter_router_links
            .iter()
            .map(|(_, spec)| (LinkId(spec.addr), AsId(net.nodes[spec.from.0].as_num())))
            .collect();
        for &node_id in &agent_nodes {
            let i = node_id.0;
            let node = &net.nodes[i];
            let as_num = node.as_num();
            let mut ka_root = [0u8; 16];
            ka_root[..8].copy_from_slice(&(i as u64 + 1).to_be_bytes());
            ka_root[8..].copy_from_slice(&self.seed.to_be_bytes());
            // Bottleneck state for this router's outgoing inter-router
            // links: a sparse (link index, state) list sorted ascending —
            // routers own only a handful of links, so allocation stays
            // proportional to the agent, not to the whole network.
            let mut bl_specs: Vec<(usize, LinkId, u64)> = Vec::new();
            for &(li, spec) in &inter_router_links {
                if spec.from.0 != i {
                    continue;
                }
                bl_specs.push((li, LinkId(spec.addr), spec.capacity));
            }
            // Everything needed to rebuild this agent's defense state from
            // scratch — construction at deploy time and reconstruction
            // after an injected reboot go through the same template, so a
            // rebooted router is indistinguishable from a freshly deployed
            // one (modulo its rotated time-varying secret).
            let template = AgentTemplate {
                cfg: self.cfg.clone(),
                as_id: AsId(as_num),
                ka_root,
                is_access: node.is_access_router(),
                link_as: link_as_pairs.clone(),
                bottlenecks: bl_specs,
                policing_mode: self.as_policing_mode,
                key_ttl: self.key_ttl,
                generation: 0,
            };
            let announcer = (announcer_of.get(&as_num) == Some(&node_id)).then(|| KeyAnnouncer {
                asn: as_num,
                public_value: self.key_agent(as_num).public_value(),
                peers: agent_nodes.clone(),
                interval: (self.key_ttl / 2).max(1),
                last: 0,
            });
            builder.router_agent(
                node_id,
                Box::new(NetFenceRouterAgent {
                    access: template.build_access(),
                    bottlenecks: template.build_bottlenecks(),
                    as_policers: template.build_policers(),
                    key_agent: self.key_agent(as_num),
                    keys: PolicyStore::new(self.key_ttl, 0),
                    announcer,
                    template,
                    clock_offset: 0,
                    stats: AgentStats::default(),
                }),
            );
        }

        // Host shims for every host in a deploying AS.
        for host in net.hosts() {
            if !map.as_deployed(net.as_of_host(host)) {
                continue;
            }
            let mut receiver = if self.deny_by_default.contains(&host) {
                ReceiverShim::deny_by_default()
            } else {
                ReceiverShim::default()
            };
            for &(r, s) in &self.suppressed {
                if r == host {
                    receiver.set_policy(HostId(s), ReceiverPolicy::Suppress);
                }
            }
            builder.host_shim(
                host,
                Box::new(NetFenceHostShim {
                    cfg: self.cfg.clone(),
                    sender: SenderShim::default(),
                    receiver,
                    priority_override: self.priority_override.get(&host).copied(),
                }),
            );
        }

        let mut deployment = builder.build();
        // Passport key exchange over the control plane: every deploying AS
        // announces its public value to every deployed router (one round,
        // as a full-mesh BGP propagation would). Each agent derives and
        // installs the pairwise keys in `on_control`.
        for &asn in &map.ases {
            let agent = self.key_agent(asn);
            let ann = KeyAnnouncement { asn, public_value: agent.public_value() };
            for &node in &agent_nodes {
                deployment.bus.to_router(node, ann);
            }
        }
        deployment
    }
}

/// Per-agent counters, merged into the [`DefenseReport`].
#[derive(Debug, Default, Clone, Copy)]
struct AgentStats {
    request_drops: u64,
    regular_drops: u64,
    as_policer_drops: u64,
    stamped_decr: u64,
}

/// The three-channel queue construction of a NetFence deployment.
#[derive(Debug)]
struct NetFenceQueues {
    cfg: Config,
    seed: u64,
    /// Inter-router links owned by a deploying AS (dense indices).
    links: Vec<usize>,
}

impl QueueFactory for NetFenceQueues {
    fn make_queue(&mut self, link_index: usize, spec: &LinkSpec) -> Option<Box<dyn QueueDisc>> {
        // Only bottleneck (inter-router) links of deploying ASes get the
        // three-channel split; everything else keeps its default.
        if self.links.binary_search(&link_index).is_err() {
            return None;
        }
        let qlim_bytes = ((spec.capacity as f64 * 0.2 / 8.0) as usize).max(15_000);
        let regular = Box::new(RedQueue::for_capacity(spec.capacity, self.seed ^ spec.addr as u64));
        let request = Box::new(PriorityLevelQueue::new(
            (qlim_bytes as f64 * self.cfg.request_channel_fraction).max(4_600.0) as usize,
        ));
        Some(Box::new(DualChannelQueue::new(
            regular,
            request,
            qlim_bytes / 4,
            spec.capacity,
            self.cfg.request_channel_fraction,
        )))
    }
}

/// The sender/receiver shim of one NetFence host.
#[derive(Debug)]
struct NetFenceHostShim {
    cfg: Config,
    sender: SenderShim,
    receiver: ReceiverShim,
    priority_override: Option<u8>,
}

impl HostShim for NetFenceHostShim {
    fn on_send(&mut self, now: Nanos, pkt: &mut Packet, _ctl: &mut ControlPlane) {
        let proto = match pkt.protocol {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        };
        let echo = self.receiver.echo_for(HostId(pkt.dst));
        let mut header = self.sender.make_header(now, HostId(pkt.dst), proto, echo, &self.cfg);
        if header.kind == netfence_core::header::PacketKind::Request {
            if let Some(level) = self.priority_override {
                header.priority = level;
            }
            pkt.channel = ChannelClass::Request;
        } else {
            pkt.channel = ChannelClass::Regular;
        }
        pkt.priority = header.priority;
        let ext = NetFenceExt::new(header);
        pkt.size += ext.wire_len();
        pkt.ext = Some(Box::new(ext));
    }

    fn on_receive(&mut self, _now: Nanos, pkt: &Packet, _ctl: &mut ControlPlane) {
        let Some(ext) = pkt.ext_as::<NetFenceExt>() else {
            return;
        };
        self.receiver.packet_received(HostId(pkt.src), ext.header.presented);
        if let Some(echo) = ext.header.echoed {
            self.sender.feedback_returned(HostId(pkt.src), echo);
        }
    }
}

/// The designated key announcer of one deploying AS: re-posts the AS's
/// public value to every deployed router every `interval` so TTL'd keys
/// stay refreshed (the periodic BGP re-advertisement of §4.4).
#[derive(Debug)]
struct KeyAnnouncer {
    asn: AsNum,
    public_value: u64,
    /// Every deployed router agent (snapshot at deploy time).
    peers: Vec<NodeId>,
    /// Re-announce cadence (`key_ttl / 2`).
    interval: Nanos,
    /// When the last announcement was posted (deploy time = 0).
    last: Nanos,
}

/// Deploy-time construction parameters of one router agent, kept so an
/// injected reboot can rebuild the agent's volatile defense state exactly
/// the way `deploy` built it. `generation` counts reboots and key
/// desyncs: each one derives a fresh time-varying secret root, so feedback
/// stamped before the fault genuinely stops validating.
#[derive(Debug)]
struct AgentTemplate {
    cfg: Config,
    as_id: AsId,
    ka_root: [u8; 16],
    is_access: bool,
    /// (bottleneck link → owning AS) registrations for the access router.
    link_as: Vec<(LinkId, AsId)>,
    /// (link index, link id, capacity) of each owned bottleneck link.
    bottlenecks: Vec<(usize, LinkId, u64)>,
    policing_mode: Option<AsPolicingMode>,
    key_ttl: Nanos,
    generation: u32,
}

impl AgentTemplate {
    /// The time-varying secret root of the current generation (generation
    /// 0 is the deploy-time root, so fresh construction is unchanged).
    fn root_for_generation(&self) -> [u8; 16] {
        let mut root = self.ka_root;
        let mix = (self.generation as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for (slot, byte) in root[..8].iter_mut().zip(mix.to_be_bytes()) {
            *slot ^= byte;
        }
        root
    }

    fn build_access(&self) -> Option<AccessRouter> {
        if !self.is_access {
            return None;
        }
        let mut access = AccessRouter::new(
            self.cfg.clone(),
            self.as_id,
            self.root_for_generation(),
            Default::default(),
        );
        for &(link, owner) in &self.link_as {
            access.register_link_as(link, owner);
        }
        Some(access)
    }

    fn build_bottlenecks(&self) -> Vec<(usize, BottleneckLink)> {
        self.bottlenecks
            .iter()
            .map(|&(li, link, capacity)| {
                (li, BottleneckLink::new(link, capacity, Default::default(), self.cfg.clone(), 0))
            })
            .collect()
    }

    fn build_policers(&self) -> Vec<(usize, AsPolicer)> {
        match self.policing_mode {
            Some(mode) => self
                .bottlenecks
                .iter()
                .map(|&(li, _, capacity)| (li, AsPolicer::new(mode, capacity, 0)))
                .collect(),
            None => Vec::new(),
        }
    }
}

/// The NetFence agent of one deployed router: access-router protocol state
/// (when the node is an access router) plus per-outgoing-link bottleneck
/// state.
#[derive(Debug)]
struct NetFenceRouterAgent {
    access: Option<AccessRouter>,
    /// Bottleneck state per outgoing inter-router link: (link index,
    /// state), sorted ascending by index.
    bottlenecks: Vec<(usize, BottleneckLink)>,
    /// Per-AS damage localization per outgoing link (§4.5), when enabled.
    as_policers: Vec<(usize, AsPolicer)>,
    key_agent: AsKeyAgent,
    /// TTL bookkeeping for installed pairwise keys; expired peers are
    /// uninstalled from the access router and bottleneck key tables on
    /// the next tick.
    keys: PolicyStore<AsNum>,
    /// Present on the AS's designated announcer when a key TTL is set.
    announcer: Option<KeyAnnouncer>,
    /// Deploy-time construction parameters, for fault-injected rebuilds.
    template: AgentTemplate,
    /// Injected clock skew (ns) applied to this router's protocol clock —
    /// the `now` its feedback stamping, validation (§4.4 expiration
    /// window) and AIMD machinery observe. Control-plane cadence (key TTL
    /// purge, announcer re-posts) stays on engine time.
    clock_offset: i64,
    stats: AgentStats,
}

impl NetFenceRouterAgent {
    fn bottleneck_mut(&mut self, link_index: usize) -> Option<&mut BottleneckLink> {
        let i = self.bottlenecks.binary_search_by_key(&link_index, |(li, _)| *li).ok()?;
        Some(&mut self.bottlenecks[i].1)
    }

    /// Engine time as seen by this router's (possibly skewed) local clock.
    fn local_now(&self, now: Nanos) -> Nanos {
        if self.clock_offset >= 0 {
            now.saturating_add(self.clock_offset as u64)
        } else {
            now.saturating_sub(self.clock_offset.unsigned_abs())
        }
    }
}

impl RouterAgent for NetFenceRouterAgent {
    fn at_router(
        &mut self,
        now: Nanos,
        is_access: bool,
        out_link: LinkRef,
        pkt: &mut Packet,
        _ctl: &mut ControlPlane,
    ) -> RouterAction {
        // Feedback stamping, validation and policing all run on the
        // router's local (possibly fault-skewed) clock.
        let now = self.local_now(now);
        if is_access {
            let Some(access) = self.access.as_mut() else {
                return RouterAction::Forward;
            };
            let flow = FlowPair::new(HostId(pkt.src), HostId(pkt.dst));
            let size = pkt.size;
            let Some(ext) = pkt.ext_as_mut::<NetFenceExt>() else {
                // Legacy traffic: forwarded with the lowest priority.
                pkt.channel = ChannelClass::Legacy;
                return RouterAction::Forward;
            };
            let verdict = access.process_outbound(now, flow, &mut ext.header, size);
            match verdict {
                AccessVerdict::Forward { channel } => {
                    let priority = ext.header.priority;
                    pkt.channel = channel_of(channel);
                    pkt.priority = priority;
                    RouterAction::Forward
                }
                AccessVerdict::Queued { release_at } => {
                    ext.queued_for = ext.header.presented.link();
                    pkt.channel = ChannelClass::Regular;
                    RouterAction::Delay { release_at }
                }
                AccessVerdict::Drop(reason) => {
                    let cause = match reason {
                        DropReason::RequestRateLimited => {
                            self.stats.request_drops += 1;
                            DropCause::RequestRateLimit
                        }
                        DropReason::RegularRateLimited => {
                            self.stats.regular_drops += 1;
                            DropCause::RegularRateLimit
                        }
                        // Still a request-limiter drop for the report, but
                        // typed separately so the budget distinguishes
                        // spoofed feedback from plain request floods.
                        DropReason::UnverifiedFeedback => {
                            self.stats.request_drops += 1;
                            DropCause::InvalidMac
                        }
                    };
                    RouterAction::Drop(cause)
                }
            }
        } else {
            // A core/bottleneck router of a deploying AS.
            if pkt.ext_as::<NetFenceExt>().is_none() {
                // Traffic from a non-deploying AS carries no NetFence
                // header: demote it below NetFence traffic (§5.3's adoption
                // incentive).
                pkt.channel = ChannelClass::Legacy;
                return RouterAction::Forward;
            }
            // Optional per-AS damage localization on the outgoing link
            // (only once a monitoring cycle is active).
            if let Ok(pi) = self.as_policers.binary_search_by_key(&out_link.index, |(li, _)| *li) {
                let in_mon = self
                    .bottlenecks
                    .binary_search_by_key(&out_link.index, |(li, _)| *li)
                    .map(|bi| self.bottlenecks[bi].1.in_mon())
                    .unwrap_or(false);
                if in_mon && pkt.channel == ChannelClass::Regular {
                    let src_as = AsId(pkt.src_as);
                    if !self.as_policers[pi].1.admit(now, src_as, pkt.size) {
                        self.stats.as_policer_drops += 1;
                        return RouterAction::Drop(DropCause::AsPolicer);
                    }
                }
            }
            RouterAction::Forward
        }
    }

    fn on_delayed_release(&mut self, _now: Nanos, pkt: &mut Packet, _ctl: &mut ControlPlane) {
        let src = pkt.src;
        let Some(ext) = pkt.ext_as_mut::<NetFenceExt>() else { return };
        if let Some(link) = ext.queued_for.take() {
            if let Some(access) = self.access.as_mut() {
                access.packet_released(HostId(src), link);
            }
        }
    }

    fn on_link_dequeue(&mut self, now: Nanos, link: LinkRef, pkt: &mut Packet) {
        let now = self.local_now(now);
        let Some(bl) = self.bottleneck_mut(link.index) else { return };
        if pkt.channel == ChannelClass::Regular {
            bl.record_regular(pkt.size, false);
        }
        let flow = FlowPair::new(HostId(pkt.src), HostId(pkt.dst));
        let src_as = AsId(pkt.src_as);
        if let Some(ext) = pkt.ext_as_mut::<NetFenceExt>() {
            let outcome = bl.update_feedback(now, flow, src_as, &mut ext.header.presented);
            if outcome == netfence_core::bottleneck::StampOutcome::StampedDecr {
                self.stats.stamped_decr += 1;
            }
        }
    }

    fn on_link_drop(&mut self, now: Nanos, link: LinkRef, pkt: &Packet) {
        let now = self.local_now(now);
        let Some(bl) = self.bottleneck_mut(link.index) else { return };
        if pkt.channel == ChannelClass::Regular {
            bl.record_regular(pkt.size, true);
            bl.note_congestion(now);
        }
    }

    fn on_control(&mut self, now: Nanos, msg: Box<dyn std::any::Any>, _ctl: &mut ControlPlane) {
        let Some(ann) = msg.downcast_ref::<KeyAnnouncement>() else { return };
        self.keys.insert(now, ann.asn);
        let key = self.key_agent.shared_key(ann.asn, ann.public_value);
        if let Some(access) = self.access.as_mut() {
            access.install_as_key(AsId(ann.asn), key);
        }
        for (_, bl) in self.bottlenecks.iter_mut() {
            bl.install_as_key(AsId(ann.asn), key);
        }
    }

    fn tick(&mut self, now: Nanos, ctl: &mut ControlPlane) {
        // Protocol machinery ticks on the local clock; key TTLs and the
        // announcer cadence below stay on engine time.
        let lnow = self.local_now(now);
        if let Some(access) = self.access.as_mut() {
            access.tick(lnow);
        }
        for (_, bl) in self.bottlenecks.iter_mut() {
            bl.tick(lnow);
        }
        // Uninstall keys whose TTL lapsed without a refresh landing: the
        // peer's traffic reverts to unverifiable (no L↓ can be stamped for
        // it) until a fresh announcement arrives.
        for asn in self.keys.purge(now) {
            if let Some(access) = self.access.as_mut() {
                access.remove_as_key(AsId(asn));
            }
            for (_, bl) in self.bottlenecks.iter_mut() {
                bl.remove_as_key(AsId(asn));
            }
        }
        // The designated announcer re-posts its AS's public value over the
        // control plane; under latency, loss or an outage the refresh may
        // land late (or never), which is exactly what the TTL punishes.
        if let Some(a) = self.announcer.as_mut() {
            if now >= a.last + a.interval {
                a.last = now;
                let ann = KeyAnnouncement { asn: a.asn, public_value: a.public_value };
                for &peer in &a.peers {
                    ctl.to_router(peer, ann);
                }
            }
        }
    }

    fn on_fault(&mut self, now: Nanos, fault: RouterFault, ctl: &mut ControlPlane) {
        match fault {
            RouterFault::Reboot => {
                // Wipe every piece of volatile defense state — AIMD
                // limiters, pairwise AS keys, bottleneck monitoring cycles,
                // per-AS policers — by rebuilding from the deploy template.
                // The rebooted router comes up with a *rotated* time-varying
                // secret (a real reboot loses `Ka`), so feedback stamped
                // before the fault stops validating until re-stamped.
                self.template.generation += 1;
                self.access = self.template.build_access();
                self.bottlenecks = self.template.build_bottlenecks();
                self.as_policers = self.template.build_policers();
                let carried = self.keys.stats;
                self.keys = PolicyStore::new(self.template.key_ttl, 0);
                self.keys.stats = carried;
                self.clock_offset = 0;
                // Re-bootstrap over the control plane: the designated
                // announcer re-posts its AS's public value immediately;
                // everyone else re-learns peers on the announcers' refresh
                // cadence (≤ ttl/2 away — or never, if keys are permanent
                // and no announcers exist).
                if let Some(a) = self.announcer.as_mut() {
                    a.last = now;
                    let ann = KeyAnnouncement { asn: a.asn, public_value: a.public_value };
                    for &peer in &a.peers {
                        ctl.to_router(peer, ann);
                    }
                }
            }
            RouterFault::KeyDesync => {
                // Rotate only the time-varying secret: held feedback goes
                // stale and surfaces as typed invalid-mac demotions until
                // freshly stamped feedback circulates back (§4.4).
                self.template.generation += 1;
                if let Some(access) = self.access.as_mut() {
                    access.rotate_secret(self.template.root_for_generation());
                }
            }
            RouterFault::ClockSkew { offset_ns } => {
                self.clock_offset = offset_ns;
            }
            RouterFault::MemoryPressure { evict } => {
                // A forced eviction burst: tear the evicted peers' keys out
                // of the access-router and bottleneck key tables, exactly
                // as a TTL lapse would.
                for asn in self.keys.evict_oldest(evict) {
                    if let Some(access) = self.access.as_mut() {
                        access.remove_as_key(AsId(asn));
                    }
                    for (_, bl) in self.bottlenecks.iter_mut() {
                        bl.remove_as_key(AsId(asn));
                    }
                }
            }
        }
    }

    fn probe(&self, now: Nanos, out: &mut Timeline) {
        // The limiter table is a HashMap: aggregate through a BTreeMap so
        // the emitted rows are deterministically ordered (telemetry must
        // never observe iteration order).
        if let Some(access) = &self.access {
            let mut rates: BTreeMap<(u32, u32), u64> = BTreeMap::new();
            // lint:allow(nondeterministic-iteration): aggregated through the BTreeMap above — rows emit in sorted key order
            for (key, lim) in access.limiters() {
                rates.insert((key.src.0, key.link.0), lim.rate());
            }
            for ((src, link), rate) in rates {
                out.record(now, "aimd_rate_bps", format!("src:{src}/link:{link}"), rate as f64);
            }
        }
        out.record(now, "key_store_peers", "netfence".to_string(), self.keys.len() as f64);
        for (_, bl) in self.bottlenecks.iter() {
            out.record(
                now,
                "bottleneck_in_mon",
                format!("link:{}", bl.link().0),
                if bl.in_mon() { 1.0 } else { 0.0 },
            );
        }
    }

    fn report(&self, out: &mut DefenseReport) {
        out.request_drops += self.stats.request_drops;
        out.regular_drops += self.stats.regular_drops;
        out.as_policer_drops += self.stats.as_policer_drops;
        out.stamped_decr += self.stats.stamped_decr;
        out.rules_installed += self.keys.stats.installed;
        out.rules_refreshed += self.keys.stats.refreshed;
        out.rules_expired += self.keys.stats.expired;
        out.rules_rejected += self.keys.stats.rejected;
        if let Some(access) = &self.access {
            out.rate_limiters += access.limiter_count();
            out.invalid_feedback += access.stats().invalid_feedback;
        }
        for (_, bl) in self.bottlenecks.iter() {
            if bl.in_mon() {
                out.links_in_mon.push(bl.link().0);
            }
        }
    }
}

fn channel_of(c: Channel) -> ChannelClass {
    match c {
        Channel::Regular => ChannelClass::Regular,
        Channel::Request => ChannelClass::Request,
        Channel::Legacy => ChannelClass::Legacy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::prelude::*;

    const USER: u32 = 0x0a_00_00_01;
    const ATTACKER: u32 = 0x0a_00_00_02;
    const VICTIM: u32 = 0x0b_00_00_01;
    const COLLUDER: u32 = 0x0b_00_00_02;

    /// Two source hosts in AS 1, two destination hosts in AS 3, a 2 Mbps
    /// bottleneck between the transit routers of AS 1 and AS 2.
    fn small_net(bottleneck: u64) -> (Network, LinkAddr) {
        let mut b = Network::builder();
        let ra = b.router(1, true);
        let rb = b.router(2, false);
        let rc = b.router(3, true);
        let (fwd, _) = b.duplex(ra, rb, bottleneck, 10 * MILLI, QueueKind::Red);
        b.duplex(rb, rc, bottleneck * 10, 10 * MILLI, QueueKind::Red);
        b.host(USER, 1, ra, 100_000_000, MILLI);
        b.host(ATTACKER, 1, ra, 100_000_000, MILLI);
        b.host(VICTIM, 3, rc, 100_000_000, MILLI);
        b.host(COLLUDER, 3, rc, 100_000_000, MILLI);
        let net = b.build();
        let addr = net.links[fwd].addr;
        (net, addr)
    }

    fn deploy_full(net: &Network, defense: &NetFenceDefense) -> Deployment {
        defense.deploy(net, &DeploymentSpec::full())
    }

    #[test]
    fn no_attack_means_no_monitoring_and_no_limiters() {
        let (net, bottleneck) = small_net(5_000_000);
        let defense = NetFenceDefense::new(Config::short_timers());
        let deployment = deploy_full(&net, &defense);
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 10 * SEC, ..Default::default() });
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        sim.run();
        let p = sim.progress(user);
        assert!(p.completions.len() > 20, "completed {}", p.completions.len());
        assert_eq!(p.failed_transfers, 0);
        // Idle state: no monitoring cycle ever starts and no limiter exists.
        let report = sim.report();
        assert!(!report.link_in_mon(bottleneck));
        assert_eq!(report.rate_limiters, 0);
        assert!(sim.metrics.link_drop_pkts(bottleneck) < 10);
    }

    #[test]
    fn colluding_flood_is_brought_to_fair_share() {
        // One legitimate TCP user and one attacker→colluder UDP flood share
        // a 1 Mbps bottleneck. Without NetFence the attacker starves TCP
        // (cf. engine tests); with NetFence both converge to roughly half.
        let (net, bottleneck) = small_net(1_000_000);
        let defense = NetFenceDefense::new(Config::short_timers());
        let deployment = deploy_full(&net, &defense);
        let mut sim = Simulator::new(
            net,
            deployment,
            SimConfig { end_time: 120 * SEC, ..Default::default() },
        );
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 1_000_000)));
        sim.run();
        let user_bps = sim.progress(user).goodput_bps(0, 120 * SEC);
        let attacker_bps = sim.progress(attacker).goodput_bps(0, 120 * SEC);
        let ratio = user_bps / attacker_bps.max(1.0);
        assert!(
            ratio > 0.5,
            "user should get a comparable share: user {user_bps:.0} bps vs attacker {attacker_bps:.0} bps"
        );
        assert!(
            attacker_bps < 900_000.0,
            "attacker must not keep the whole bottleneck ({attacker_bps:.0} bps)"
        );
        // The bottleneck entered a monitoring cycle (it stamped L↓, which
        // only happens in mon — whether it is *still* in mon at the final
        // instant depends on the cycle phase) and installed per-(sender,
        // bottleneck) rate limiters.
        let report = sim.report();
        assert!(report.stamped_decr > 0, "no L↓ ever stamped");
        assert!(report.rate_limiters >= 2, "limiters: {}", report.rate_limiters);
        assert!(sim.metrics.link_drop_pkts(bottleneck) > 0);
        // Every drop in the run is attributed to a typed cause.
        assert_eq!(
            sim.metrics.drops.total().total(),
            sim.metrics.total_drop_pkts(),
            "typed drop budget must account for every drop"
        );
    }

    #[test]
    fn victim_suppressing_feedback_starves_attacker_regular_traffic() {
        let (net, _) = small_net(1_000_000);
        let mut defense = NetFenceDefense::new(Config::short_timers());
        // The victim classifies ATTACKER as unwanted and never returns
        // feedback; the attacker's request packets are also sent at the
        // lowest priority.
        defense.suppress_sender(VICTIM, ATTACKER);
        let deployment = deploy_full(&net, &defense);
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 30 * SEC, ..Default::default() });
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 100 * MILLI },
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, VICTIM, 1_000_000)));
        sim.run();
        let attacker_goodput = sim.progress(attacker).goodput_bps(0, 30 * SEC);
        // All the attacker can deliver is strictly rate-limited request
        // traffic: a tiny fraction of its 1 Mbps offered load.
        assert!(
            attacker_goodput < 150_000.0,
            "unwanted traffic must be suppressed, got {attacker_goodput:.0} bps"
        );
        // The legitimate user is essentially unaffected.
        let p = sim.progress(user);
        assert!(p.completions.len() > 20);
        assert!(p.avg_transfer_secs().unwrap() < 3.0);
    }

    #[test]
    fn ttl_keys_stay_refreshed_over_a_healthy_control_plane() {
        // With a key TTL, designated announcers re-post every ttl/2 over
        // the (ideal) control plane: keys are continually refreshed, none
        // lapse, and the defense still polices the flood.
        let (net, _) = small_net(1_000_000);
        let mut defense = NetFenceDefense::new(Config::short_timers());
        defense.key_ttl(2 * SEC);
        let deployment = deploy_full(&net, &defense);
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 60 * SEC, ..Default::default() });
        let user = sim.add_flow(0, |id| {
            Box::new(TcpFlow::new(
                id,
                USER,
                VICTIM,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(1),
            ))
        });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 1_000_000)));
        sim.run();
        let report = sim.report();
        assert!(report.rules_installed >= 3, "installed: {}", report.rules_installed);
        assert!(report.rules_refreshed > 50, "refreshed: {}", report.rules_refreshed);
        assert_eq!(report.rules_expired, 0, "no key may lapse on an ideal channel");
        assert!(report.stamped_decr > 0, "refreshed keys must keep L↓ stamping alive");
        let user_bps = sim.progress(user).goodput_bps(0, 60 * SEC);
        let attacker_bps = sim.progress(attacker).goodput_bps(0, 60 * SEC);
        assert!(
            user_bps / attacker_bps.max(1.0) > 0.5,
            "user {user_bps:.0} bps vs attacker {attacker_bps:.0} bps"
        );
    }

    #[test]
    fn legacy_source_as_is_demoted_at_deployed_bottleneck() {
        // AS 1 (user + attacker) does NOT deploy; the transit and victim
        // ASes do. The legacy flood is demoted to the legacy channel at the
        // deployed bottleneck, so a deploying AS's traffic would win — and
        // the legacy AS's own sender sees no policing at all.
        let (net, _) = small_net(1_000_000);
        let defense = NetFenceDefense::new(Config::short_timers());
        let deployment = defense.deploy(&net, &DeploymentSpec::explicit(vec![2, 3]));
        let report_before = deployment.report();
        assert_eq!(report_before.deployed_ases, 2);
        // No shims on AS-1 hosts, no agent on AS-1's access router.
        assert_eq!(report_before.host_shims, 2, "only the AS-3 hosts get shims");
        assert_eq!(report_before.router_agents, 2);
        let mut sim =
            Simulator::new(net, deployment, SimConfig { end_time: 20 * SEC, ..Default::default() });
        let attacker =
            sim.add_flow(0, |id| Box::new(UdpFlow::cbr(id, ATTACKER, COLLUDER, 2_000_000)));
        sim.run();
        // Legacy traffic still flows (nothing polices it on an idle link) —
        // bounded by the bottleneck, not dropped by a defense.
        let delivered = sim.progress(attacker).goodput_bps(0, 20 * SEC);
        assert!(delivered > 500_000.0, "legacy traffic should pass when uncontested: {delivered}");
        assert_eq!(sim.report().rate_limiters, 0);
    }
}
