//! # netfence-faults
//!
//! A declarative, deterministic data-plane chaos engine for the NetFence
//! simulator.
//!
//! A [`FaultPlan`] is a list of timed [`FaultWindow`]s — link failures,
//! router reboots, secret-key desyncs, clock skew, policy-store memory
//! pressure — described against *roles* in the topology ([`FaultTarget`]),
//! not raw indices. [`FaultPlan::compile`] resolves the plan against a
//! concrete [`Network`] into [`FaultAction`]s ready to be handed to
//! [`Simulator::schedule_fault`], plus per-window metadata the experiment
//! harness folds into recovery metrics.
//!
//! ## Determinism
//!
//! Compilation is a pure function of `(plan, network, seed)`. Randomized
//! targets draw from a dedicated RNG substream (the seed is domain-separated
//! with [`FAULT_STREAM`]), so a fault plan can never perturb flow or
//! adversary randomness — and an **empty plan compiles to zero events**,
//! which schedules nothing and leaves the engine's event sequence
//! byte-for-byte identical to a run without fault machinery at all.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

use netfence_sim::deploy::RouterFault;
use netfence_sim::engine::{FaultAction, Simulator};
use netfence_sim::packet::HostAddr;
use netfence_sim::rng::SimRng;
use netfence_sim::time::Nanos;
use netfence_sim::topology::{Network, NodeId};

/// Domain separator mixed into the scenario seed for randomized fault
/// targets, so fault placement draws from its own stream and can never
/// perturb flow or adversary randomness (mirrors the adversary crate's
/// stream-separation idiom).
pub const FAULT_STREAM: u64 = 0xFA07_5EED_0000_0001;

/// What kind of fault a window injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Both directions of an inter-router link go down at `start` and are
    /// restored at `end`; routes are recomputed over the surviving graph
    /// at each instant.
    LinkFailure,
    /// The targeted router reboots at `start`: all volatile defense state
    /// (rate limiters, AS keys, filters, capability checks) is wiped and
    /// the router re-bootstraps through the control plane.
    RouterReboot,
    /// The targeted access router's time-varying secret rotates at
    /// `start`: held feedback stamps go stale and surface as typed
    /// `invalid-mac` demotions until freshly stamped feedback circulates.
    KeyDesync,
    /// The targeted router's protocol clock runs `offset_ns` ahead (+) or
    /// behind (−) engine time from `start` until `end`, stressing the
    /// feedback timestamp-expiration window (§4.4).
    ClockSkew {
        /// Signed skew in nanoseconds.
        offset_ns: i64,
    },
    /// A forced eviction burst at `start`: the targeted router's policy
    /// store evicts its `evict` earliest-expiry rules before their TTL.
    MemoryPressure {
        /// How many rules to evict.
        evict: usize,
    },
}

impl FaultKind {
    /// Short stable label (used for telemetry keys and recovery metrics).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LinkFailure => "link-failure",
            FaultKind::RouterReboot => "reboot",
            FaultKind::KeyDesync => "key-desync",
            FaultKind::ClockSkew { .. } => "clock-skew",
            FaultKind::MemoryPressure { .. } => "memory-pressure",
        }
    }
}

/// What a fault window targets, by topological role. Resolved against the
/// concrete [`Network`] at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The access router of the given host (router faults only).
    AccessRouterOf(HostAddr),
    /// The `n`-th router in node order (router faults only).
    NthRouter(usize),
    /// The `n`-th inter-router duplex link pair, in first-appearance order
    /// (link failures only). Both directions fail together.
    NthInterRouterLink(usize),
    /// A seeded-random pick among the valid targets for the window's kind
    /// (drawn from the dedicated fault RNG substream).
    Random,
}

/// One timed fault: a kind, a target and a `[start, end]` window. For
/// one-shot kinds (reboot, key desync, memory pressure) the end is only
/// metadata — the recovery clock starts at `start`; for link failures and
/// clock skew the end also schedules the restoring action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// What happens.
    pub kind: FaultKind,
    /// To whom.
    pub target: FaultTarget,
    /// When the fault hits.
    pub start: Nanos,
    /// When the fault clears (`== start` for one-shot kinds).
    pub end: Nanos,
}

/// A declarative fault plan: an ordered list of [`FaultWindow`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The empty plan: compiles to zero events, reproducing a fault-free
    /// run byte-for-byte.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// The declared windows, in order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Append an arbitrary window.
    pub fn push(&mut self, window: FaultWindow) -> &mut Self {
        self.windows.push(window);
        self
    }

    /// Fail `target` (both directions) from `start` until `end`.
    pub fn link_failure(&mut self, target: FaultTarget, start: Nanos, end: Nanos) -> &mut Self {
        self.push(FaultWindow { kind: FaultKind::LinkFailure, target, start, end })
    }

    /// Reboot `target` at `at`.
    pub fn router_reboot(&mut self, target: FaultTarget, at: Nanos) -> &mut Self {
        self.push(FaultWindow { kind: FaultKind::RouterReboot, target, start: at, end: at })
    }

    /// Rotate `target`'s time-varying secret at `at`.
    pub fn key_desync(&mut self, target: FaultTarget, at: Nanos) -> &mut Self {
        self.push(FaultWindow { kind: FaultKind::KeyDesync, target, start: at, end: at })
    }

    /// Skew `target`'s protocol clock by `offset_ns` from `start` to `end`.
    pub fn clock_skew(
        &mut self,
        target: FaultTarget,
        offset_ns: i64,
        start: Nanos,
        end: Nanos,
    ) -> &mut Self {
        self.push(FaultWindow { kind: FaultKind::ClockSkew { offset_ns }, target, start, end })
    }

    /// Force `target` to evict `evict` policy rules at `at`.
    pub fn memory_pressure(&mut self, target: FaultTarget, evict: usize, at: Nanos) -> &mut Self {
        self.push(FaultWindow {
            kind: FaultKind::MemoryPressure { evict },
            target,
            start: at,
            end: at,
        })
    }

    /// Resolve the plan against a concrete network into schedulable engine
    /// events plus per-window recovery metadata. Pure in
    /// `(self, net, seed)`; randomized targets draw from the
    /// [`FAULT_STREAM`]-separated substream of `seed` in declaration order.
    pub fn compile(&self, net: &Network, seed: u64) -> Result<CompiledFaults, FaultError> {
        let routers: Vec<NodeId> = net
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.host_addr().is_none())
            .map(|(i, _)| NodeId(i))
            .collect();
        // Inter-router duplex pairs in first-appearance order. A simplex
        // inter-router link (no reverse) forms a singleton "pair".
        let mut pairs: Vec<(usize, Option<usize>)> = Vec::new();
        for (li, l) in net.links.iter().enumerate() {
            if net.nodes[l.from.0].host_addr().is_some() || net.nodes[l.to.0].host_addr().is_some()
            {
                continue;
            }
            let mate = pairs.iter_mut().find(|(fi, rev)| {
                rev.is_none() && net.links[*fi].from == l.to && net.links[*fi].to == l.from
            });
            match mate {
                Some((_, rev)) => *rev = Some(li),
                None => pairs.push((li, None)),
            }
        }

        let mut rng = SimRng::new(seed ^ FAULT_STREAM);
        let mut events = Vec::new();
        let mut windows = Vec::new();
        for w in &self.windows {
            if w.end < w.start {
                return Err(FaultError::EmptyWindow { start: w.start, end: w.end });
            }
            match w.kind {
                FaultKind::LinkFailure => {
                    let pair_idx = match w.target {
                        FaultTarget::NthInterRouterLink(n) => {
                            if n >= pairs.len() {
                                return Err(FaultError::NoSuchLinkPair(n));
                            }
                            n
                        }
                        FaultTarget::Random => {
                            if pairs.is_empty() {
                                return Err(FaultError::NoInterRouterLinks);
                            }
                            rng.uniform_u64(0, pairs.len() as u64) as usize
                        }
                        other => return Err(FaultError::TargetMismatch(other, w.kind)),
                    };
                    if w.end == w.start {
                        return Err(FaultError::EmptyWindow { start: w.start, end: w.end });
                    }
                    let (fwd, rev) = pairs[pair_idx];
                    events.push(FaultEvent {
                        at: w.start,
                        action: FaultAction::LinkDown { link: fwd },
                    });
                    events
                        .push(FaultEvent { at: w.end, action: FaultAction::LinkUp { link: fwd } });
                    if let Some(rev) = rev {
                        events.push(FaultEvent {
                            at: w.start,
                            action: FaultAction::LinkDown { link: rev },
                        });
                        events.push(FaultEvent {
                            at: w.end,
                            action: FaultAction::LinkUp { link: rev },
                        });
                    }
                    windows.push(PlannedWindow { kind: w.kind, start: w.start, clear_at: w.end });
                }
                kind => {
                    let node = match w.target {
                        FaultTarget::AccessRouterOf(host) => {
                            net.access_router_of(host).ok_or(FaultError::NoAccessRouter(host))?
                        }
                        FaultTarget::NthRouter(n) => {
                            *routers.get(n).ok_or(FaultError::NoSuchRouter(n))?
                        }
                        FaultTarget::Random => {
                            if routers.is_empty() {
                                return Err(FaultError::NoRouters);
                            }
                            routers[rng.uniform_u64(0, routers.len() as u64) as usize]
                        }
                        other => return Err(FaultError::TargetMismatch(other, w.kind)),
                    };
                    let (hit, clear_at) = match kind {
                        FaultKind::RouterReboot => (RouterFault::Reboot, w.start),
                        FaultKind::KeyDesync => (RouterFault::KeyDesync, w.start),
                        FaultKind::ClockSkew { offset_ns } => {
                            (RouterFault::ClockSkew { offset_ns }, w.end)
                        }
                        FaultKind::MemoryPressure { evict } => {
                            (RouterFault::MemoryPressure { evict }, w.start)
                        }
                        FaultKind::LinkFailure => unreachable!("handled above"),
                    };
                    events.push(FaultEvent {
                        at: w.start,
                        action: FaultAction::Router { node, fault: hit },
                    });
                    if matches!(kind, FaultKind::ClockSkew { .. }) && w.end > w.start {
                        events.push(FaultEvent {
                            at: w.end,
                            action: FaultAction::Router {
                                node,
                                fault: RouterFault::ClockSkew { offset_ns: 0 },
                            },
                        });
                    }
                    windows.push(PlannedWindow { kind: w.kind, start: w.start, clear_at });
                }
            }
        }
        Ok(CompiledFaults { events, windows })
    }
}

/// One schedulable engine fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Injection instant.
    pub at: Nanos,
    /// The engine action.
    pub action: FaultAction,
}

/// Per-window metadata for recovery metrics: when the fault hit and when
/// it cleared (for one-shot faults, the same instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedWindow {
    /// What was injected.
    pub kind: FaultKind,
    /// When it hit.
    pub start: Nanos,
    /// When it cleared — the instant the recovery clock starts.
    pub clear_at: Nanos,
}

/// The result of compiling a plan against a network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledFaults {
    /// Schedulable engine faults, in declaration order.
    pub events: Vec<FaultEvent>,
    /// One entry per plan window, in declaration order.
    pub windows: Vec<PlannedWindow>,
}

impl CompiledFaults {
    /// Hand every compiled event to the simulator. An empty compilation
    /// schedules nothing at all.
    pub fn schedule(&self, sim: &mut Simulator) {
        for e in &self.events {
            sim.schedule_fault(e.at, e.action);
        }
    }
}

/// Why a plan failed to compile against a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// The named host has no access router in this network.
    NoAccessRouter(HostAddr),
    /// Fewer routers than the requested index.
    NoSuchRouter(usize),
    /// Fewer inter-router link pairs than the requested index.
    NoSuchLinkPair(usize),
    /// A random router target with no routers at all.
    NoRouters,
    /// A random link target with no inter-router links at all.
    NoInterRouterLinks,
    /// `end < start`, or a zero-length link-failure window.
    EmptyWindow {
        /// Window start.
        start: Nanos,
        /// Window end.
        end: Nanos,
    },
    /// The target role does not fit the fault kind (e.g. a link target
    /// for a router reboot).
    TargetMismatch(FaultTarget, FaultKind),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::NoAccessRouter(h) => write!(f, "host {h:#x} has no access router"),
            FaultError::NoSuchRouter(n) => write!(f, "no router with index {n}"),
            FaultError::NoSuchLinkPair(n) => write!(f, "no inter-router link pair with index {n}"),
            FaultError::NoRouters => write!(f, "network has no routers"),
            FaultError::NoInterRouterLinks => write!(f, "network has no inter-router links"),
            FaultError::EmptyWindow { start, end } => {
                write!(f, "invalid fault window [{start}, {end}]")
            }
            FaultError::TargetMismatch(target, kind) => {
                write!(f, "target {target:?} does not fit fault kind {:?}", kind.label())
            }
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::time::{MILLI, SEC};
    use netfence_sim::topology::QueueKind;

    const HOST_A: u32 = 0x0a_00_00_01;
    const HOST_B: u32 = 0x0b_00_00_01;

    /// host A — r1 — r2 — host B, plus a detour r1 — r3 — r2.
    fn net() -> Network {
        let mut b = Network::builder();
        let r1 = b.router(1, true);
        let r2 = b.router(2, false);
        let r3 = b.router(3, false);
        b.duplex(r1, r2, 1_000_000, 10 * MILLI, QueueKind::Red);
        b.duplex(r1, r3, 1_000_000, 10 * MILLI, QueueKind::Red);
        b.duplex(r3, r2, 1_000_000, 10 * MILLI, QueueKind::Red);
        b.host(HOST_A, 1, r1, 100_000_000, MILLI);
        b.host(HOST_B, 2, r2, 100_000_000, MILLI);
        b.build()
    }

    #[test]
    fn empty_plan_compiles_to_no_events() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        let compiled = plan.compile(&net(), 7).unwrap();
        assert!(compiled.events.is_empty());
        assert!(compiled.windows.is_empty());
    }

    #[test]
    fn link_failure_fails_both_directions_and_restores() {
        let mut plan = FaultPlan::empty();
        plan.link_failure(FaultTarget::NthInterRouterLink(0), SEC, 2 * SEC);
        let compiled = plan.compile(&net(), 7).unwrap();
        assert_eq!(compiled.events.len(), 4, "down+up for both directions");
        let downs: Vec<_> = compiled
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::LinkDown { .. }))
            .collect();
        let ups: Vec<_> = compiled
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::LinkUp { .. }))
            .collect();
        assert_eq!(downs.len(), 2);
        assert_eq!(ups.len(), 2);
        assert!(downs.iter().all(|e| e.at == SEC));
        assert!(ups.iter().all(|e| e.at == 2 * SEC));
        assert_eq!(compiled.windows.len(), 1);
        assert_eq!(compiled.windows[0].clear_at, 2 * SEC);
    }

    #[test]
    fn access_router_target_resolves_and_clock_skew_clears() {
        let network = net();
        let r1 = network.access_router_of(HOST_A).unwrap();
        let mut plan = FaultPlan::empty();
        plan.clock_skew(FaultTarget::AccessRouterOf(HOST_A), 50 * MILLI as i64, SEC, 3 * SEC);
        let compiled = plan.compile(&network, 7).unwrap();
        assert_eq!(compiled.events.len(), 2);
        assert_eq!(
            compiled.events[0].action,
            FaultAction::Router {
                node: r1,
                fault: RouterFault::ClockSkew { offset_ns: 50 * MILLI as i64 }
            }
        );
        assert_eq!(
            compiled.events[1].action,
            FaultAction::Router { node: r1, fault: RouterFault::ClockSkew { offset_ns: 0 } }
        );
        assert_eq!(compiled.windows[0].clear_at, 3 * SEC);
    }

    #[test]
    fn one_shot_kinds_clear_at_their_start() {
        let mut plan = FaultPlan::empty();
        plan.router_reboot(FaultTarget::NthRouter(1), SEC)
            .key_desync(FaultTarget::NthRouter(0), 2 * SEC)
            .memory_pressure(FaultTarget::NthRouter(0), 3, 3 * SEC);
        let compiled = plan.compile(&net(), 7).unwrap();
        assert_eq!(compiled.events.len(), 3);
        assert!(compiled.windows.iter().all(|w| w.clear_at == w.start));
        assert_eq!(compiled.windows[0].kind.label(), "reboot");
    }

    #[test]
    fn random_targets_are_deterministic_in_the_seed() {
        let mut plan = FaultPlan::empty();
        plan.router_reboot(FaultTarget::Random, SEC);
        plan.link_failure(FaultTarget::Random, SEC, 2 * SEC);
        let network = net();
        let a = plan.compile(&network, 7).unwrap();
        let b = plan.compile(&network, 7).unwrap();
        assert_eq!(a, b);
        // A different seed draws from a different stream (with 3 routers
        // and 3 pairs this may still collide; assert only determinism and
        // that the draw is in range — the engine validates indices).
        let c = plan.compile(&network, 8).unwrap();
        assert_eq!(c.events.len(), a.events.len());
    }

    #[test]
    fn mismatched_targets_and_bad_windows_are_rejected() {
        let network = net();
        let mut plan = FaultPlan::empty();
        plan.router_reboot(FaultTarget::NthInterRouterLink(0), SEC);
        assert!(matches!(
            plan.compile(&network, 7),
            Err(FaultError::TargetMismatch(_, FaultKind::RouterReboot))
        ));
        let mut plan = FaultPlan::empty();
        plan.link_failure(FaultTarget::NthRouter(0), SEC, 2 * SEC);
        assert!(matches!(plan.compile(&network, 7), Err(FaultError::TargetMismatch(..))));
        let mut plan = FaultPlan::empty();
        plan.link_failure(FaultTarget::NthInterRouterLink(0), SEC, SEC);
        assert!(matches!(plan.compile(&network, 7), Err(FaultError::EmptyWindow { .. })));
        let mut plan = FaultPlan::empty();
        plan.router_reboot(FaultTarget::NthRouter(99), SEC);
        assert!(matches!(plan.compile(&network, 7), Err(FaultError::NoSuchRouter(99))));
        let mut plan = FaultPlan::empty();
        plan.key_desync(FaultTarget::AccessRouterOf(0xdead_beef), SEC);
        assert!(matches!(plan.compile(&network, 7), Err(FaultError::NoAccessRouter(_))));
    }

    #[test]
    fn compiled_events_schedule_onto_a_simulator() {
        let mut plan = FaultPlan::empty();
        plan.link_failure(FaultTarget::NthInterRouterLink(0), SEC, 2 * SEC);
        let network = net();
        let compiled = plan.compile(&network, 7).unwrap();
        let mut sim = Simulator::undefended(
            network,
            netfence_sim::engine::SimConfig { end_time: 3 * SEC, ..Default::default() },
        );
        compiled.schedule(&mut sim);
        sim.run();
        // After the run every failed link came back up.
        for e in &compiled.events {
            if let FaultAction::LinkDown { link } | FaultAction::LinkUp { link } = e.action {
                assert!(!sim.link_is_down(link));
            }
        }
    }
}
