//! # netfence-telemetry
//!
//! Pure-observer instrumentation for the NetFence reproduction: typed drop
//! causes, ring-buffered time series, a hash-sampled packet flight recorder
//! and engine profiling counters.
//!
//! The crate is a leaf — it depends on nothing and is depended on by the
//! simulator, the defense systems, the control plane and the experiment
//! layer. Everything in it obeys one **determinism contract**:
//!
//! * The *always-on* parts — [`DropLedger`]/[`DropBudget`] and
//!   [`EngineProfile`] — are plain deterministic counters. They are cheap
//!   enough to maintain unconditionally, so they may surface in
//!   `DefenseReport`/`Record` without threatening the byte-identity
//!   property tests.
//! * The *gated* parts — [`Timeline`] and [`FlightRecorder`], switched by
//!   [`TelemetryConfig`] (default: fully disabled) — are observers only.
//!   They never feed back into simulation state, never consume RNG draws
//!   (the flight recorder samples on a hash of the engine-assigned packet
//!   id), and never appear in a `Record`. Enabling them must leave every
//!   `Record` byte-identical; `tests/telemetry.rs` pins this for every
//!   defense system.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod drop;
pub mod profile;
pub mod timeline;
pub mod trace;

pub use config::TelemetryConfig;
pub use drop::{DropBudget, DropCause, DropLedger};
pub use profile::EngineProfile;
pub use timeline::{Timeline, TimelineRow};
pub use trace::{FlightRecorder, HopEvent, HopStage};

/// Simulated nanoseconds — the same representation as
/// `netfence_sim::time::Nanos` (both are plain `u64` aliases, so they
/// unify without a dependency edge).
pub type Nanos = u64;

/// Escape a string for embedding inside a JSON string literal. The keys
/// and series names the crate emits are ASCII identifiers, but the escape
/// is complete for the JSON control set so hand-rolled export stays valid
/// without a serde dependency.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_the_control_set() {
        assert_eq!(json_escape("plain-key"), "plain-key");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
    }
}
