//! Typed drop causes and the ledgers that count them.
//!
//! The simulator used to fold every non-queue drop into a single
//! `defense_drop_pkts` counter, which made "why did this defense lose
//! packets" unanswerable. [`DropCause`] names every drop point in the
//! data plane; [`DropBudget`] is a dense per-cause histogram and
//! [`DropLedger`] keeps one budget per link plus per-flow attribution so
//! the experiment layer can fold drops by role.

use std::collections::HashMap;

/// Why a packet was dropped. One variant per drop point in the simulator
/// and the defense systems; the set is closed so budgets can be dense
/// arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Regular-channel queue overflow at a link.
    QueueOverflow,
    /// Request-channel queue overflow — the per-priority request quota of
    /// NetFence §4.3 (or any request-class tail drop).
    RequestQuota,
    /// Legacy-channel eviction: traffic demoted below the protected
    /// channels lost the bandwidth competition at a link queue.
    LegacyDemotion,
    /// Unverifiable congestion feedback (bad or replayed MAC): the packet
    /// was demoted to the request channel and the request limiter refused
    /// it.
    InvalidMac,
    /// The access router's per-priority request-channel policer refused
    /// the packet.
    RequestRateLimit,
    /// The access router's per-(sender, bottleneck) AIMD rate limiter
    /// refused the packet.
    RegularRateLimit,
    /// A NetFence bottleneck's per-source-AS policer (partial-deployment
    /// fairness, §5.3) refused the packet.
    AsPolicer,
    /// A StopIt filter at the source's access router matched the packet.
    StopItFilter,
    /// TVA+ dropped a regular packet without a valid (unexpired)
    /// capability.
    TvaNoCapability,
    /// The packet reached a host other than its destination.
    Misrouted,
    /// No route: the forwarding node had no next hop for the destination.
    NoRoute,
    /// The packet's link went down underneath it: it was queued on (or in
    /// flight across) a link at the instant a fault took the link out, or
    /// it was offered to a link that is currently down.
    LinkDown,
}

impl DropCause {
    /// Number of distinct causes (the length of [`DropCause::ALL`]).
    pub const COUNT: usize = 12;

    /// Every cause, in display order.
    pub const ALL: [DropCause; DropCause::COUNT] = [
        DropCause::QueueOverflow,
        DropCause::RequestQuota,
        DropCause::LegacyDemotion,
        DropCause::InvalidMac,
        DropCause::RequestRateLimit,
        DropCause::RegularRateLimit,
        DropCause::AsPolicer,
        DropCause::StopItFilter,
        DropCause::TvaNoCapability,
        DropCause::Misrouted,
        DropCause::NoRoute,
        DropCause::LinkDown,
    ];

    /// Dense index of this cause into a [`DropBudget`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short stable label (used by tables, JSONL and bench keys).
    pub fn label(self) -> &'static str {
        match self {
            DropCause::QueueOverflow => "queue-overflow",
            DropCause::RequestQuota => "request-quota",
            DropCause::LegacyDemotion => "legacy-demotion",
            DropCause::InvalidMac => "invalid-mac",
            DropCause::RequestRateLimit => "request-rate-limit",
            DropCause::RegularRateLimit => "regular-rate-limit",
            DropCause::AsPolicer => "as-policer",
            DropCause::StopItFilter => "stopit-filter",
            DropCause::TvaNoCapability => "tva-no-capability",
            DropCause::Misrouted => "misrouted",
            DropCause::NoRoute => "no-route",
            DropCause::LinkDown => "link-down",
        }
    }
}

/// A dense per-cause drop histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DropBudget {
    counts: [u64; DropCause::COUNT],
}

impl DropBudget {
    /// Count one drop.
    #[inline]
    pub fn add(&mut self, cause: DropCause) {
        self.counts[cause.index()] += 1;
    }

    /// Drops recorded for `cause`.
    pub fn get(&self, cause: DropCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Total drops across all causes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold another budget into this one.
    pub fn merge(&mut self, other: &DropBudget) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// `(cause, count)` pairs with a nonzero count, in display order.
    pub fn nonzero(&self) -> impl Iterator<Item = (DropCause, u64)> + '_ {
        DropCause::ALL.iter().map(|&c| (c, self.get(c))).filter(|&(_, n)| n > 0)
    }
}

/// The always-on drop ledger the engine maintains: one [`DropBudget`] per
/// link (dense, indexed by link id) plus a run total and per-flow
/// attribution.
///
/// Per-flow counts use a `HashMap` — drops are rare relative to forwards,
/// and the map is only ever *read* by keyed lookup (never iterated), so
/// its nondeterministic iteration order cannot leak into any output.
#[derive(Debug, Clone, Default)]
pub struct DropLedger {
    per_link: Vec<DropBudget>,
    per_flow: HashMap<u64, DropBudget>,
    total: DropBudget,
}

impl DropLedger {
    /// A ledger for a network with `links` links.
    pub fn new(links: usize) -> Self {
        DropLedger {
            per_link: vec![DropBudget::default(); links],
            per_flow: HashMap::new(),
            total: DropBudget::default(),
        }
    }

    /// Count one drop of flow `flow`, at link `link` if the packet died at
    /// a link queue (`None` for node-level drops).
    #[inline]
    pub fn record(&mut self, link: Option<usize>, flow: u64, cause: DropCause) {
        if let Some(idx) = link {
            if let Some(b) = self.per_link.get_mut(idx) {
                b.add(cause);
            }
        }
        self.per_flow.entry(flow).or_default().add(cause);
        self.total.add(cause);
    }

    /// The run-total budget.
    pub fn total(&self) -> &DropBudget {
        &self.total
    }

    /// The budget of link `idx` (zero budget when out of range).
    pub fn link(&self, idx: usize) -> DropBudget {
        self.per_link.get(idx).copied().unwrap_or_default()
    }

    /// The budget attributed to flow `flow`.
    pub fn flow(&self, flow: u64) -> DropBudget {
        self.per_flow.get(&flow).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_causes_have_distinct_dense_indices() {
        let mut seen = [false; DropCause::COUNT];
        for c in DropCause::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn budget_counts_and_merges() {
        let mut a = DropBudget::default();
        a.add(DropCause::QueueOverflow);
        a.add(DropCause::QueueOverflow);
        a.add(DropCause::StopItFilter);
        let mut b = DropBudget::default();
        b.add(DropCause::QueueOverflow);
        b.merge(&a);
        assert_eq!(b.get(DropCause::QueueOverflow), 3);
        assert_eq!(b.get(DropCause::StopItFilter), 1);
        assert_eq!(b.total(), 4);
        let nz: Vec<_> = b.nonzero().collect();
        assert_eq!(nz, vec![(DropCause::QueueOverflow, 3), (DropCause::StopItFilter, 1)]);
    }

    #[test]
    fn ledger_attributes_per_link_and_per_flow() {
        let mut l = DropLedger::new(2);
        l.record(Some(0), 7, DropCause::QueueOverflow);
        l.record(Some(1), 7, DropCause::LegacyDemotion);
        l.record(None, 9, DropCause::AsPolicer);
        assert_eq!(l.total().total(), 3);
        assert_eq!(l.link(0).get(DropCause::QueueOverflow), 1);
        assert_eq!(l.link(1).get(DropCause::LegacyDemotion), 1);
        assert_eq!(l.link(5).total(), 0);
        assert_eq!(l.flow(7).total(), 2);
        assert_eq!(l.flow(9).get(DropCause::AsPolicer), 1);
        assert_eq!(l.flow(1).total(), 0);
    }
}
