//! The packet flight recorder: hash-sampled per-hop packet traces.

use std::collections::VecDeque;

use crate::{DropCause, Nanos};

/// What happened to a traced packet at one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopStage {
    /// The packet entered the network at its source host.
    Inject,
    /// A router agent ruled on the packet (forward / delay / drop).
    Verdict,
    /// The packet joined a link queue.
    Enqueue,
    /// The packet left a link queue and began transmission.
    Dequeue,
    /// The packet was dropped (the event carries the cause).
    Drop,
    /// The packet reached its destination host.
    Deliver,
    /// A fault-injection mark: not a packet hop at all, but an engine
    /// fault (link down/up, router reboot, …) stamped into the trace so
    /// packet timelines can be read against the fault schedule. Fault
    /// marks carry `pkt = 0`, `flow = 0` and are recorded unconditionally
    /// whenever the recorder is enabled.
    Fault,
}

impl HopStage {
    /// Short stable label for export.
    pub fn label(self) -> &'static str {
        match self {
            HopStage::Inject => "inject",
            HopStage::Verdict => "verdict",
            HopStage::Enqueue => "enqueue",
            HopStage::Dequeue => "dequeue",
            HopStage::Drop => "drop",
            HopStage::Deliver => "deliver",
            HopStage::Fault => "fault",
        }
    }
}

/// One hop event of a traced packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopEvent {
    /// Simulated instant, nanoseconds.
    pub at: Nanos,
    /// Engine-assigned packet id.
    pub pkt: u64,
    /// Flow the packet belongs to.
    pub flow: u64,
    /// Node where the event happened.
    pub node: u32,
    /// Link involved, when the stage concerns a link queue.
    pub link: Option<u32>,
    /// What happened.
    pub stage: HopStage,
    /// Why, for [`HopStage::Drop`] events.
    pub cause: Option<DropCause>,
}

/// 64-bit finalizer (murmur3's) — decorrelates sequential packet ids so
/// sampling `hash & mask == 0` picks an unbiased `1 / 2^shift` slice.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// A bounded recorder of per-hop events for a deterministic sample of
/// packets. Sampling is a pure function of the packet id, so whether the
/// recorder is on can never perturb RNG streams or event order.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    mask: Option<u64>,
    capacity: usize,
    events: VecDeque<HopEvent>,
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder tracing a `1 / 2^shift` sample of packets, holding at
    /// most `capacity` events (oldest evicted first).
    pub fn new(shift: u32, capacity: usize) -> Self {
        FlightRecorder {
            mask: Some((1u64 << shift.min(63)) - 1),
            capacity: capacity.max(1),
            events: VecDeque::new(),
            evicted: 0,
        }
    }

    /// The no-op recorder: nothing is sampled. (Also what
    /// [`FlightRecorder::default`] builds.)
    pub fn disabled() -> Self {
        FlightRecorder::default()
    }

    /// Whether this recorder traces anything at all.
    pub fn is_enabled(&self) -> bool {
        self.mask.is_some()
    }

    /// Whether packet `pkt_id` is in the traced sample.
    #[inline]
    pub fn sampled(&self, pkt_id: u64) -> bool {
        match self.mask {
            Some(mask) => mix(pkt_id) & mask == 0,
            None => false,
        }
    }

    /// Record one hop event. The caller is expected to have checked
    /// [`FlightRecorder::sampled`]; recording an unsampled packet is
    /// allowed but wastes ring space.
    #[inline]
    pub fn record(&mut self, ev: HopEvent) {
        if self.mask.is_none() {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(ev);
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &HopEvent> {
        self.events.iter()
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Export every buffered event as one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{{\"at\":{},\"pkt\":{},\"flow\":{},\"node\":{},\"link\":{},\"stage\":\"{}\",\"cause\":{}}}\n",
                e.at,
                e.pkt,
                e.flow,
                e.node,
                e.link.map(|l| l.to_string()).unwrap_or_else(|| "null".to_string()),
                e.stage.label(),
                e.cause
                    .map(|c| format!("\"{}\"", c.label()))
                    .unwrap_or_else(|| "null".to_string()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_samples_nothing() {
        let r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        assert!((0..1000).all(|i| !r.sampled(i)));
    }

    #[test]
    fn shift_zero_samples_everything() {
        let r = FlightRecorder::new(0, 16);
        assert!((0..1000).all(|i| r.sampled(i)));
    }

    #[test]
    fn sampling_is_roughly_one_in_two_to_the_shift() {
        let r = FlightRecorder::new(4, 16);
        let hits = (0..16_000u64).filter(|&i| r.sampled(i)).count();
        // Expect ~1000; the hash is fixed so this is a deterministic bound.
        assert!((600..1400).contains(&hits), "hits: {hits}");
    }

    #[test]
    fn ring_bounds_and_jsonl_shape() {
        let mut r = FlightRecorder::new(0, 2);
        for i in 0..3u64 {
            r.record(HopEvent {
                at: i,
                pkt: i,
                flow: 1,
                node: 4,
                link: if i == 0 { None } else { Some(9) },
                stage: if i == 2 { HopStage::Drop } else { HopStage::Enqueue },
                cause: if i == 2 { Some(DropCause::QueueOverflow) } else { None },
            });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.evicted(), 1);
        let jsonl = r.to_jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"link\":9"));
        assert!(lines[1].contains("\"stage\":\"drop\""));
        assert!(lines[1].contains("\"cause\":\"queue-overflow\""));
    }
}
