//! Always-on engine profiling counters.

/// Event-loop counters the engine maintains unconditionally: how many
/// events of each kind it processed and how many packets moved through
/// each station. Dividing by wall-clock time gives events/s and simulated
/// pkts/s — the scaling baseline the sharded-engine work measures against.
///
/// The counters are deterministic (pure functions of the run), so they may
/// be surfaced in a `Record` without breaking byte-identity between
/// telemetry-enabled and telemetry-disabled runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineProfile {
    /// Total events popped from the heap.
    pub events: u64,
    /// Flow events (starts and timers).
    pub flow_events: u64,
    /// Packet arrivals at a node.
    pub arrive_events: u64,
    /// Link events (transmission completions and idle-link polls).
    pub link_events: u64,
    /// Delayed-packet releases from rate limiters.
    pub release_events: u64,
    /// Defense agent ticks.
    pub tick_events: u64,
    /// Deferred control-plane deliveries.
    pub control_events: u64,
    /// Goodput/telemetry sample events.
    pub sample_events: u64,
    /// Packets handed to a forwarding decision (host uplinks included).
    pub forwards: u64,
    /// Packets accepted into a link queue's enqueue path.
    pub enqueues: u64,
    /// Packets dequeued into transmission.
    pub dequeues: u64,
    /// Packets dropped anywhere (queues, agents, routing) — equals the
    /// drop ledger's total.
    pub drops: u64,
}

impl EngineProfile {
    /// Events per wall-clock second for a run that took `wall_secs`.
    pub fn events_per_sec(&self, wall_secs: f64) -> f64 {
        if wall_secs <= 0.0 {
            return 0.0;
        }
        self.events as f64 / wall_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_per_sec_guards_zero_wall_time() {
        let p = EngineProfile { events: 100, ..Default::default() };
        assert_eq!(p.events_per_sec(0.0), 0.0);
        assert_eq!(p.events_per_sec(2.0), 50.0);
    }
}
