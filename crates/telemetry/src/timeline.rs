//! Ring-buffered time series with JSONL export.

use std::collections::VecDeque;

use crate::{json_escape, Nanos};

/// One sampled point: a named series, a key identifying which instance of
/// the series (a link, a limiter, an AS), and a value at an instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Simulated instant of the sample.
    pub at: Nanos,
    /// Series name, e.g. `"queue_depth_pkts"` or `"aimd_rate_bps"`.
    pub series: &'static str,
    /// Instance key, e.g. `"link:3->4"` or `"src:17/link:2"`.
    pub key: String,
    /// Sampled value.
    pub value: f64,
}

/// A bounded append-only time series buffer. When full, the oldest rows
/// are evicted (and counted), so a long run keeps its most recent window
/// rather than aborting or reallocating without bound.
///
/// Probes that aggregate from hash maps must sort (e.g. through a
/// `BTreeMap`) before recording — the timeline preserves insertion order
/// and its JSONL export is expected to be deterministic.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    enabled: bool,
    capacity: usize,
    rows: VecDeque<TimelineRow>,
    evicted: u64,
}

impl Timeline {
    /// An enabled timeline holding at most `capacity` rows.
    pub fn new(capacity: usize) -> Self {
        Timeline { enabled: true, capacity: capacity.max(1), rows: VecDeque::new(), evicted: 0 }
    }

    /// The no-op timeline: recording does nothing. (Also what
    /// [`Timeline::default`] builds.)
    pub fn disabled() -> Self {
        Timeline::default()
    }

    /// Whether this timeline records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one sample. No-op when disabled.
    #[inline]
    pub fn record(&mut self, at: Nanos, series: &'static str, key: String, value: f64) {
        if !self.enabled {
            return;
        }
        if self.rows.len() == self.capacity {
            self.rows.pop_front();
            self.evicted += 1;
        }
        self.rows.push_back(TimelineRow { at, series, key, value });
    }

    /// The buffered rows, oldest first.
    pub fn rows(&self) -> impl Iterator<Item = &TimelineRow> {
        self.rows.iter()
    }

    /// Buffered row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Export every buffered row as one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let value = if r.value.is_finite() { r.value } else { 0.0 };
            out.push_str(&format!(
                "{{\"at\":{},\"series\":\"{}\",\"key\":\"{}\",\"value\":{}}}\n",
                r.at,
                json_escape(r.series),
                json_escape(&r.key),
                value,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timeline_records_nothing() {
        let mut t = Timeline::disabled();
        t.record(1, "s", "k".to_string(), 1.0);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut t = Timeline::new(2);
        for i in 0..5u64 {
            t.record(i, "s", format!("k{i}"), i as f64);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.evicted(), 3);
        let keys: Vec<_> = t.rows().map(|r| r.key.clone()).collect();
        assert_eq!(keys, vec!["k3", "k4"]);
    }

    #[test]
    fn jsonl_is_one_object_per_row() {
        let mut t = Timeline::new(8);
        t.record(5, "queue_depth_pkts", "link:0->1".to_string(), 3.0);
        t.record(6, "aimd_rate_bps", "src:2/link:9".to_string(), 12_500.5);
        let jsonl = t.to_jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"at\":5,\"series\":\"queue_depth_pkts\",\"key\":\"link:0->1\",\"value\":3}"
        );
        assert!(lines[1].contains("12500.5"));
    }
}
