//! The switch for the gated observers.

/// Configuration of the *gated* telemetry observers ([`Timeline`] and
/// [`FlightRecorder`]). The default is fully disabled, in which case both
/// observers are constructed in their no-op state and every recording
/// call is a branch on a cold flag.
///
/// [`Timeline`]: crate::Timeline
/// [`FlightRecorder`]: crate::FlightRecorder
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record time-series probes (queue depth, limiter rates, policy-store
    /// occupancy, control-session state) on the engine's sample clock.
    pub timeline: bool,
    /// Flight-recorder sampling: `None` disables packet tracing; `Some(k)`
    /// traces every packet whose hashed id falls in a `1 / 2^k` bucket
    /// (`Some(0)` traces everything). Sampling hashes the engine-assigned
    /// packet id, so it never consumes RNG draws.
    pub trace_sample_shift: Option<u32>,
    /// Ring capacity of the timeline, in rows.
    pub timeline_capacity: usize,
    /// Ring capacity of the flight recorder, in hop events.
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            timeline: false,
            trace_sample_shift: None,
            timeline_capacity: 1 << 16,
            trace_capacity: 1 << 16,
        }
    }
}

impl TelemetryConfig {
    /// Everything on: timeline plus a `1 / 2^shift` packet trace.
    pub fn full(shift: u32) -> Self {
        TelemetryConfig {
            timeline: true,
            trace_sample_shift: Some(shift),
            ..TelemetryConfig::default()
        }
    }

    /// Whether any gated observer is active.
    pub fn enabled(&self) -> bool {
        self.timeline || self.trace_sample_shift.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_disabled() {
        let cfg = TelemetryConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg.trace_sample_shift, None);
    }

    #[test]
    fn full_enables_both_observers() {
        let cfg = TelemetryConfig::full(4);
        assert!(cfg.enabled());
        assert!(cfg.timeline);
        assert_eq!(cfg.trace_sample_shift, Some(4));
    }
}
