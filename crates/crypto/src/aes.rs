//! Software AES-128 block cipher.
//!
//! NetFence assumes line-speed symmetric-key cryptography (§2.1 of the paper)
//! and uses AES-128 as the MAC primitive for congestion policing feedback
//! (§6.2). Hardware AES (AES-NI, Helion cores) is not available to this
//! reproduction, so we provide a small, portable, table-free software
//! implementation. It is correctness-oriented: the round function uses the
//! textbook S-box and GF(2^8) multiplication rather than T-tables. This is
//! fast enough to benchmark the *relative* per-packet costs reported in
//! Figure 7 of the paper.
//!
//! Only encryption is implemented because CMAC (the only consumer in this
//! repository) never needs the inverse cipher.

/// Size of an AES block in bytes.
pub const BLOCK_SIZE: usize = 16;
/// Size of an AES-128 key in bytes.
pub const KEY_SIZE: usize = 16;
/// Number of AES-128 rounds.
const ROUNDS: usize = 10;

/// The AES S-box (FIPS-197 §5.1.1).
#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants used by the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply a field element by `x` (i.e. `{02}`) in GF(2^8) with the AES
/// reduction polynomial.
#[inline]
fn xtime(a: u8) -> u8 {
    let hi = a >> 7;
    (a << 1) ^ (hi.wrapping_mul(0x1b))
}

/// An expanded AES-128 key, ready to encrypt blocks.
///
/// The expansion is done once per key; NetFence routers rotate their secrets
/// on the order of minutes (see [`crate::secret`]), so expansion cost is
/// negligible compared to per-packet block encryptions.
#[derive(Clone)]
pub struct Aes128 {
    /// Round keys: (ROUNDS + 1) blocks of 16 bytes.
    round_keys: [[u8; BLOCK_SIZE]; ROUNDS + 1],
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 {{ .. }}")
    }
}

impl Aes128 {
    /// Expand `key` into the round-key schedule.
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, word) in w.iter_mut().take(4).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                // RotWord
                temp.rotate_left(1);
                // SubWord
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; BLOCK_SIZE]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypt a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Encrypt a block, returning the ciphertext.
    pub fn encrypt(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

#[inline]
fn add_round_key(state: &mut [u8; BLOCK_SIZE], rk: &[u8; BLOCK_SIZE]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; BLOCK_SIZE]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// The AES state is column-major: byte `state[4*c + r]` is row `r`, column
/// `c`. ShiftRows rotates row `r` left by `r` positions.
#[inline]
fn shift_rows(state: &mut [u8; BLOCK_SIZE]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; BLOCK_SIZE]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        state[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
        state[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
        state[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
        state[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt(&plaintext), expected);
    }

    /// FIPS-197 Appendix C.1 (AES-128) known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plaintext = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt(&plaintext), expected);
    }

    #[test]
    fn encryption_is_deterministic_and_key_dependent() {
        let aes1 = Aes128::new(&[0u8; 16]);
        let aes2 = Aes128::new(&[1u8; 16]);
        let block = [0x42u8; 16];
        assert_eq!(aes1.encrypt(&block), aes1.encrypt(&block));
        assert_ne!(aes1.encrypt(&block), aes2.encrypt(&block));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(&[7u8; 16]);
        let s = format!("{aes:?}");
        assert!(!s.contains('7'));
    }
}
