//! # netfence-crypto
//!
//! Lightweight symmetric-key cryptography substrate for the NetFence
//! reproduction.
//!
//! The NetFence architecture (Liu, Yang, Xia — SIGCOMM 2010) assumes that
//! routers can perform symmetric-key cryptography at line speed (§2.1) and
//! uses AES-based MACs to make congestion policing feedback unforgeable
//! (§3.2, §4.4). This crate provides everything the protocol layer
//! (`netfence-core`) needs:
//!
//! * [`aes`] — a portable software AES-128 block cipher (the paper assumes
//!   hardware AES; see `DESIGN.md` for the substitution note).
//! * [`cmac`] — AES-CMAC (RFC 4493) plus the 32-bit truncated MAC carried in
//!   the NetFence header's `MAC` field.
//! * [`secret`] — the periodically changing access-router secret `Ka`
//!   (Eq. 1–2 of the paper) with a validation grace window.
//! * [`keyexchange`] — Passport-style per-AS pairwise keys `Kai` (Eq. 3)
//!   established by a Diffie–Hellman exchange piggybacked on a BGP-like
//!   announcement round.
//!
//! Nothing in this crate performs I/O or depends on wall-clock time; all
//! time-dependent APIs take explicit `now` timestamps so that the discrete
//! event simulator fully controls time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aes;
pub mod cmac;
pub mod keyexchange;
pub mod secret;

pub use aes::Aes128;
pub use cmac::{Cmac, Mac32, MacInput};
pub use keyexchange::{full_mesh_exchange, AsKeyAgent, AsKeyTable, AsNumber};
pub use secret::{Nanos, TimeVaryingSecret};
