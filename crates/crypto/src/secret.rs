//! Time-varying access-router secrets.
//!
//! §3.2 of the paper: "An access router inserts a periodically changing
//! secret in a packet's NetFence header." The access router computes the
//! `token_nop` and `token_L↑` MACs with a secret key `Ka` known only to
//! itself (Eq. 1–2). To make key compromise and cryptanalysis windows short,
//! `Ka` rotates periodically; because feedback is valid for up to `w` seconds
//! (4 s, Figure 3), the router must still be able to validate feedback
//! computed under the previous key.

use crate::cmac::Cmac;

/// Nanoseconds since the start of the simulation / epoch.
pub type Nanos = u64;

/// Default key-rotation period: 128 seconds. Any value well above the
/// feedback expiration time `w` (4 s) works; the paper does not prescribe
/// one.
pub const DEFAULT_ROTATION_PERIOD: Nanos = 128 * 1_000_000_000;

/// A time-varying secret key with a one-period validation grace window.
///
/// At any time the router holds the *current* key and the *previous* key.
/// New MACs are always computed under the current key; validation accepts
/// either, so feedback stamped just before a rotation remains verifiable for
/// a full rotation period (which is much longer than `w`).
#[derive(Clone, Debug)]
pub struct TimeVaryingSecret {
    /// Root key material the per-period keys are derived from.
    root: [u8; 16],
    /// Rotation period in nanoseconds.
    period: Nanos,
    /// Epoch index of the cached current key.
    cached_epoch: u64,
    /// CMAC instance for the current epoch.
    current: Cmac,
    /// CMAC instance for the previous epoch.
    previous: Cmac,
}

/// Derive the per-epoch key from the root key: AES_root(epoch || pad).
fn derive_epoch_key(root: &[u8; 16], epoch: u64) -> [u8; 16] {
    let cipher = crate::aes::Aes128::new(root);
    let mut block = [0u8; 16];
    block[..8].copy_from_slice(&epoch.to_be_bytes());
    block[8..].copy_from_slice(b"NF-epoch");
    cipher.encrypt(&block)
}

impl TimeVaryingSecret {
    /// Create a secret from root key material with the default rotation
    /// period.
    pub fn new(root: [u8; 16]) -> Self {
        Self::with_period(root, DEFAULT_ROTATION_PERIOD)
    }

    /// Create a secret with an explicit rotation period (used by tests).
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn with_period(root: [u8; 16], period: Nanos) -> Self {
        assert!(period > 0, "rotation period must be non-zero");
        let current = Cmac::new(&derive_epoch_key(&root, 0));
        // Epoch 0 has no predecessor; use epoch 0 for both so validation
        // still works uniformly.
        let previous = current.clone();
        TimeVaryingSecret { root, period, cached_epoch: 0, current, previous }
    }

    /// The rotation period.
    pub fn period(&self) -> Nanos {
        self.period
    }

    fn epoch_of(&self, now: Nanos) -> u64 {
        now / self.period
    }

    /// Advance the cached keys to the epoch containing `now`. Cheap when the
    /// epoch has not changed.
    pub fn advance(&mut self, now: Nanos) {
        let epoch = self.epoch_of(now);
        if epoch == self.cached_epoch {
            return;
        }
        self.current = Cmac::new(&derive_epoch_key(&self.root, epoch));
        let prev_epoch = epoch.saturating_sub(1);
        self.previous = Cmac::new(&derive_epoch_key(&self.root, prev_epoch));
        self.cached_epoch = epoch;
    }

    /// Compute a truncated MAC under the current key.
    pub fn mac32(&mut self, now: Nanos, msg: &[u8]) -> u32 {
        self.advance(now);
        self.current.mac32(msg)
    }

    /// Verify a truncated MAC against the current or the previous key.
    pub fn verify32(&mut self, now: Nanos, msg: &[u8], mac: u32) -> bool {
        self.advance(now);
        self.current.verify32(msg, mac) || self.previous.verify32(msg, mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Nanos = 1_000_000_000;

    #[test]
    fn stable_within_epoch() {
        let mut s = TimeVaryingSecret::with_period([1u8; 16], 10 * SEC);
        let m1 = s.mac32(0, b"hello");
        let m2 = s.mac32(9 * SEC, b"hello");
        assert_eq!(m1, m2);
        assert!(s.verify32(9 * SEC, b"hello", m1));
    }

    #[test]
    fn rotates_across_epochs() {
        let mut s = TimeVaryingSecret::with_period([1u8; 16], 10 * SEC);
        let m_old = s.mac32(0, b"hello");
        let m_new = s.mac32(10 * SEC, b"hello");
        assert_ne!(m_old, m_new, "key must change at the epoch boundary");
    }

    #[test]
    fn previous_epoch_still_validates() {
        let mut s = TimeVaryingSecret::with_period([1u8; 16], 10 * SEC);
        let m_old = s.mac32(9 * SEC, b"hello");
        // Just after rotation the old MAC must still verify (grace window).
        assert!(s.verify32(11 * SEC, b"hello", m_old));
        // Two epochs later it must not.
        assert!(!s.verify32(25 * SEC, b"hello", m_old));
    }

    #[test]
    fn different_roots_disagree() {
        let mut a = TimeVaryingSecret::with_period([1u8; 16], 10 * SEC);
        let mut b = TimeVaryingSecret::with_period([2u8; 16], 10 * SEC);
        assert_ne!(a.mac32(0, b"x"), b.mac32(0, b"x"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = TimeVaryingSecret::with_period([0u8; 16], 0);
    }
}
