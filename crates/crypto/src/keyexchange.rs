//! Passport-style per-AS pairwise shared keys.
//!
//! NetFence relies on Passport \[26\] in two places (§4.4, §4.5):
//!
//! 1. A bottleneck router stamps the `L↓` feedback with a MAC keyed by a
//!    secret `Kai` shared between *its* AS and the *sender's* AS (Eq. 3).
//! 2. Passport itself authenticates the source AS of every packet, which is
//!    what lets routers use per-AS queues / rate limits to localize the
//!    damage of compromised access routers.
//!
//! Passport establishes the pairwise keys by piggybacking a Diffie–Hellman
//! exchange on BGP announcements. We reproduce that mechanism with a small
//! fixed-prime DH over 64-bit group elements: every AS generates a private
//! exponent, "announces" its public value to all other ASes (one round, as a
//! full-mesh BGP propagation would), and both sides derive the same 128-bit
//! AES key from the shared group element. The substitution preserves the
//! property NetFence needs — each ordered AS pair agrees on a secret key that
//! no third party knows — without modelling BGP messages themselves.

use crate::cmac::Cmac;

/// An Autonomous System number.
pub type AsNumber = u32;

/// A safe prime that fits in 63 bits so that modular multiplication can be
/// done in `u128` without overflow. (2^61 - 1 is a Mersenne prime.)
const DH_PRIME: u64 = (1u64 << 61) - 1;
/// Group generator.
const DH_GENERATOR: u64 = 5;

/// Modular multiplication mod [`DH_PRIME`].
fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by squaring.
fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// One AS's Diffie–Hellman keying material.
#[derive(Clone)]
pub struct AsKeyAgent {
    asn: AsNumber,
    private: u64,
    public: u64,
}

impl core::fmt::Debug for AsKeyAgent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AsKeyAgent {{ asn: {}, public: {} }}", self.asn, self.public)
    }
}

impl AsKeyAgent {
    /// Create a key agent for `asn` from a private exponent (in a real
    /// deployment this comes from a CSPRNG; in the simulator it comes from
    /// the seeded RNG so runs are reproducible).
    pub fn new(asn: AsNumber, private_exponent: u64) -> Self {
        // Avoid the degenerate exponents 0 and 1.
        let private = private_exponent % (DH_PRIME - 3) + 2;
        let public = powmod(DH_GENERATOR, private, DH_PRIME);
        AsKeyAgent { asn, private, public }
    }

    /// The AS number this agent belongs to.
    pub fn asn(&self) -> AsNumber {
        self.asn
    }

    /// The public value this AS announces via BGP.
    pub fn public_value(&self) -> u64 {
        self.public
    }

    /// Derive the shared 128-bit key with a peer AS from its announced
    /// public value.
    ///
    /// Both peers derive the same key because the derivation input uses the
    /// unordered AS pair (smaller ASN first) plus the DH shared secret.
    pub fn shared_key(&self, peer_asn: AsNumber, peer_public: u64) -> [u8; 16] {
        let secret = powmod(peer_public, self.private, DH_PRIME);
        let (lo, hi) =
            if self.asn <= peer_asn { (self.asn, peer_asn) } else { (peer_asn, self.asn) };
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&secret.to_be_bytes());
        key[8..12].copy_from_slice(&lo.to_be_bytes());
        key[12..16].copy_from_slice(&hi.to_be_bytes());
        // Whiten through AES so the structure of the DH secret is not
        // directly exposed as key bytes.
        let cipher = crate::aes::Aes128::new(b"NetFencePassport");
        cipher.encrypt(&key)
    }
}

/// The table of pairwise AS keys held by one AS (e.g. by its border/access
/// routers). Maps a peer ASN to a ready-to-use CMAC instance.
#[derive(Debug, Default, Clone)]
pub struct AsKeyTable {
    keys: std::collections::HashMap<AsNumber, Cmac>,
}

impl AsKeyTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the key shared with `peer`.
    pub fn install(&mut self, peer: AsNumber, key: [u8; 16]) {
        self.keys.insert(peer, Cmac::new(&key));
    }

    /// Look up the CMAC for a peer AS.
    pub fn get(&self, peer: AsNumber) -> Option<&Cmac> {
        self.keys.get(&peer)
    }

    /// Remove the key shared with `peer` (it expired without a refreshing
    /// announcement). Returns whether a key was installed.
    pub fn remove(&mut self, peer: AsNumber) -> bool {
        self.keys.remove(&peer).is_some()
    }

    /// Number of peers with installed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Run the full-mesh "BGP piggybacked" exchange for a set of ASes and return
/// each AS's key table. Index `i` of the result corresponds to `agents[i]`.
pub fn full_mesh_exchange(agents: &[AsKeyAgent]) -> Vec<AsKeyTable> {
    let mut tables = vec![AsKeyTable::new(); agents.len()];
    for (i, a) in agents.iter().enumerate() {
        for b in agents.iter() {
            if a.asn() == b.asn() {
                continue;
            }
            tables[i].install(b.asn(), a.shared_key(b.asn(), b.public_value()));
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_agreement() {
        let a = AsKeyAgent::new(100, 0xdead_beef_cafe);
        let b = AsKeyAgent::new(200, 0x1234_5678_9abc);
        let kab = a.shared_key(b.asn(), b.public_value());
        let kba = b.shared_key(a.asn(), a.public_value());
        assert_eq!(kab, kba, "both ASes must derive the same pairwise key");
    }

    #[test]
    fn third_party_gets_different_key() {
        let a = AsKeyAgent::new(100, 11111);
        let b = AsKeyAgent::new(200, 22222);
        let c = AsKeyAgent::new(300, 33333);
        let kab = a.shared_key(b.asn(), b.public_value());
        let kac = a.shared_key(c.asn(), c.public_value());
        let kbc = b.shared_key(c.asn(), c.public_value());
        assert_ne!(kab, kac);
        assert_ne!(kab, kbc);
        assert_ne!(kac, kbc);
    }

    #[test]
    fn full_mesh_tables_are_symmetric() {
        let agents: Vec<_> =
            (0..5).map(|i| AsKeyAgent::new(1000 + i, 7919 * (i as u64 + 1))).collect();
        let tables = full_mesh_exchange(&agents);
        assert_eq!(tables.len(), 5);
        for t in &tables {
            assert_eq!(t.len(), 4);
        }
        // AS 1000's CMAC of a message under key(1000,1001) equals AS 1001's.
        let msg = b"congestion feedback";
        let m01 = tables[0].get(1001).unwrap().mac32(msg);
        let m10 = tables[1].get(1000).unwrap().mac32(msg);
        assert_eq!(m01, m10);
        // ...and differs from the key AS 1002 shares with AS 1000.
        let m02 = tables[0].get(1002).unwrap().mac32(msg);
        assert_ne!(m01, m02);
    }

    #[test]
    fn degenerate_exponents_are_avoided() {
        let a = AsKeyAgent::new(1, 0);
        assert_ne!(a.public_value(), 1, "exponent 0 would make the public value 1");
    }

    proptest::proptest! {
        #[test]
        fn agreement_holds_for_arbitrary_exponents(x in 1u64.., y in 1u64..) {
            let a = AsKeyAgent::new(10, x);
            let b = AsKeyAgent::new(20, y);
            proptest::prop_assert_eq!(
                a.shared_key(20, b.public_value()),
                b.shared_key(10, a.public_value())
            );
        }
    }
}
