//! AES-CMAC (RFC 4493) and the truncated 32-bit MAC used in the NetFence
//! header.
//!
//! The NetFence header reserves a 32-bit `MAC` field (Figure 6 of the paper),
//! so tokens computed over the feedback fields (Eq. 1–3, §4.4) are truncated
//! to the first four bytes of the full CMAC. Truncation keeps the header at
//! 20–28 bytes while still making online forgery of a valid token
//! impractical within a feedback expiration window (`w` = 4 s).

use crate::aes::{Aes128, BLOCK_SIZE};

/// A full 128-bit CMAC tag.
pub type Tag = [u8; BLOCK_SIZE];

/// The truncated 32-bit MAC carried in NetFence and Passport headers.
pub type Mac32 = u32;

/// AES-CMAC keyed instance.
///
/// Holds the expanded cipher and the two derived sub-keys `K1`/`K2`
/// (RFC 4493 §2.3).
#[derive(Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; BLOCK_SIZE],
    k2: [u8; BLOCK_SIZE],
}

impl core::fmt::Debug for Cmac {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Cmac {{ .. }}")
    }
}

/// Left-shift a 128-bit big-endian value by one bit.
fn shl1(input: &[u8; BLOCK_SIZE]) -> ([u8; BLOCK_SIZE], bool) {
    let mut out = [0u8; BLOCK_SIZE];
    let mut carry = 0u8;
    for i in (0..BLOCK_SIZE).rev() {
        out[i] = (input[i] << 1) | carry;
        carry = input[i] >> 7;
    }
    (out, carry == 1)
}

/// Derive a CMAC sub-key: doubling in GF(2^128) with R128 = 0x87.
fn derive_subkey(l: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    let (mut k, overflow) = shl1(l);
    if overflow {
        k[BLOCK_SIZE - 1] ^= 0x87;
    }
    k
}

impl Cmac {
    /// Create a CMAC instance from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt(&[0u8; BLOCK_SIZE]);
        let k1 = derive_subkey(&l);
        let k2 = derive_subkey(&k1);
        Cmac { cipher, k1, k2 }
    }

    /// Compute the full 128-bit CMAC tag of `msg`.
    pub fn tag(&self, msg: &[u8]) -> Tag {
        let n_blocks = msg.len().div_ceil(BLOCK_SIZE);
        let (n_blocks, last_complete) = if n_blocks == 0 {
            (1, false)
        } else {
            (n_blocks, msg.len().is_multiple_of(BLOCK_SIZE))
        };

        let mut x = [0u8; BLOCK_SIZE];
        for i in 0..n_blocks - 1 {
            for (xb, mb) in x.iter_mut().zip(&msg[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE]) {
                *xb ^= *mb;
            }
            self.cipher.encrypt_block(&mut x);
        }

        // Prepare the last block: either XOR with K1 (complete) or pad with
        // 10..0 and XOR with K2 (incomplete).
        let mut last = [0u8; BLOCK_SIZE];
        let start = (n_blocks - 1) * BLOCK_SIZE;
        if last_complete {
            last.copy_from_slice(&msg[start..start + BLOCK_SIZE]);
            for (lb, kb) in last.iter_mut().zip(self.k1.iter()) {
                *lb ^= *kb;
            }
        } else {
            let rem = &msg[start..];
            last[..rem.len()].copy_from_slice(rem);
            last[rem.len()] = 0x80;
            for (lb, kb) in last.iter_mut().zip(self.k2.iter()) {
                *lb ^= *kb;
            }
        }

        for (xb, lb) in x.iter_mut().zip(last.iter()) {
            *xb ^= *lb;
        }
        self.cipher.encrypt_block(&mut x);
        x
    }

    /// Compute the truncated 32-bit MAC used in NetFence/Passport headers.
    pub fn mac32(&self, msg: &[u8]) -> Mac32 {
        let tag = self.tag(msg);
        u32::from_be_bytes([tag[0], tag[1], tag[2], tag[3]])
    }

    /// Verify a truncated 32-bit MAC in constant time with respect to the
    /// tag value.
    pub fn verify32(&self, msg: &[u8], mac: Mac32) -> bool {
        // XOR-compare to avoid an early-exit comparison on the tag bytes.
        let expected = self.mac32(msg);
        (expected ^ mac) == 0
    }
}

/// A small helper to build MAC input messages from typed fields without
/// allocating: fields are appended in a fixed, length-prefixed order so that
/// different field combinations can never collide.
#[derive(Default)]
pub struct MacInput {
    buf: Vec<u8>,
}

impl MacInput {
    /// Start a new MAC input with a domain-separation label.
    pub fn new(label: &str) -> Self {
        let mut m = MacInput { buf: Vec::with_capacity(64) };
        m.push_bytes(label.as_bytes());
        m
    }

    /// Append a length-prefixed byte string.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Append a `u32` field.
    pub fn push_u32(&mut self, v: u32) -> &mut Self {
        self.push_bytes(&v.to_be_bytes())
    }

    /// Append a `u64` field.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_be_bytes())
    }

    /// Append a single byte field.
    pub fn push_u8(&mut self, v: u8) -> &mut Self {
        self.push_bytes(&[v])
    }

    /// The accumulated message bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];

    /// RFC 4493 test vector: empty message.
    #[test]
    fn rfc4493_example_1_empty() {
        let cmac = Cmac::new(&KEY);
        let expected: Tag = [
            0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28, 0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75,
            0x67, 0x46,
        ];
        assert_eq!(cmac.tag(b""), expected);
    }

    /// RFC 4493 test vector: 16-byte message.
    #[test]
    fn rfc4493_example_2_one_block() {
        let cmac = Cmac::new(&KEY);
        let msg = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let expected: Tag = [
            0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44, 0xf7, 0x9b, 0xdd, 0x9d, 0xd0, 0x4a,
            0x28, 0x7c,
        ];
        assert_eq!(cmac.tag(&msg), expected);
    }

    /// RFC 4493 test vector: 40-byte message (padding path).
    #[test]
    fn rfc4493_example_3_partial_block() {
        let cmac = Cmac::new(&KEY);
        let msg = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac,
            0x45, 0xaf, 0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11,
        ];
        let expected: Tag = [
            0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30, 0x30, 0xca, 0x32, 0x61, 0x14, 0x97,
            0xc8, 0x27,
        ];
        assert_eq!(cmac.tag(&msg), expected);
    }

    /// RFC 4493 test vector: 64-byte message (multiple complete blocks).
    #[test]
    fn rfc4493_example_4_four_blocks() {
        let cmac = Cmac::new(&KEY);
        let msg = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac,
            0x45, 0xaf, 0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb,
            0xc1, 0x19, 0x1a, 0x0a, 0x52, 0xef, 0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17,
            0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10,
        ];
        let expected: Tag = [
            0x51, 0xf0, 0xbe, 0xbf, 0x7e, 0x3b, 0x9d, 0x92, 0xfc, 0x49, 0x74, 0x17, 0x79, 0x36,
            0x3c, 0xfe,
        ];
        assert_eq!(cmac.tag(&msg), expected);
    }

    #[test]
    fn mac32_is_prefix_of_tag() {
        let cmac = Cmac::new(&KEY);
        let tag = cmac.tag(b"netfence");
        let mac = cmac.mac32(b"netfence");
        assert_eq!(mac.to_be_bytes(), tag[..4]);
        assert!(cmac.verify32(b"netfence", mac));
        assert!(!cmac.verify32(b"netfence", mac ^ 1));
        assert!(!cmac.verify32(b"netfencf", mac));
    }

    #[test]
    fn mac_input_domain_separation() {
        // ("ab","c") and ("a","bc") must hash differently thanks to length
        // prefixes.
        let cmac = Cmac::new(&KEY);
        let mut a = MacInput::new("t");
        a.push_bytes(b"ab").push_bytes(b"c");
        let mut b = MacInput::new("t");
        b.push_bytes(b"a").push_bytes(b"bc");
        assert_ne!(cmac.mac32(a.as_bytes()), cmac.mac32(b.as_bytes()));
    }

    proptest::proptest! {
        /// Any single-bit flip in the message changes the 128-bit tag.
        #[test]
        fn bit_flip_changes_tag(msg in proptest::collection::vec(proptest::prelude::any::<u8>(), 1..128),
                                bit in 0usize..1024) {
            let cmac = Cmac::new(&KEY);
            let bit = bit % (msg.len() * 8);
            let mut flipped = msg.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            proptest::prop_assert_ne!(cmac.tag(&msg), cmac.tag(&flipped));
        }

        /// Different keys yield different tags for the same message.
        #[test]
        fn key_separation(k1 in proptest::prelude::any::<[u8;16]>(), k2 in proptest::prelude::any::<[u8;16]>(),
                          msg in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64)) {
            proptest::prop_assume!(k1 != k2);
            let c1 = Cmac::new(&k1);
            let c2 = Cmac::new(&k2);
            proptest::prop_assert_ne!(c1.tag(&msg), c2.tag(&msg));
        }
    }
}
