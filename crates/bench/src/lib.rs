//! # netfence-bench
//!
//! Criterion benchmark harness for the NetFence reproduction: one bench per
//! table/figure of the paper's evaluation (Figure 7 micro-benchmarks,
//! Figures 8–14 experiment harnesses at reduced scale) plus ablation benches
//! for the design choices called out in `DESIGN.md`. Run with
//! `cargo bench --workspace`; see `EXPERIMENTS.md` for how the bench output
//! maps to the paper's numbers.

#![forbid(unsafe_code)]
