//! Reaction-time smoke bench: times one reaction-sweep cell, then records
//! the *measured* reaction times (simulated nanoseconds) per
//! (system × control-plane latency) point into the merged
//! `BENCH_results.json` via [`criterion::record_value`], so the
//! reaction-vs-latency curve is tracked alongside the wall-clock numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::reaction::{run_reaction_cell, ReactionKnobs, SYSTEMS};
use netfence_experiments::{DefenseKind, Scale};
use netfence_sim::time::{MILLI, SEC};

fn smoke_scale() -> Scale {
    Scale { src_ases: 3, hosts_per_as: 3, sim_time: 30 * SEC, seed: 7 }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("reaction");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("cell_netfence_ideal", |b| {
        b.iter(|| {
            let p =
                run_reaction_cell(&smoke_scale(), DefenseKind::NetFence, ReactionKnobs::ideal());
            std::hint::black_box(p.avg_user_bps)
        })
    });
    g.finish();

    // The derived metric: reaction time vs control-plane latency for every
    // swept system, stored as simulated nanoseconds (-1 = never recovered).
    for system in SYSTEMS {
        for latency in [0, 100 * MILLI, 2 * SEC] {
            let p = run_reaction_cell(&smoke_scale(), system, ReactionKnobs::latency(latency));
            let ns = p.reaction_secs.map_or(-1.0, |s| s * 1e9);
            let id = format!("{}_lat{}ms", p.system.label(), latency / MILLI);
            criterion::record_value("reaction_secs_vs_latency", &id, ns, 1);
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
