//! Tournament smoke bench: times one tournament cell, then runs a reduced
//! defense × strategy grid and records the regret-style matrix — per-cell
//! user goodput plus each defense's worst-case goodput and regret — into
//! the merged `BENCH_results.json` via [`criterion::record_value`].

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::tournament::{
    regret_matrix, run_tournament, tournament_spec, TopologyKind, TournamentPoint, ATTACK_RATE,
    SYSTEMS,
};
use netfence_experiments::{AttackStrategy, Runner, Scale};
use netfence_sim::time::SEC;

fn smoke_scale() -> Scale {
    Scale { src_ases: 3, hosts_per_as: 3, sim_time: 25 * SEC, seed: 7 }
}

fn smoke_points() -> Vec<TournamentPoint> {
    AttackStrategy::lineup(ATTACK_RATE)
        .into_iter()
        .map(|strategy| TournamentPoint {
            strategy,
            topology: TopologyKind::Dumbbell,
            coverage_pct: 100,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tournament");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("cell_netfence_shrew", |b| {
        b.iter(|| {
            let p = TournamentPoint {
                strategy: AttackStrategy::shrew_tuned(ATTACK_RATE),
                topology: TopologyKind::Dumbbell,
                coverage_pct: 100,
            };
            let spec =
                tournament_spec(&smoke_scale(), netfence_experiments::DefenseKind::NetFence, &p);
            std::hint::black_box(Runner::new(spec).run().avg_user_bps())
        })
    });
    g.finish();

    // The derived metrics: every (defense × strategy) cell's user goodput,
    // then the per-defense worst case and regret (bits per second;
    // reaction as simulated nanoseconds, -1 = never recovered).
    let cells = run_tournament(&smoke_scale(), &SYSTEMS, &smoke_points());
    for cell in &cells {
        let id = format!("{}_{}", cell.system.label(), cell.point.strategy.label());
        criterion::record_value("tournament_user_bps", &id, cell.avg_user_bps, 1);
    }
    for row in regret_matrix(&cells) {
        let id = row.system.label();
        criterion::record_value("tournament_worst_user_bps", id, row.worst_user_bps, 1);
        criterion::record_value("tournament_regret_bps", id, row.regret_bps, 1);
        let ns = row.worst_reaction_secs.map_or(-1.0, |s| s * 1e9);
        criterion::record_value("tournament_worst_reaction_ns", id, ns, 1);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
