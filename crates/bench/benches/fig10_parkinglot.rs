//! Figure 10 harness at reduced scale: the parking-lot topology.

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::fig10::{capacity_cases, run_fig10_case};
use netfence_experiments::{DefenseKind, Scale};
use netfence_sim::time::SEC;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_parking_lot");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    let scale = Scale { src_ases: 1, hosts_per_as: 4, sim_time: 30 * SEC, seed: 7 };
    for case in capacity_cases(8, 80_000) {
        g.bench_function(case.label, |b| {
            b.iter(|| {
                let p = run_fig10_case(&scale, DefenseKind::NetFence, case);
                std::hint::black_box((p.group_a_user_bps, p.group_a_attacker_bps))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
