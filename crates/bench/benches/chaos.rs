//! Chaos smoke bench: times one chaos-sweep cell, then records the
//! *measured* fault metrics — worst-case recovery (simulated seconds,
//! censored at run end) and availability under the fault — per
//! (system × fault kind) point into the merged `BENCH_results.json` via
//! [`criterion::record_value`], so the recovery surface is tracked
//! alongside the wall-clock numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::chaos::{
    run_chaos_cell, ChaosFault, ChaosPoint, ChaosTopology, Severity,
};
use netfence_experiments::{DefenseKind, Scale};
use netfence_sim::time::SEC;

fn smoke_scale() -> Scale {
    Scale { src_ases: 3, hosts_per_as: 3, sim_time: 25 * SEC, seed: 7 }
}

fn point(fault: ChaosFault) -> ChaosPoint {
    ChaosPoint { topology: ChaosTopology::Dumbbell, fault, severity: Severity::Mild }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    g.bench_function("cell_netfence_reboot", |b| {
        b.iter(|| {
            let o = run_chaos_cell(
                &smoke_scale(),
                DefenseKind::NetFence,
                point(ChaosFault::RouterReboot),
            );
            std::hint::black_box(o.avg_user_bps)
        })
    });
    g.finish();

    // The derived metrics: worst-case recovery and availability per
    // (system × mild fault) on the dumbbell (-1 = metric unavailable).
    for system in [DefenseKind::NetFence, DefenseKind::Fq] {
        for fault in [ChaosFault::LinkFailure, ChaosFault::RouterReboot, ChaosFault::KeyDesync] {
            let o = run_chaos_cell(&smoke_scale(), system, point(fault));
            let id = format!("{}_{}", system.label(), fault.label());
            criterion::record_value(
                "chaos_worst_recovery_secs",
                &id,
                o.worst_recovery_secs.unwrap_or(-1.0),
                1,
            );
            criterion::record_value("chaos_availability", &id, o.availability.unwrap_or(-1.0), 1);
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
