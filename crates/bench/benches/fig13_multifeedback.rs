//! Figure 13 harness: the Appendix B.1 multi-bottleneck feedback design
//! (control-loop model).

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::fig13::run_fig13;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_multifeedback");
    g.sample_size(10);
    g.bench_function("three_capacity_cases", |b| {
        b.iter(|| std::hint::black_box(run_fig13(8, 200)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
