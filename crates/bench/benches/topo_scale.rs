//! Topology-scaling harness at reduced scale: how fast transit-stub
//! internets build (the AS-aggregated routing construction is the hot
//! path) and how many packets per second the engine simulates on them with
//! and without a NetFence deployment. The full sweep lives in the
//! `topo_scale` binary; these benched points feed the merged
//! `BENCH_results.json` so the scaling trajectory is tracked per commit.

use criterion::{criterion_group, criterion_main, record_value, Criterion};
use netfence_experiments::topo_scale::{build_point, run_point, scale_spec};
use netfence_experiments::{DefenseKind, Runner};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("topo_scale");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    for hosts in [2_000usize, 8_000] {
        g.bench_function(format!("build_{hosts}_hosts"), |b| {
            b.iter(|| {
                let p = build_point(hosts, 7);
                std::hint::black_box(p.route_table_bytes)
            })
        });
    }
    for system in [DefenseKind::NetFence, DefenseKind::None] {
        g.bench_function(format!("sim_600_hosts_{}", system.label()), |b| {
            b.iter(|| {
                let r = Runner::new(scale_spec(600, system)).run();
                std::hint::black_box(r.avg_user_bps())
            })
        });
    }
    g.finish();
    // Engine-throughput and typed-drop derived metrics, recorded from one
    // measured point per system so the profiling counters ride
    // BENCH_results.json next to the wall-clock rows.
    let point = run_point(600, 7, &[DefenseKind::NetFence, DefenseKind::None]);
    for run in &point.runs {
        record_value(
            "topo_scale",
            &format!("engine_events_per_sec/600_hosts_{}", run.system.label()),
            run.events_per_sec,
            1,
        );
        record_value(
            "topo_scale",
            &format!("sim_pkts_per_sec/600_hosts_{}", run.system.label()),
            run.pkts_per_sec,
            1,
        );
        record_value(
            "topo_scale",
            &format!("drop_cause_total/600_hosts_{}", run.system.label()),
            run.drop_total as f64,
            1,
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
