//! Figure 7: per-packet processing cost of the NetFence fast paths,
//! measured with Criterion (the `fig7` experiment binary prints the same
//! table using wall-clock averages).

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_core::prelude::*;
use netfence_core::{bottleneck::BottleneckLink, config::Config};
use netfence_crypto::{full_mesh_exchange, AsKeyAgent, Cmac};

fn fixture() -> (AccessRouter, BottleneckLink, FlowPair) {
    let agents = vec![AsKeyAgent::new(1, 101), AsKeyAgent::new(2, 202)];
    let mut tables = full_mesh_exchange(&agents);
    let t1 = tables.remove(0);
    let t2 = tables.remove(0);
    let mut access = AccessRouter::new(Config::default(), AsId(1), [9u8; 16], t1);
    access.register_link_as(LinkId(500), AsId(2));
    let bl = BottleneckLink::new(LinkId(500), 10_000_000, t2, Config::default(), 0);
    (access, bl, FlowPair::new(HostId(1), HostId(2)))
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_microbench");

    // Access router, request packet (stamp nop).
    {
        let (mut access, _, flow) = fixture();
        g.bench_function("access_request_stamp", |b| {
            b.iter(|| {
                let mut h = NetFenceHeader::request(17, 0, Feedback::Nop { ts: 0, token: 0 });
                std::hint::black_box(access.process_outbound(SEC, flow, &mut h, 92))
            })
        });
    }

    // Access router, regular packet with nop feedback (idle network).
    {
        let (mut access, _, flow) = fixture();
        let mut h = NetFenceHeader::request(6, 0, Feedback::Nop { ts: 0, token: 0 });
        access.process_outbound(SEC, flow, &mut h, 92);
        let nop = h.presented;
        g.bench_function("access_regular_no_attack", |b| {
            b.iter(|| {
                let mut h = NetFenceHeader::regular(6, nop, None);
                std::hint::black_box(access.process_outbound(SEC, flow, &mut h, 1500))
            })
        });
    }

    // Bottleneck router stamping L↓ during an attack.
    {
        let (mut access, mut bl, flow) = fixture();
        let mut now = 0;
        while !bl.in_mon() {
            now += SEC;
            for i in 0..200 {
                bl.record_regular(1500, i % 5 == 0);
            }
            bl.tick(now);
        }
        let mut h = NetFenceHeader::request(6, 0, Feedback::Nop { ts: 0, token: 0 });
        access.process_outbound(now, flow, &mut h, 92);
        let nop = h.presented;
        g.bench_function("bottleneck_stamp_decr_attack", |b| {
            b.iter(|| {
                let mut fb = nop;
                std::hint::black_box(bl.update_feedback(now, flow, AsId(1), &mut fb))
            })
        });
        g.bench_function("bottleneck_idle", |b| {
            let quiet = BottleneckLink::new(
                LinkId(501),
                10_000_000,
                netfence_crypto::AsKeyTable::new(),
                Config::default(),
                0,
            );
            let mut quiet = quiet;
            b.iter(|| {
                let mut fb = nop;
                std::hint::black_box(quiet.update_feedback(now, flow, AsId(1), &mut fb))
            })
        });
    }

    // TVA+ stand-in: one capability MAC verification.
    {
        let cmac = Cmac::new(&[0x42u8; 16]);
        let mac = cmac.mac32(b"capability:12345678");
        g.bench_function("tva_capability_check", |b| {
            b.iter(|| std::hint::black_box(cmac.verify32(b"capability:12345678", mac)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
