//! Ablation benches for the design choices `DESIGN.md` calls out:
//!
//! * the 2·Ilim stamping hysteresis (vs 0/1 intervals) — §4.3.4 argues 2 is
//!   the minimum robust value;
//! * the leaky-bucket (queue) rate limiter vs a token bucket that would
//!   admit synchronized bursts — §4.3.3;
//! * the multiplicative-decrease parameter δ (0.1 vs TCP's 0.5) — §4.6.

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_core::aimd::AimdState;
use netfence_core::config::Config;
use netfence_core::feedback::{Action, Feedback};
use netfence_core::monitor::BottleneckMonitor;
use netfence_core::regular_limiter::{BucketVerdict, LeakyBucket};
use netfence_core::types::{LinkId, MILLI, SEC};

fn hysteresis(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_hysteresis");
    g.sample_size(10);
    for intervals in [0u32, 1, 2] {
        g.bench_function(format!("{intervals}x_ilim"), |b| {
            b.iter(|| {
                let mut cfg = Config::short_timers();
                cfg.hysteresis_intervals = intervals;
                let mut m = BottleneckMonitor::new(0);
                let mut now = 0;
                // Drive into mon, then check how long L↓ keeps being stamped
                // after a single congestion event (the robustness window).
                while !m.in_mon() {
                    now += SEC;
                    for i in 0..100 {
                        m.detector_mut().record(1500, i % 5 == 0);
                    }
                    m.tick(now, 10_000_000, &cfg);
                }
                m.note_congestion(now, &cfg);
                let mut window = 0u64;
                while m.should_stamp_decr(now + window * 100 * MILLI) {
                    window += 1;
                }
                std::hint::black_box(window)
            })
        });
    }
    g.finish();
}

fn bucket_type(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bucket");
    g.sample_size(10);
    // Leaky bucket: a synchronized 50-packet burst after a long idle period
    // is smoothed out (only one packet departs immediately).
    g.bench_function("leaky_bucket_burst_admitted_pkts", |b| {
        b.iter(|| {
            let mut lb = LeakyBucket::new(0, 200_000, 2 * SEC);
            let now = 100 * SEC;
            let mut immediate = 0;
            for _ in 0..50 {
                if lb.offer(now, 1500) == BucketVerdict::Pass {
                    immediate += 1;
                }
            }
            std::hint::black_box(immediate)
        })
    });
    // Token bucket (what the paper rejects): the same burst is admitted
    // wholesale because idle time accrues credit.
    g.bench_function("token_bucket_burst_admitted_pkts", |b| {
        b.iter(|| {
            let rate = 200_000f64;
            let mut tokens: f64 = rate * 2.0; // 2 s of accumulated credit
            let mut immediate = 0;
            for _ in 0..50 {
                if tokens >= 1500.0 * 8.0 {
                    tokens -= 1500.0 * 8.0;
                    immediate += 1;
                }
            }
            std::hint::black_box(immediate)
        })
    });
    g.finish();
}

fn delta_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_delta");
    g.sample_size(10);
    for delta in [0.1f64, 0.5] {
        g.bench_function(format!("delta_{delta}"), |b| {
            b.iter(|| {
                let cfg = Config { multiplicative_decrease: delta, ..Config::default() };
                // Two senders converging on a 400 kbps link: measure the
                // steady-state average rate (larger δ under-utilizes).
                let mut x = AimdState::with_rate(300_000, 0);
                let mut y = AimdState::with_rate(60_000, 0);
                let mut sum = 0f64;
                for step in 1..200u64 {
                    let now = step * cfg.ilim;
                    let congested = x.rate() + y.rate() > 400_000;
                    for l in [&mut x, &mut y] {
                        if !congested {
                            l.observe(&Feedback::Mon {
                                link: LinkId(1),
                                action: Action::Incr,
                                ts: (now / SEC) as u32,
                                token: 0,
                                token_nop: None,
                            });
                        }
                        l.adjust(now, l.rate() as f64, &cfg);
                    }
                    if step > 100 {
                        sum += (x.rate() + y.rate()) as f64;
                    }
                }
                std::hint::black_box(sum / 100.0)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, hysteresis, bucket_type, delta_sensitivity);
criterion_main!(benches);
