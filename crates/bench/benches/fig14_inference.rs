//! Figure 14 harness: the Appendix B.2 rate-limiter inference design
//! (control-loop model).

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::fig13::run_fig14;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_inference");
    g.sample_size(10);
    g.bench_function("three_capacity_cases", |b| {
        b.iter(|| std::hint::black_box(run_fig14(8, 200)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
