//! Figure 8 harness at reduced scale: unwanted request flooding.

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::fig8::run_fig8_cell;
use netfence_experiments::{DefenseKind, Scale};
use netfence_sim::time::SEC;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_unwanted_flood");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    let scale = Scale { src_ases: 3, hosts_per_as: 3, sim_time: 20 * SEC, seed: 7 };
    for system in [DefenseKind::NetFence, DefenseKind::Tva, DefenseKind::StopIt, DefenseKind::Fq] {
        g.bench_function(system.label(), |b| {
            b.iter(|| {
                let p = run_fig8_cell(&scale, system, 100_000, 100_000);
                std::hint::black_box(p.avg_transfer_secs)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
