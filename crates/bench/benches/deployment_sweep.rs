//! Incremental-deployment harness at reduced scale: how much simulation
//! cost the per-node agent dispatch adds at zero, partial and full
//! coverage (the fast path must stay cheap when most nodes are legacy).

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::deployment::run_deployment_cell;
use netfence_experiments::{DefenseKind, Scale};
use netfence_sim::time::SEC;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("deployment_sweep");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    let scale = Scale { src_ases: 3, hosts_per_as: 3, sim_time: 20 * SEC, seed: 7 };
    for coverage in [0.0f64, 0.5, 1.0] {
        g.bench_function(format!("netfence_cov{coverage:.1}"), |b| {
            b.iter(|| {
                let p = run_deployment_cell(&scale, DefenseKind::NetFence, coverage);
                std::hint::black_box(p.avg_user_bps)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
