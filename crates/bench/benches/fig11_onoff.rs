//! Figure 11 harness at reduced scale: synchronized on-off attacks.

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::fig11::run_fig11_cell;
use netfence_experiments::Scale;
use netfence_sim::time::{secs, SEC};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_onoff");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    let scale = Scale { src_ases: 2, hosts_per_as: 4, sim_time: 30 * SEC, seed: 7 };
    for toff in [1.5, 10.0] {
        g.bench_function(format!("ton0.5s_toff{toff}s"), |b| {
            b.iter(|| {
                let p = run_fig11_cell(&scale, 100_000, secs(0.5), secs(toff));
                std::hint::black_box(p.avg_user_bps)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
