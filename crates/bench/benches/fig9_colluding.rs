//! Figure 9 harness at reduced scale: colluding regular-packet floods.

use criterion::{criterion_group, criterion_main, Criterion};
use netfence_experiments::fig9::{run_fig9_cell, UserTraffic};
use netfence_experiments::{DefenseKind, Scale};
use netfence_sim::time::SEC;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_colluding");
    g.sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    let scale = Scale { src_ases: 3, hosts_per_as: 4, sim_time: 30 * SEC, seed: 7 };
    for system in [DefenseKind::NetFence, DefenseKind::Fq] {
        g.bench_function(system.label(), |b| {
            b.iter(|| {
                let p = run_fig9_cell(&scale, system, UserTraffic::LongRunning, 100_000, 100_000);
                std::hint::black_box(p.throughput_ratio)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
