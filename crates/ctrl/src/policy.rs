//! TTL'd policy rules with capacity limits.
//!
//! The danthegoodman1/netfence exemplar pushes *expiring* allow/deny rules
//! from a central control plane to per-host daemons; nothing installed is
//! permanent, so a defense only keeps working while its refresh traffic
//! keeps landing. [`PolicyStore`] is that model as a reusable container:
//! StopIt filters, Passport/NetFence pairwise keys and TVA+ capability
//! grants all live in one, and the typed [`PolicyStats`] feed the
//! deployment report's `rules_*` counters.

use std::collections::BTreeMap;

use netfence_sim::time::Nanos;

/// Lifecycle counters of one policy store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Rules installed for the first time.
    pub installed: u64,
    /// Rules re-installed while still live (TTL refreshes).
    pub refreshed: u64,
    /// Rules purged after their TTL lapsed.
    pub expired: u64,
    /// Installs rejected because the store was at capacity.
    pub rejected: u64,
    /// Rules forcibly evicted before their TTL (memory pressure).
    pub evicted: u64,
}

/// A per-AS (or per-agent) store of TTL'd policy rules.
///
/// * `ttl == 0` means rules never expire — the legacy permanent-rule
///   behavior, byte-identical to a plain set.
/// * `capacity == 0` means unbounded; otherwise installs beyond the cap
///   are rejected (and counted) until something expires.
#[derive(Debug, Clone)]
pub struct PolicyStore<K> {
    ttl: Nanos,
    capacity: usize,
    /// Rule → expiry instant (`Nanos::MAX` when `ttl == 0`). A `BTreeMap`
    /// so every sweep — purge teardown, future occupancy probes — visits
    /// rules in key order, never in a per-process hash order.
    entries: BTreeMap<K, Nanos>,
    /// Lifecycle counters.
    pub stats: PolicyStats,
}

impl<K: Ord> PolicyStore<K> {
    /// An empty store. `ttl == 0` disables expiry; `capacity == 0` means
    /// unbounded.
    pub fn new(ttl: Nanos, capacity: usize) -> Self {
        PolicyStore { ttl, capacity, entries: BTreeMap::new(), stats: PolicyStats::default() }
    }

    /// The configured TTL (0 = rules never expire).
    pub fn ttl(&self) -> Nanos {
        self.ttl
    }

    /// The configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Install or refresh a rule at time `now`. Returns `false` when the
    /// store is full and the rule was not already present.
    pub fn insert(&mut self, now: Nanos, key: K) -> bool {
        let expiry = if self.ttl == 0 { Nanos::MAX } else { now + self.ttl };
        if let Some(slot) = self.entries.get_mut(&key) {
            *slot = expiry;
            self.stats.refreshed += 1;
            return true;
        }
        if self.capacity > 0 && self.entries.len() >= self.capacity {
            self.stats.rejected += 1;
            return false;
        }
        self.entries.insert(key, expiry);
        self.stats.installed += 1;
        true
    }

    /// Whether a live (non-expired) rule for `key` exists at time `now`.
    pub fn contains(&self, now: Nanos, key: &K) -> bool {
        self.entries.get(key).is_some_and(|&expiry| now < expiry)
    }

    /// The expiry instant of a rule, live or not.
    pub fn expiry_of(&self, key: &K) -> Option<Nanos> {
        self.entries.get(key).copied()
    }

    /// Drop every rule whose TTL lapsed by `now`, returning the purged
    /// keys (so callers can tear down derived state, e.g. uninstall the
    /// expired key from a router's key table).
    pub fn purge(&mut self, now: Nanos) -> Vec<K>
    where
        K: Clone,
    {
        if self.ttl == 0 {
            return Vec::new();
        }
        // Key order (BTreeMap), so the teardown callbacks driven by the
        // returned list run deterministically.
        let dead: Vec<K> =
            self.entries.iter().filter(|(_, &e)| now >= e).map(|(k, _)| k.clone()).collect();
        for k in &dead {
            self.entries.remove(k);
        }
        self.stats.expired += dead.len() as u64;
        dead
    }

    /// Forcibly evict up to `n` rules before their TTL (a memory-pressure
    /// fault), returning the evicted keys so callers can tear down derived
    /// state. Victims are chosen earliest-expiry first — the rules closest
    /// to dying anyway — with ties broken in key order, so the eviction
    /// sequence is fully deterministic.
    pub fn evict_oldest(&mut self, n: usize) -> Vec<K>
    where
        K: Clone,
    {
        let mut victims: Vec<(Nanos, K)> =
            self.entries.iter().map(|(k, &e)| (e, k.clone())).collect();
        // BTreeMap iteration is already key-ordered, so a stable sort on
        // expiry keeps the key-order tiebreak.
        victims.sort_by_key(|(e, _)| *e);
        victims.truncate(n);
        let evicted: Vec<K> = victims.into_iter().map(|(_, k)| k).collect();
        for k in &evicted {
            self.entries.remove(k);
        }
        self.stats.evicted += evicted.len() as u64;
        evicted
    }

    /// Number of stored rules (live and expired-but-unpurged).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no rules.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::time::SEC;

    #[test]
    fn ttl_zero_behaves_like_a_permanent_set() {
        let mut s: PolicyStore<u32> = PolicyStore::new(0, 0);
        assert!(s.insert(0, 7));
        assert!(s.contains(u64::MAX - 1, &7));
        assert!(s.purge(u64::MAX - 1).is_empty());
        assert_eq!(s.stats.installed, 1);
        assert_eq!(s.stats.expired, 0);
    }

    #[test]
    fn rules_expire_and_refresh_extends_life() {
        let mut s: PolicyStore<u32> = PolicyStore::new(2 * SEC, 0);
        s.insert(0, 1);
        assert!(s.contains(SEC, &1));
        assert!(!s.contains(2 * SEC, &1), "expired exactly at TTL");
        // A refresh at 1s pushes expiry to 3s.
        s.insert(SEC, 1);
        assert!(s.contains(2 * SEC, &1));
        assert_eq!(s.stats.refreshed, 1);
        let dead = s.purge(3 * SEC);
        assert_eq!(dead, vec![1]);
        assert_eq!(s.stats.expired, 1);
        assert!(s.is_empty());
    }

    #[test]
    fn capacity_rejects_new_rules_but_allows_refresh() {
        let mut s: PolicyStore<u32> = PolicyStore::new(SEC, 2);
        assert!(s.insert(0, 1));
        assert!(s.insert(0, 2));
        assert!(!s.insert(0, 3), "store is full");
        assert!(s.insert(0, 1), "refreshing a resident rule is always allowed");
        assert_eq!(s.stats.rejected, 1);
        assert_eq!(s.len(), 2);
        // Expiry frees capacity.
        s.purge(SEC);
        assert!(s.insert(SEC, 3));
    }

    #[test]
    fn forced_eviction_is_deterministic_and_earliest_expiry_first() {
        let mut s: PolicyStore<u32> = PolicyStore::new(10 * SEC, 0);
        // Stagger expiries: key 5 dies first, then 1, then 9. Keys 2 and 7
        // share an expiry — the key-order tiebreak must evict 2 before 7.
        s.insert(0, 5);
        s.insert(SEC, 1);
        s.insert(2 * SEC, 9);
        s.insert(3 * SEC, 2);
        s.insert(3 * SEC, 7);
        assert_eq!(s.evict_oldest(2), vec![5, 1]);
        assert_eq!(s.evict_oldest(2), vec![9, 2]);
        assert_eq!(s.stats.evicted, 4);
        assert_eq!(s.len(), 1);
        // Asking for more than remains evicts what's there and stops.
        assert_eq!(s.evict_oldest(10), vec![7]);
        assert!(s.is_empty());
        assert_eq!(s.evict_oldest(3), Vec::<u32>::new());
        assert_eq!(s.stats.evicted, 5);
    }

    #[test]
    fn capacity_boundary_under_ttl_churn() {
        // A store pinned at capacity while TTLs churn: rejected installs
        // must not displace residents, refreshes must not consume slots,
        // and each purge frees exactly the lapsed slots.
        let mut s: PolicyStore<u32> = PolicyStore::new(2 * SEC, 3);
        assert!(s.insert(0, 10));
        assert!(s.insert(SEC, 20));
        assert!(s.insert(SEC, 30));
        // At capacity: a new key bounces, even while a resident is mid-TTL.
        assert!(!s.insert(SEC, 40));
        // Refreshing at the boundary keeps the store full but is allowed.
        assert!(s.insert(SEC, 10));
        assert_eq!(s.len(), 3);
        assert_eq!(s.stats.rejected, 1);
        // Key 10 was refreshed at 1s (expiry 3s); 20 and 30 lapse at 3s
        // too — purge at 3s clears all three deterministically, in key
        // order.
        assert_eq!(s.purge(3 * SEC), vec![10, 20, 30]);
        assert!(s.is_empty());
    }

    #[test]
    fn reinsertion_after_purge_is_indistinguishable_from_first_insertion() {
        let churn = |s: &mut PolicyStore<u32>, base: Nanos| {
            assert!(s.insert(base, 1));
            assert!(s.insert(base, 2));
            assert!(!s.insert(base, 3), "capacity 2");
            assert!(s.contains(base + SEC, &1));
            assert_eq!(s.purge(base + 2 * SEC), vec![1, 2]);
        };
        // First generation...
        let mut s: PolicyStore<u32> = PolicyStore::new(2 * SEC, 2);
        churn(&mut s, 0);
        let first = s.stats;
        // ...and an identical second generation after the purge: the store
        // behaves exactly like a fresh one (same accepts/rejects/expiry),
        // and the counters advance by exactly one generation's worth.
        churn(&mut s, 10 * SEC);
        assert_eq!(s.stats.installed, 2 * first.installed);
        assert_eq!(s.stats.rejected, 2 * first.rejected);
        assert_eq!(s.stats.expired, 2 * first.expired);
        assert_eq!(s.expiry_of(&1), None);
    }
}
