//! Configuration of the control-plane service: transport quality, session
//! backoff and fault injection.

use netfence_sim::packet::AsNum;
use netfence_sim::time::{Nanos, MILLI, SEC};

/// Reconnect behavior of a daemon session to its per-AS controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// First retry delay after a disconnect.
    pub backoff_base: Nanos,
    /// Cap on the exponentially growing retry delay.
    pub backoff_max: Nanos,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { backoff_base: 250 * MILLI, backoff_max: 8 * SEC }
    }
}

/// One controller outage window: sessions touching the affected AS (or
/// every AS, when `asn` is `None`) disconnect at `start` and can only
/// reconnect — with exponential backoff — once `end` has passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The AS whose controller goes down, or `None` for a global outage.
    pub asn: Option<AsNum>,
    /// Outage start (inclusive).
    pub start: Nanos,
    /// Outage end (exclusive); the first backoff retry at or after this
    /// instant succeeds.
    pub end: Nanos,
}

/// Full configuration of a [`CtrlService`](crate::service::CtrlService).
///
/// [`CtrlConfig::ideal`] — the default — is the degenerate transport that
/// reproduces the old instant-reliable bus byte-for-byte; every knob
/// degrades from there.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlConfig {
    /// Fixed propagation latency added to every message.
    pub base_latency: Nanos,
    /// Additionally charge the topology's AS-to-AS path delay (shortest
    /// router path between the two endpoints' AS controllers) per message.
    pub use_path_latency: bool,
    /// Per-attempt loss probability in `[0, 1)`.
    pub loss: f64,
    /// Retransmission timeout: each lost attempt is retried after this
    /// long.
    pub rto: Nanos,
    /// Retransmission budget per message; a message whose original attempt
    /// and all retries are lost is dropped for good.
    pub max_retransmits: u32,
    /// Session reconnect behavior under outages.
    pub session: SessionConfig,
    /// Controller outage windows (fault injection).
    pub outages: Vec<Outage>,
    /// Partitioned ASes: no control message from or to them ever arrives.
    pub partitioned: Vec<AsNum>,
    /// Seed for the transport's loss draws.
    pub seed: u64,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig::ideal()
    }
}

impl CtrlConfig {
    /// The degenerate transport: zero latency, zero loss, no faults.
    /// Byte-identical to running without any installed channel.
    pub fn ideal() -> Self {
        CtrlConfig {
            base_latency: 0,
            use_path_latency: false,
            loss: 0.0,
            rto: 200 * MILLI,
            max_retransmits: 3,
            session: SessionConfig::default(),
            outages: Vec::new(),
            partitioned: Vec::new(),
            seed: 0x4354_524C, // "CTRL"
        }
    }

    /// Set the fixed per-message latency.
    pub fn latency(mut self, latency: Nanos) -> Self {
        self.base_latency = latency;
        self
    }

    /// Charge the topology's AS-to-AS path delay per message.
    pub fn path_latency(mut self, on: bool) -> Self {
        self.use_path_latency = on;
        self
    }

    /// Set the per-attempt loss probability (clamped below 1.0).
    pub fn lossy(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 0.999);
        self
    }

    /// Set the retransmission timeout.
    pub fn retransmit_timeout(mut self, rto: Nanos) -> Self {
        self.rto = rto;
        self
    }

    /// Set the retransmission budget.
    pub fn max_retransmits(mut self, n: u32) -> Self {
        self.max_retransmits = n;
        self
    }

    /// Set the session backoff parameters.
    pub fn session(mut self, session: SessionConfig) -> Self {
        self.session = session;
        self
    }

    /// Add a global controller outage window.
    pub fn outage(mut self, start: Nanos, end: Nanos) -> Self {
        self.outages.push(Outage { asn: None, start, end });
        self
    }

    /// Add a single-AS controller outage window.
    pub fn as_outage(mut self, asn: AsNum, start: Nanos, end: Nanos) -> Self {
        self.outages.push(Outage { asn: Some(asn), start, end });
        self
    }

    /// Partition an AS off the control plane entirely.
    pub fn partition(mut self, asn: AsNum) -> Self {
        self.partitioned.push(asn);
        self
    }

    /// Set the loss-draw seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether this configuration can degrade delivery at all (false for
    /// [`CtrlConfig::ideal`]-like configs, whatever the seed).
    pub fn is_degraded(&self) -> bool {
        self.base_latency > 0
            || self.use_path_latency
            || self.loss > 0.0
            || !self.outages.is_empty()
            || !self.partitioned.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_not_degraded_and_builders_compose() {
        assert!(!CtrlConfig::ideal().is_degraded());
        let cfg = CtrlConfig::ideal()
            .latency(5 * MILLI)
            .lossy(0.1)
            .outage(SEC, 2 * SEC)
            .as_outage(7, 3 * SEC, 4 * SEC)
            .partition(9)
            .seed(42);
        assert!(cfg.is_degraded());
        assert_eq!(cfg.outages.len(), 2);
        assert_eq!(cfg.outages[0].asn, None);
        assert_eq!(cfg.outages[1].asn, Some(7));
        assert_eq!(cfg.partitioned, vec![9]);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn loss_is_clamped_below_one() {
        assert!(CtrlConfig::ideal().lossy(1.5).loss < 1.0);
    }
}
