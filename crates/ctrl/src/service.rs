//! The control-plane transport: a [`ControlChannel`] implementation with
//! per-AS controllers, sessions, path latency, loss and fault injection.

use std::collections::{BTreeMap, HashMap};

use netfence_sim::deploy::{ChannelVerdict, ControlChannel, Endpoint};
use netfence_sim::packet::AsNum;
use netfence_sim::prelude::Timeline;
use netfence_sim::rng::SimRng;
use netfence_sim::time::Nanos;
use netfence_sim::topology::{Network, NodeId};

use crate::config::CtrlConfig;
use crate::session::Session;

/// The asynchronous control-plane service for one deployment.
///
/// Install it on the deployment's bus before constructing the simulator:
///
/// ```ignore
/// deployment.bus.install_channel(Box::new(CtrlService::for_network(&net, cfg)));
/// ```
///
/// Every control message is then planned through [`ControlChannel::plan`]:
///
/// 1. **Partition** — messages from or to a partitioned AS are lost.
/// 2. **Sessions/outages** — if either endpoint's AS controller is inside
///    an outage window, the message is held until that AS's daemon
///    [`Session`] reconnects (exponential backoff past the outage end).
/// 3. **Loss & retransmission** — each attempt is lost with probability
///    `loss`; lost attempts retry after `rto` up to `max_retransmits`
///    times, after which the message is dropped for good.
/// 4. **Latency** — the surviving attempt is charged `base_latency` plus,
///    optionally, the topology's AS-to-AS path delay (shortest router
///    path between the two AS controllers, computed on demand and
///    cached).
#[derive(Debug)]
pub struct CtrlService {
    cfg: CtrlConfig,
    /// Node id → AS number (hosts and routers alike).
    node_as: Vec<AsNum>,
    /// AS → controller node (first router of the AS, by node order).
    // BTreeMap: Dijkstra seeds and the per-AS probe rows iterate these,
    // so their order must be the key order, not a hash order.
    controllers: BTreeMap<AsNum, usize>,
    /// Router-only adjacency: `adj[node]` lists `(neighbor, link delay)`.
    adj: Vec<Vec<(usize, Nanos)>>,
    /// Cached Dijkstra results: source AS → (dest AS → path delay).
    path_cache: HashMap<AsNum, HashMap<AsNum, Nanos>>,
    /// One daemon session per AS controller.
    sessions: BTreeMap<AsNum, Session>,
    rng: SimRng,
}

impl CtrlService {
    /// Build the service for `net` under `cfg`.
    pub fn for_network(net: &Network, cfg: CtrlConfig) -> Self {
        let node_as: Vec<AsNum> = net.nodes.iter().map(|n| n.as_num()).collect();
        let mut controllers = BTreeMap::new();
        for (i, n) in net.nodes.iter().enumerate() {
            if n.host_addr().is_none() {
                controllers.entry(n.as_num()).or_insert(i);
            }
        }
        let mut adj: Vec<Vec<(usize, Nanos)>> = vec![Vec::new(); net.nodes.len()];
        for l in &net.links {
            let (f, t) = (l.from.0, l.to.0);
            if net.nodes[f].host_addr().is_none() && net.nodes[t].host_addr().is_none() {
                adj[f].push((t, l.delay));
            }
        }
        let seed = cfg.seed;
        CtrlService {
            cfg,
            node_as,
            controllers,
            adj,
            path_cache: HashMap::new(),
            sessions: BTreeMap::new(),
            rng: SimRng::new(seed),
        }
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &CtrlConfig {
        &self.cfg
    }

    /// Completed reconnect cycles across every AS's daemon session.
    pub fn reconnects(&self) -> u64 {
        self.sessions.values().map(|s| s.reconnects).sum()
    }

    fn as_of(&self, endpoint: Endpoint) -> AsNum {
        let NodeId(node) = match endpoint {
            Endpoint::Host(n) | Endpoint::Router(n) => n,
        };
        self.node_as[node]
    }

    /// The outage window covering `now` for AS `asn`, widest end first
    /// (overlapping windows behave like one long outage).
    fn covering_outage(&self, asn: AsNum, now: Nanos) -> Option<(Nanos, Nanos)> {
        self.cfg
            .outages
            .iter()
            .filter(|o| (o.asn.is_none() || o.asn == Some(asn)) && o.start <= now && now < o.end)
            .map(|o| (o.start, o.end))
            .max_by_key(|&(_, end)| end)
    }

    /// When AS `asn`'s controller session can next carry a message.
    fn session_ready(&mut self, asn: AsNum, now: Nanos) -> Nanos {
        let outage = self.covering_outage(asn, now);
        let session = self.sessions.entry(asn).or_insert_with(|| Session::new(self.cfg.session));
        session.ready_at(now, outage)
    }

    /// Shortest-path delay between the controllers of two ASes (cached
    /// Dijkstra over the router graph; 0 within one AS or when no router
    /// path exists).
    fn path_delay(&mut self, from: AsNum, to: AsNum) -> Nanos {
        if from == to {
            return 0;
        }
        if !self.path_cache.contains_key(&from) {
            let table = self.dijkstra_from(from);
            self.path_cache.insert(from, table);
        }
        self.path_cache[&from].get(&to).copied().unwrap_or(0)
    }

    fn dijkstra_from(&self, from: AsNum) -> HashMap<AsNum, Nanos> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut out = HashMap::new();
        let Some(&root) = self.controllers.get(&from) else {
            return out;
        };
        let mut dist: Vec<Nanos> = vec![Nanos::MAX; self.adj.len()];
        dist[root] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, root)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &self.adj[u] {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        for (&asn, &ctrl) in &self.controllers {
            if dist[ctrl] != Nanos::MAX {
                out.insert(asn, dist[ctrl]);
            }
        }
        out
    }
}

impl ControlChannel for CtrlService {
    fn probe(&self, now: Nanos, out: &mut Timeline) {
        // Sessions live in a BTreeMap, so the rows emit in AS order.
        for (asn, session) in &self.sessions {
            let up = matches!(session.state(), crate::session::SessionState::Connected);
            out.record(now, "ctrl_session_up", format!("as:{asn}"), if up { 1.0 } else { 0.0 });
            out.record(now, "ctrl_reconnects", format!("as:{asn}"), session.reconnects as f64);
        }
    }

    fn plan(&mut self, now: Nanos, from: Option<Endpoint>, to: Endpoint) -> ChannelVerdict {
        let to_as = self.as_of(to);
        let from_as = from.map(|e| self.as_of(e));
        if self.cfg.partitioned.contains(&to_as)
            || from_as.is_some_and(|a| self.cfg.partitioned.contains(&a))
        {
            return ChannelVerdict::Lost { retransmits: 0 };
        }
        // Hold the message until both endpoints' controller sessions are up.
        let mut send_at = self.session_ready(to_as, now);
        if let Some(fa) = from_as {
            if fa != to_as {
                send_at = send_at.max(self.session_ready(fa, now));
            }
        }
        // Loss with bounded retransmission: count consecutive lost attempts.
        let mut retransmits = 0u32;
        if self.cfg.loss > 0.0 {
            while self.rng.unit() < self.cfg.loss {
                if retransmits == self.cfg.max_retransmits {
                    return ChannelVerdict::Lost { retransmits };
                }
                retransmits += 1;
            }
        }
        let mut latency = self.cfg.base_latency;
        if self.cfg.use_path_latency {
            // Controller-origin (deploy-time) messages are charged the path
            // from the destination's own controller: zero.
            if let Some(fa) = from_as {
                latency += self.path_delay(fa, to_as);
            }
        }
        ChannelVerdict::Deliver {
            at: send_at + latency + retransmits as Nanos * self.cfg.rto,
            retransmits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::time::{MILLI, SEC};
    use netfence_sim::topology::QueueKind;

    /// Two edge ASes behind a transit AS; 5 ms inter-router links.
    fn net() -> Network {
        let mut b = Network::builder();
        let rt = b.router(100, false);
        let r1 = b.router(1, true);
        let r2 = b.router(2, true);
        b.duplex(r1, rt, 10_000_000, 5 * MILLI, QueueKind::Red);
        b.duplex(r2, rt, 10_000_000, 5 * MILLI, QueueKind::Red);
        b.host(0x101, 1, r1, 100_000_000, MILLI);
        b.host(0x201, 2, r2, 100_000_000, MILLI);
        b.build()
    }

    fn router_of(net: &Network, host: u32) -> Endpoint {
        Endpoint::Router(net.access_router_of(host).unwrap())
    }

    #[test]
    fn ideal_config_delivers_instantly() {
        let net = net();
        let mut svc = CtrlService::for_network(&net, CtrlConfig::ideal());
        let to = router_of(&net, 0x201);
        for now in [0, SEC, 5 * SEC] {
            assert_eq!(
                svc.plan(now, None, to),
                ChannelVerdict::Deliver { at: now, retransmits: 0 }
            );
        }
    }

    #[test]
    fn base_and_path_latency_add_up() {
        let net = net();
        let cfg = CtrlConfig::ideal().latency(2 * MILLI).path_latency(true);
        let mut svc = CtrlService::for_network(&net, cfg);
        let from = router_of(&net, 0x101);
        let to = router_of(&net, 0x201);
        // AS 1 → AS 2 crosses two 5 ms links plus the 2 ms base.
        assert_eq!(
            svc.plan(0, Some(from), to),
            ChannelVerdict::Deliver { at: 12 * MILLI, retransmits: 0 }
        );
        // Same-AS and controller-origin messages pay only the base.
        assert_eq!(
            svc.plan(0, Some(to), to),
            ChannelVerdict::Deliver { at: 2 * MILLI, retransmits: 0 }
        );
        assert_eq!(
            svc.plan(0, None, to),
            ChannelVerdict::Deliver { at: 2 * MILLI, retransmits: 0 }
        );
    }

    #[test]
    fn partitioned_as_never_receives_or_sends() {
        let net = net();
        let mut svc = CtrlService::for_network(&net, CtrlConfig::ideal().partition(2));
        let from = router_of(&net, 0x101);
        let to = router_of(&net, 0x201);
        assert_eq!(svc.plan(0, None, to), ChannelVerdict::Lost { retransmits: 0 });
        assert_eq!(svc.plan(0, Some(to), from), ChannelVerdict::Lost { retransmits: 0 });
        // The untouched AS still communicates internally.
        assert!(matches!(svc.plan(0, None, from), ChannelVerdict::Deliver { .. }));
    }

    #[test]
    fn outage_holds_messages_until_backoff_reconnect() {
        let net = net();
        let mut svc = CtrlService::for_network(&net, CtrlConfig::ideal().outage(SEC, 2 * SEC));
        let to = router_of(&net, 0x201);
        // Before the outage: instant.
        assert_eq!(svc.plan(0, None, to), ChannelVerdict::Deliver { at: 0, retransmits: 0 });
        // During the outage: held past the end, to the reconnect instant.
        match svc.plan(SEC + MILLI, None, to) {
            ChannelVerdict::Deliver { at, .. } => assert!(at >= 2 * SEC, "held only to {at}"),
            lost => panic!("outage lost the message: {lost:?}"),
        }
        assert!(svc.reconnects() >= 1);
        // After the outage: instant again.
        assert_eq!(
            svc.plan(3 * SEC, None, to),
            ChannelVerdict::Deliver { at: 3 * SEC, retransmits: 0 }
        );
    }

    #[test]
    fn loss_retransmits_and_eventually_gives_up() {
        let net = net();
        let cfg = CtrlConfig::ideal().lossy(0.5).retransmit_timeout(100 * MILLI).seed(7);
        let mut svc = CtrlService::for_network(&net, cfg);
        let to = router_of(&net, 0x201);
        let mut delivered = 0u32;
        let mut lost = 0u32;
        let mut retransmitted = 0u32;
        for _ in 0..400 {
            match svc.plan(0, None, to) {
                ChannelVerdict::Deliver { at, retransmits } => {
                    delivered += 1;
                    retransmitted += retransmits;
                    assert_eq!(at, retransmits as Nanos * 100 * MILLI);
                }
                ChannelVerdict::Lost { retransmits } => {
                    lost += 1;
                    assert_eq!(retransmits, 3);
                }
            }
        }
        // p(loss)=0.5, budget 3: ~93.75% delivered, ~6.25% lost for good.
        assert!(delivered > 300, "delivered {delivered}");
        assert!(lost > 5, "lost {lost}");
        assert!(retransmitted > 100, "retransmits {retransmitted}");
    }
}
