//! # netfence-ctrl
//!
//! The asynchronous control-plane service: what happens to a closed-loop
//! DoS defense when its *own* coordination traffic has to cross a real
//! internet.
//!
//! The simulator's [`ControlPlane`] bus is, by default, an instant-reliable
//! oracle: every Passport key announcement and StopIt filter request
//! arrives at the current simulated instant. That forecloses the question
//! AITF makes central — *how fast does a defense react* when control
//! messages are delayed, lost, or the controller is down? This crate
//! supplies the missing transport as a [`ControlChannel`] implementation
//! plus the policy-state model that goes with it:
//!
//! * [`service::CtrlService`] — the transport. Per-AS controllers with
//!   daemon [`session::Session`]s (exponential-backoff reconnect),
//!   propagation latency drawn from the topology's AS-to-AS path delay,
//!   loss with bounded retransmission, and fault injection (controller
//!   outage windows, partitioned ASes). Configured by
//!   [`config::CtrlConfig`].
//! * [`policy::PolicyStore`] — TTL'd policy rules with capacity limits:
//!   StopIt filters, Passport/NetFence keys and TVA+ capability grants
//!   expire and must be refreshed over the (possibly degraded) transport.
//!
//! The degenerate configuration [`config::CtrlConfig::ideal`] (zero
//! latency, zero loss, no faults) reproduces the old bus byte-for-byte —
//! the regression suite pins this for every defense.
//!
//! [`ControlPlane`]: netfence_sim::deploy::ControlPlane
//! [`ControlChannel`]: netfence_sim::deploy::ControlChannel

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod policy;
pub mod service;
pub mod session;

/// Commonly used re-exports.
pub mod prelude {
    pub use crate::config::{CtrlConfig, Outage, SessionConfig};
    pub use crate::policy::{PolicyStats, PolicyStore};
    pub use crate::service::CtrlService;
    pub use crate::session::{Session, SessionState};
}

pub use prelude::*;
