//! Daemon ↔ controller sessions with exponential-backoff reconnect.
//!
//! Every agent (host shim or router agent) of an AS is modelled as a
//! daemon holding a streaming session to its AS controller. While the
//! controller is up the session is transparent. When an outage window
//! begins the daemon notices the broken stream immediately, enters
//! [`SessionState::Reconnecting`] and retries with exponential backoff:
//! the first retry `backoff_base` after the disconnect, then doubling up
//! to `backoff_max`. The first retry at or after the outage's end
//! succeeds — so control messages queued during the outage are held until
//! that reconnect instant, not until the outage end itself.

use netfence_sim::time::Nanos;

use crate::config::SessionConfig;

/// Connection state of one daemon session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// The stream to the controller is up.
    Connected,
    /// The stream broke; the daemon is backing off.
    Reconnecting {
        /// Retry attempts made so far in this outage.
        attempt: u32,
        /// When the next retry fires.
        next_try: Nanos,
    },
}

/// One daemon's session to its AS controller.
#[derive(Debug, Clone)]
pub struct Session {
    cfg: SessionConfig,
    state: SessionState,
    /// Outage start the current/last reconnect cycle belongs to (dedups
    /// the reconnect count when many messages probe the same outage).
    last_outage: Option<Nanos>,
    /// Completed reconnect cycles.
    pub reconnects: u64,
}

impl Session {
    /// A fresh, connected session.
    pub fn new(cfg: SessionConfig) -> Self {
        Session { cfg, state: SessionState::Connected, last_outage: None, reconnects: 0 }
    }

    /// Current connection state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The earliest instant at or after `now` this session can carry a
    /// message, given the currently covering outage window (if any).
    ///
    /// With no outage the session is (or becomes) [`SessionState::Connected`]
    /// and the message goes out at `now`. Inside an outage the session
    /// walks its backoff schedule and the message is held until the first
    /// retry that lands after the outage ends.
    pub fn ready_at(&mut self, now: Nanos, outage: Option<(Nanos, Nanos)>) -> Nanos {
        match outage {
            None => {
                self.state = SessionState::Connected;
                now
            }
            Some((start, end)) => {
                if self.last_outage != Some(start) {
                    self.last_outage = Some(start);
                    self.reconnects += 1;
                }
                let (attempt, reconnect_at) = reconnect_schedule(self.cfg, start, end);
                self.state = SessionState::Reconnecting { attempt, next_try: reconnect_at };
                reconnect_at.max(now)
            }
        }
    }
}

/// Walk the exponential-backoff schedule of a session disconnected at
/// `start` whose controller returns at `end`: retries at `start + b`,
/// `start + b + 2b`, …, each delay doubling and capped at `backoff_max`.
/// Returns `(attempts, reconnect_instant)` — the count and time of the
/// first retry at or after `end`.
///
/// All arithmetic saturates: a pathological outage (or an adversarially
/// large `backoff_max`) walks the retry clock toward `Nanos::MAX` instead
/// of overflowing, and the doubling itself cannot wrap before the cap
/// clamps it.
pub fn reconnect_schedule(cfg: SessionConfig, start: Nanos, end: Nanos) -> (u32, Nanos) {
    let base = cfg.backoff_base.max(1);
    let cap = cfg.backoff_max.max(base);
    let mut t = start;
    let mut delay = base;
    let mut attempt = 0u32;
    loop {
        t = t.saturating_add(delay);
        attempt += 1;
        if t >= end {
            return (attempt, t);
        }
        delay = delay.saturating_mul(2).min(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::time::{MILLI, SEC};

    fn cfg() -> SessionConfig {
        SessionConfig { backoff_base: 250 * MILLI, backoff_max: 8 * SEC }
    }

    #[test]
    fn backoff_schedule_doubles_until_reconnect() {
        // Disconnect at 0, controller back at 1s. Retries at 250ms, 750ms,
        // 1.75s → the third attempt is the first at/after 1s.
        let (attempts, at) = reconnect_schedule(cfg(), 0, SEC);
        assert_eq!(attempts, 3);
        assert_eq!(at, 1_750 * MILLI);
    }

    #[test]
    fn instant_recovery_reconnects_on_first_retry() {
        let (attempts, at) = reconnect_schedule(cfg(), 0, 1);
        assert_eq!(attempts, 1);
        assert_eq!(at, 250 * MILLI);
    }

    #[test]
    fn backoff_delay_is_capped() {
        // A very long outage: delays double 250ms → 8s then stay there, so
        // the reconnect lands within one cap of the outage end.
        let (_, at) = reconnect_schedule(cfg(), 0, 100 * SEC);
        assert!((100 * SEC..108 * SEC).contains(&at), "reconnect at {at}");
    }

    #[test]
    fn pathological_outage_saturates_instead_of_overflowing() {
        // An outage pinned against the end of representable time with an
        // uncapped doubling schedule: the retry clock saturates at
        // `Nanos::MAX` rather than wrapping (which would return a retry
        // instant *before* the outage began).
        let big = SessionConfig { backoff_base: SEC, backoff_max: Nanos::MAX };
        let (attempts, at) = reconnect_schedule(big, Nanos::MAX - SEC, Nanos::MAX);
        assert_eq!(at, Nanos::MAX);
        assert!(attempts >= 1);
        // A multi-hour outage under the default cap still reconnects
        // within one cap of the outage end.
        let six_hours = 6 * 3600 * SEC;
        let (_, at) = reconnect_schedule(cfg(), 0, six_hours);
        assert!(
            (six_hours..six_hours + 8 * SEC).contains(&at),
            "reconnect at {at} for a {six_hours}ns outage"
        );
    }

    #[test]
    fn session_tracks_state_and_counts_outages_once() {
        let mut s = Session::new(cfg());
        assert_eq!(s.ready_at(SEC, None), SEC);
        assert_eq!(s.state(), SessionState::Connected);
        // Two messages probing the same outage count one reconnect cycle.
        let a = s.ready_at(2 * SEC, Some((2 * SEC, 3 * SEC)));
        let b = s.ready_at(2 * SEC + MILLI, Some((2 * SEC, 3 * SEC)));
        assert_eq!(a, b);
        assert!(a >= 3 * SEC);
        assert!(matches!(s.state(), SessionState::Reconnecting { .. }));
        assert_eq!(s.reconnects, 1);
        // Recovery after the outage.
        assert_eq!(s.ready_at(4 * SEC, None), 4 * SEC);
        assert_eq!(s.state(), SessionState::Connected);
    }
}
