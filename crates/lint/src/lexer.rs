//! A lightweight Rust lexer: just enough token structure for the lint
//! rules to reason about identifiers, punctuation and comments without a
//! full parser (in the spirit of the vendored criterion/proptest shims —
//! a small offline stand-in for the part of the real thing we need).
//!
//! The lexer understands the token classes that matter for not producing
//! false positives: line/block comments (nested), string/char/byte
//! literals, raw strings with arbitrary `#` fences, and lifetimes vs char
//! literals. Everything the rules match on — `HashMap`, `iter`,
//! `Instant`, `RouterAction` — arrives as an [`TokKind::Ident`] token, so
//! occurrences inside strings or comments can never fire a rule.

/// The classes of token the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `match`, `_`, ...).
    Ident,
    /// Punctuation; multi-char operators the rules need (`::`, `=>`,
    /// `->`, `#!`) are fused into one token.
    Punct,
    /// String / char / byte / numeric literal (content not interpreted).
    Literal,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// A `//` line comment, with its full text (used for `lint:allow`).
    LineComment,
    /// A `/* ... */` block comment (nested fences handled).
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lex `source` into a token stream. The lexer never fails: unexpected
/// bytes become single-character [`TokKind::Punct`] tokens, so a file a
/// future Rust edition extends still scans.
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer { src: source.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'r' if matches!(self.peek(1), Some(b'"') | Some(b'#'))
                    && self.raw_string_ahead(1) =>
                {
                    self.raw_string(1)
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.string_literal();
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                    self.raw_string(2)
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_literal();
                }
                b'\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    /// Whether `r`/`br` at `self.pos` starts a raw string: `#*` then `"`.
    fn raw_string_ahead(&self, prefix: usize) -> bool {
        let mut i = self.pos + prefix;
        while self.src.get(i) == Some(&b'#') {
            i += 1;
        }
        self.src.get(i) == Some(&b'"')
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let line = self.line;
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::BlockComment, text, line);
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    fn raw_string(&mut self, prefix: usize) {
        let line = self.line;
        self.pos += prefix;
        let mut hashes = 0usize;
        while self.src.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let mut fence = vec![b'#'; hashes];
        fence.insert(0, b'"');
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.src[self.pos..].starts_with(&fence) {
                self.pos += fence.len();
                break;
            }
            self.pos += 1;
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    /// A `'`: either a char literal or a lifetime/label.
    fn quote(&mut self) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => after != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            let start = self.pos;
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            let line = self.line;
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.char_literal();
        }
    }

    fn char_literal(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    // Not actually a char literal; bail without consuming
                    // the line (keeps the lexer robust on odd input).
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    fn number(&mut self) {
        let line = self.line;
        // Numeric literals may embed `_`, type suffixes, hex digits and a
        // decimal point; none of the rules interpret the value.
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'.') {
            // Stop before `..` range operators.
            if self.src[self.pos] == b'.' && self.peek(1) == Some(b'.') {
                break;
            }
            self.pos += 1;
        }
        self.push(TokKind::Literal, String::new(), line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let line = self.line;
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let c = self.src[self.pos];
        let fused = match (c, self.peek(1)) {
            (b':', Some(b':')) => Some("::"),
            (b'=', Some(b'>')) => Some("=>"),
            (b'-', Some(b'>')) => Some("->"),
            (b'#', Some(b'!')) => Some("#!"),
            _ => None,
        };
        match fused {
            Some(s) => {
                self.pos += 2;
                self.push(TokKind::Punct, s.to_string(), line);
            }
            None => {
                self.pos += 1;
                self.push(TokKind::Punct, (c as char).to_string(), line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap::iter()";
            let r = r#"HashMap "quoted" inside"#;
            let c = 'h';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Literal).count(), 1);
    }

    #[test]
    fn fused_puncts() {
        let toks = lex("x :: y => z -> w #![attr]");
        let puncts: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Punct).map(|t| t.text.as_str()).collect();
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"=>"));
        assert!(puncts.contains(&"->"));
        assert!(puncts.contains(&"#!"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline string\"\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }
}
