//! Workspace discovery: members from the root `Cargo.toml`, then every
//! `.rs` file under each member's `src/`, `tests/`, `examples/` and
//! `benches/` trees (plus the root facade crate's own). Paths are
//! reported workspace-relative with `/` separators so `lint.toml` zone
//! prefixes and diagnostics are stable across platforms.

use std::fs;
use std::path::{Path, PathBuf};

/// One source file queued for analysis.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative, `/`-separated.
    pub path: String,
    pub source: String,
    /// Whether this file is a crate root (`src/lib.rs` / `src/main.rs`),
    /// where the `unsafe-code` rule checks for `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// Parse the `members = [ ... ]` array of the root manifest's
/// `[workspace]` section without a TOML dependency.
pub fn workspace_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_array = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if !in_array {
            if let Some(rest) = line.strip_prefix("members") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    in_array = true;
                    collect_quoted(rest, &mut members);
                    if rest.contains(']') {
                        break;
                    }
                }
            }
            continue;
        }
        collect_quoted(line, &mut members);
        if line.contains(']') {
            break;
        }
    }
    members
}

fn collect_quoted(line: &str, out: &mut Vec<String>) {
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let Some(len) = rest[start + 1..].find('"') else { break };
        out.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + 2 + len..];
    }
}

/// Enumerate every analyzable `.rs` file of the workspace at `root`,
/// sorted by path so diagnostics and the JSON report are deterministic.
pub fn discover(root: &Path) -> Result<Vec<FileInput>, String> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read {}: {e}", root.join("Cargo.toml").display()))?;
    let mut dirs: Vec<String> = workspace_members(&manifest);
    // The root facade package ships its own src/tests/examples.
    dirs.push(String::new());

    let mut files = Vec::new();
    for member in &dirs {
        let base = if member.is_empty() { root.to_path_buf() } else { root.join(member) };
        for sub in ["src", "tests", "examples", "benches"] {
            let dir = base.join(sub);
            if dir.is_dir() {
                walk(&dir, &mut files)?;
            }
        }
    }
    let mut inputs = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes the workspace", file.display()))?;
        let path =
            rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/");
        let source = fs::read_to_string(&file).map_err(|e| format!("cannot read {path}: {e}"))?;
        let is_crate_root = path.ends_with("src/lib.rs") || path.ends_with("src/main.rs");
        inputs.push(FileInput { path, source, is_crate_root });
    }
    inputs.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(inputs)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            walk(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiline_members_array() {
        let manifest = "[workspace]\nresolver = \"2\"\nmembers = [\n  \"crates/core\",\n  \"crates/sim\",\n]\n";
        assert_eq!(workspace_members(manifest), ["crates/core", "crates/sim"]);
    }

    #[test]
    fn parses_single_line_members_array() {
        let manifest = "members = [\"a\", \"b\"]";
        assert_eq!(workspace_members(manifest), ["a", "b"]);
    }
}
