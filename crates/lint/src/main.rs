//! CLI entry point: `cargo run -p netfence-lint [-- flags]`.
//!
//! Flags:
//! * `--deny-all`   — also fail on warnings (unused `lint:allow`s); CI mode.
//! * `--root PATH`  — workspace root (default: the lint crate's `../..`).
//! * `--json PATH`  — JSON report path (default `target/netfence_lint.json`).
//! * `--list-rules` — print the rule taxonomy and exit.
//! * `--quiet`      — suppress per-diagnostic output, print the summary only.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut quiet = false;
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--quiet" => quiet = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = args.next().map(PathBuf::from),
            "--list-rules" => {
                for rule in netfence_lint::rules::RULE_NAMES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("netfence-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        // The lint crate lives at <workspace>/crates/lint.
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
    });
    let report = match netfence_lint::check_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("netfence-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
    }
    let errors = report.errors();
    let warnings = report.warnings();
    let suppressed = report.diagnostics.iter().filter(|d| d.suppressed_by.is_some()).count();
    println!(
        "netfence-lint: {} files, {errors} error(s), {warnings} warning(s), {suppressed} justified allow(s)",
        report.files
    );

    let json_path = json.unwrap_or_else(|| root.join("target/netfence_lint.json"));
    if let Some(dir) = json_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("netfence-lint: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    if errors > 0 || (deny_all && warnings > 0) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
