//! The `// lint:allow(rule-name): reason` escape hatch.
//!
//! An allow suppresses findings of `rule-name` on its *target line*: the
//! line the comment trails (when code precedes it on the same line), or
//! the next line that holds code (for a full-line comment — stacked
//! allows all target the first code line below). The reason string is
//! mandatory; an empty reason is itself a violation (`unjustified-allow`)
//! so the justification policy is machine-enforced, and an allow that
//! suppresses nothing is reported (`unused-allow`) so stale annotations
//! cannot accumulate.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Tok, TokKind};

/// One parsed allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
    /// Set once a finding was suppressed by this allow.
    pub used: bool,
}

/// Extract every `lint:allow` annotation from a token stream.
pub fn collect(toks: &[Tok]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        let Some((rule, reason)) = parse_comment(&tok.text) else { continue };
        // Trailing comment → the code line it shares; full-line comment →
        // the first following line with a non-comment token.
        let trails_code =
            toks[..i].iter().rev().take_while(|t| t.line == tok.line).any(|t| !t.is_comment());
        let target_line = if trails_code {
            tok.line
        } else {
            toks[i + 1..].iter().find(|t| !t.is_comment()).map(|t| t.line).unwrap_or(tok.line)
        };
        out.push(Allow { rule, reason, line: tok.line, target_line, used: false });
    }
    out
}

/// Parse `// lint:allow(rule): reason` out of a line comment's text.
/// Returns `(rule, reason)`; the reason may be empty (the caller turns
/// that into an `unjustified-allow` finding). Doc comments (`///`,
/// `//!`) never carry annotations — they may legitimately *describe*
/// the syntax.
fn parse_comment(text: &str) -> Option<(String, String)> {
    if text.starts_with("///") || text.starts_with("//!") {
        return None;
    }
    let rest = text.split_once("lint:allow")?.1;
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let (rule, after) = inner.split_once(')')?;
    let reason = after.trim_start().strip_prefix(':').unwrap_or("").trim();
    Some((rule.trim().to_string(), reason.to_string()))
}

/// Apply `allows` to `diags` in place: matching findings gain a
/// `suppressed_by` reason. Returns the policy findings the allows
/// themselves generate (empty reasons, unknown rules, unused allows).
pub fn apply(
    path: &str,
    allows: &mut [Allow],
    diags: &mut [Diagnostic],
    known_rules: &[&str],
) -> Vec<Diagnostic> {
    for diag in diags.iter_mut() {
        if diag.suppressed_by.is_some() {
            continue;
        }
        if let Some(allow) = allows
            .iter_mut()
            .find(|a| a.rule == diag.rule && a.target_line == diag.line && !a.reason.is_empty())
        {
            allow.used = true;
            diag.suppressed_by = Some(allow.reason.clone());
        }
    }
    let mut policy = Vec::new();
    for allow in allows {
        if allow.reason.is_empty() {
            policy.push(Diagnostic::error(
                "unjustified-allow",
                path,
                allow.line,
                format!(
                    "`lint:allow({})` carries no justification — write `lint:allow({}): <reason>`",
                    allow.rule, allow.rule
                ),
            ));
        } else if !known_rules.contains(&allow.rule.as_str()) {
            policy.push(Diagnostic::error(
                "unknown-rule",
                path,
                allow.line,
                format!("`lint:allow({})` names a rule this pass does not define", allow.rule),
            ));
        } else if !allow.used {
            policy.push(Diagnostic {
                rule: "unused-allow".to_string(),
                path: path.to_string(),
                line: allow.line,
                message: format!(
                    "`lint:allow({})` suppresses nothing on line {}",
                    allow.rule, allow.target_line
                ),
                severity: Severity::Warning,
                suppressed_by: None,
            });
        }
    }
    policy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_and_stacked_targets() {
        let src = "let a = 1; // lint:allow(wall-clock): trailing\n// lint:allow(unseeded-entropy): stacked one\n// lint:allow(untyped-drop): stacked two\nlet b = 2;\n";
        let allows = collect(&lex(src));
        assert_eq!(allows.len(), 3);
        assert_eq!(allows[0].target_line, 1);
        assert_eq!(allows[1].target_line, 4);
        assert_eq!(allows[2].target_line, 4);
    }

    #[test]
    fn empty_reason_and_unknown_rule_are_findings() {
        let src = "// lint:allow(wall-clock):\nlet a = 1;\n// lint:allow(no-such-rule): why\nlet b = 2;\n";
        let mut allows = collect(&lex(src));
        let mut diags = Vec::new();
        let policy = apply("f.rs", &mut allows, &mut diags, &["wall-clock"]);
        assert!(policy.iter().any(|d| d.rule == "unjustified-allow"));
        assert!(policy.iter().any(|d| d.rule == "unknown-rule"));
    }

    #[test]
    fn suppression_marks_use_and_unused_is_warned() {
        let src = "// lint:allow(wall-clock): timing a build\nlet t = now();\n// lint:allow(wall-clock): stale\nlet u = 1;\n";
        let mut allows = collect(&lex(src));
        let mut diags = vec![Diagnostic::error("wall-clock", "f.rs", 2, "tick".into())];
        let policy = apply("f.rs", &mut allows, &mut diags, &["wall-clock"]);
        assert_eq!(diags[0].suppressed_by.as_deref(), Some("timing a build"));
        assert!(policy.iter().any(|d| d.rule == "unused-allow" && d.line == 3));
    }
}
