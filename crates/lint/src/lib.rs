//! # netfence-lint
//!
//! An offline, dependency-free static-analysis pass over the workspace
//! that enforces the determinism and drop-accounting invariants every
//! figure-equivalence claim rests on (`DESIGN.md` §13). Seven rules:
//!
//! 1. `nondeterministic-iteration` — no `HashMap`/`HashSet` iteration in
//!    export-path modules (anything feeding `Record`, `DefenseReport`,
//!    `BENCH_results.json` or telemetry exports);
//! 2. `wall-clock` — `Instant::now`/`SystemTime` only in the bench zone;
//! 3. `unseeded-entropy` — no RNG construction outside `SimRng` seed
//!    substreams;
//! 4. `untyped-drop` — every `RouterAction::Drop` site references a
//!    `DropCause` mapping;
//! 5. `wildcard-defense-match` — no `_` arms in matches over
//!    `DefenseKind`/`DropCause` in systems/experiments code;
//! 6. `unsafe-code` — every crate root carries `#![forbid(unsafe_code)]`;
//! 7. `panic-prone` — no `.unwrap()`/`.expect(...)`/`panic!` in the
//!    fault-injected runtime crates (core, sim, systems, ctrl, faults):
//!    the chaos engine's no-panic property is only as strong as the
//!    weakest `unwrap` on a fault path.
//!
//! Each rule honors the inline escape hatch
//! `// lint:allow(rule-name): reason` — the justification string is
//! mandatory and machine-checked. Zones come from `lint.toml` at the
//! workspace root; run as `cargo run -p netfence-lint` (CI adds
//! `--deny-all`), which prints rustc-style diagnostics and writes a
//! machine-readable JSON report to `target/netfence_lint.json`.

#![forbid(unsafe_code)]

pub mod allow;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::path::Path;

use config::LintConfig;
use diag::{Diagnostic, Severity};
use rules::{all_rules, Context, SourceFile, RULE_NAMES};
use workspace::FileInput;

/// The outcome of a full analysis run.
pub struct Report {
    /// Every diagnostic, sorted by (path, line, rule); suppressed
    /// findings are retained with their justification.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// Unsuppressed errors (always fail the run).
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error && d.suppressed_by.is_none())
            .count()
    }

    /// Unsuppressed warnings (fail under `--deny-all`).
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning && d.suppressed_by.is_none())
            .count()
    }

    /// The machine-readable JSON report.
    pub fn to_json(&self) -> String {
        diag::to_json(&self.diagnostics, self.files)
    }
}

/// Analyze a set of in-memory files (the fixture tests drive this
/// directly; [`check_workspace`] feeds it the real tree).
pub fn check_files(files: &[FileInput], config: &LintConfig) -> Report {
    let prepared: Vec<SourceFile> =
        files.iter().map(|f| SourceFile::prepare(&f.path, &f.source, f.is_crate_root)).collect();
    let ctx = Context::build(config, &prepared);
    let rules = all_rules();
    let mut diagnostics = Vec::new();
    for file in &prepared {
        let mut diags = Vec::new();
        for rule in &rules {
            rule.check(file, &ctx, &mut diags);
        }
        let mut allows = allow::collect(&file.toks);
        let policy = allow::apply(&file.path, &mut allows, &mut diags, &RULE_NAMES);
        diagnostics.extend(diags);
        diagnostics.extend(policy);
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Report { diagnostics, files: files.len() }
}

/// Analyze the workspace rooted at `root` using its `lint.toml`.
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    let config_text = std::fs::read_to_string(root.join("lint.toml"))
        .map_err(|e| format!("cannot read {}: {e}", root.join("lint.toml").display()))?;
    let config = LintConfig::parse(&config_text)?;
    let files = workspace::discover(root)?;
    Ok(check_files(&files, &config))
}
