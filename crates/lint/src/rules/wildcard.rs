//! Rule `wildcard-defense-match`: in systems/experiments code, a `match`
//! that names `DefenseKind::…` or `DropCause::…` arms must not also carry
//! a `_` arm — adding a sixth defense or a twelfth drop cause has to be a
//! compile-review event at every dispatch site, never a silent
//! fall-through. Matches over other types (tuples, options) are not the
//! rule's business, so detection keys on the arm patterns, not the
//! scrutinee: at least one arm path of the protected enums plus a
//! top-level `_` arm fires.

use super::{Context, Rule, SourceFile};
use crate::diag::Diagnostic;

pub struct WildcardDefenseMatch;

const PROTECTED: [&str; 2] = ["DefenseKind", "DropCause"];

impl Rule for WildcardDefenseMatch {
    fn name(&self) -> &'static str {
        "wildcard-defense-match"
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !ctx.config.path_in("zones", "wildcard", &file.path) {
            return;
        }
        let s = &file.sig;
        for k in 0..s.len() {
            if file.test_code(k) || !file.tok(k).is_ident("match") {
                continue;
            }
            let Some(body) = match_body(file, k) else { continue };
            let Some(close) = file.matching(body, "{", "}") else { continue };
            let mut protected_arm = None;
            let mut wildcard_line = None;
            // Walk the arms at depth 1 inside the match body; `=>` at
            // depth 1 separates a pattern from its expression.
            let mut brace = 1i32;
            let mut bracket = 0i32;
            let mut in_pattern = true;
            for j in body + 1..close {
                let t = file.tok(j);
                match t.text.as_str() {
                    "{" if t.is_punct("{") => brace += 1,
                    "}" if t.is_punct("}") => {
                        brace -= 1;
                        // Leaving a `{ … }` arm body returns to patterns.
                        if brace == 1 {
                            in_pattern = true;
                        }
                    }
                    "(" | "[" if t.kind == crate::lexer::TokKind::Punct => bracket += 1,
                    ")" | "]" if t.kind == crate::lexer::TokKind::Punct => bracket -= 1,
                    "," if t.is_punct(",") && brace == 1 && bracket == 0 => in_pattern = true,
                    "=>" if t.is_punct("=>") && brace == 1 && bracket == 0 => in_pattern = false,
                    _ => {}
                }
                if !(in_pattern && brace == 1 && bracket == 0) {
                    continue;
                }
                if t.kind == crate::lexer::TokKind::Ident
                    && PROTECTED.contains(&t.text.as_str())
                    && j + 1 < close
                    && file.tok(j + 1).is_punct("::")
                {
                    protected_arm = Some(t.text.clone());
                }
                if t.is_ident("_")
                    && j + 1 < close
                    && (file.tok(j + 1).is_punct("=>")
                        || file.tok(j + 1).is_punct("|")
                        || file.tok(j + 1).is_ident("if"))
                {
                    wildcard_line = Some(t.line);
                }
            }
            if let (Some(enum_name), Some(line)) = (protected_arm, wildcard_line) {
                out.push(Diagnostic::error(
                    self.name(),
                    &file.path,
                    line,
                    format!(
                        "wildcard `_` arm in a match over `{enum_name}`; enumerate every variant so new defenses/causes cannot silently fall through"
                    ),
                ));
            }
        }
    }
}

/// The sig-position of the `{` opening the body of the `match` at `k`
/// (the scrutinee cannot contain a top-level `{`).
fn match_body(file: &SourceFile, k: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in k + 1..(k + 200).min(file.sig.len()) {
        let t = file.tok(j);
        match t.text.as_str() {
            "(" | "[" if t.kind == crate::lexer::TokKind::Punct => depth += 1,
            ")" | "]" if t.kind == crate::lexer::TokKind::Punct => depth -= 1,
            "{" if t.is_punct("{") && depth == 0 => return Some(j),
            _ => {}
        }
    }
    None
}
