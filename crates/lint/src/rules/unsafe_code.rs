//! Rule `unsafe-code`: every crate root must carry
//! `#![forbid(unsafe_code)]` (or `deny`). The simulation's determinism
//! claims are memory-safety claims too; a crate that quietly admits
//! `unsafe` gets to break both. The finding anchors to the crate root's
//! first significant token so a justified `lint:allow` placed above the
//! inner attributes can waive it.

use super::{Context, Rule, SourceFile};
use crate::diag::Diagnostic;

pub struct UnsafeCode;

impl Rule for UnsafeCode {
    fn name(&self) -> &'static str {
        "unsafe-code"
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !file.is_crate_root {
            return;
        }
        let s = &file.sig;
        for k in 0..s.len() {
            // `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]`.
            if file.tok(k).is_punct("#!")
                && k + 5 < s.len()
                && file.tok(k + 1).is_punct("[")
                && (file.tok(k + 2).is_ident("forbid") || file.tok(k + 2).is_ident("deny"))
                && file.tok(k + 3).is_punct("(")
                && file.tok(k + 4).is_ident("unsafe_code")
            {
                return;
            }
        }
        let line = s.first().map(|&i| file.toks[i].line).unwrap_or(1);
        out.push(Diagnostic::error(
            self.name(),
            &file.path,
            line,
            "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}
