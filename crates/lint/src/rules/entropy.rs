//! Rule `unseeded-entropy`: any randomness source not derived from
//! `SimRng` (or an explicit seed substream of it) is banned — everywhere,
//! including test code, because an unseeded RNG makes both the
//! simulation and its regression tests unreproducible. The banned token
//! list lives in `lint.toml` so a new hazard (say, a vendored `rand`
//! gaining `from_entropy`) is one config line, not a code change.

use super::{Context, Rule, SourceFile};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use std::collections::BTreeSet;

pub struct UnseededEntropy;

const DEFAULT_BANNED: [&str; 8] = [
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "RandomState",
    "DefaultHasher",
    "SipHasher",
];

impl Rule for UnseededEntropy {
    fn name(&self) -> &'static str {
        "unseeded-entropy"
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let configured = ctx.config.list("rules.unseeded-entropy", "banned");
        let banned: BTreeSet<&str> = if configured.is_empty() {
            DEFAULT_BANNED.iter().copied().collect()
        } else {
            configured.iter().map(String::as_str).collect()
        };
        for k in 0..file.sig.len() {
            let t = file.tok(k);
            if t.kind == TokKind::Ident && banned.contains(t.text.as_str()) {
                out.push(Diagnostic::error(
                    self.name(),
                    &file.path,
                    t.line,
                    format!(
                        "`{}` is an unseeded entropy source; derive randomness from `SimRng` seed substreams",
                        t.text
                    ),
                ));
            }
        }
    }
}
