//! Rule `wall-clock`: `Instant::now()` / `SystemTime` are banned outside
//! the bench harness (`crates/bench`, `crates/criterion-shim`). Simulated
//! time comes from the event clock; a wall-clock read anywhere else
//! either leaks real time into a `Record` or tempts someone to. The
//! handful of deliberate timing sites (scaling experiments that report
//! wall-seconds next to the simulated numbers) carry justified
//! `lint:allow` annotations instead.

use super::{Context, Rule, SourceFile};
use crate::diag::Diagnostic;

pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if ctx.config.path_in("zones", "bench", &file.path) {
            return;
        }
        let s = &file.sig;
        for k in 0..s.len() {
            if file.test_code(k) {
                continue;
            }
            let t = file.tok(k);
            if t.is_ident("SystemTime") {
                out.push(Diagnostic::error(
                    self.name(),
                    &file.path,
                    t.line,
                    "`SystemTime` outside the bench zone; simulated time must come from the event clock".to_string(),
                ));
            }
            if t.is_ident("Instant")
                && k + 2 < s.len()
                && file.tok(k + 1).is_punct("::")
                && file.tok(k + 2).is_ident("now")
            {
                out.push(Diagnostic::error(
                    self.name(),
                    &file.path,
                    t.line,
                    "`Instant::now()` outside the bench zone; simulated time must come from the event clock".to_string(),
                ));
            }
        }
    }
}
