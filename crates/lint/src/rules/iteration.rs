//! Rule `nondeterministic-iteration`: iterating a `HashMap`/`HashSet`
//! (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for … in &map`, …) is
//! banned in export-path modules — anything that feeds `Record`,
//! `DefenseReport`, `BENCH_results.json` or a telemetry export. Hash
//! iteration order is seeded per process, so one stray loop turns a
//! byte-identical `Record` into a roulette wheel (the exact bug class
//! PR 8 fixed by hand with `BTreeMap` sorting).
//!
//! Detection is module-aware and type-approximate: the rule tracks which
//! names in the file are *declared* as hash collections (bindings with a
//! `: HashMap<…>`-style annotation, possibly behind `&`/`Arc`/other
//! wrappers, and `let x = HashMap::new()`-style constructions), plus —
//! workspace-wide — functions whose return type mentions one. Iterating
//! any of those receivers fires; keyed access (`get`/`insert`/`entry`)
//! never does. `BTreeMap`-typed names are invisible to the rule, which is
//! the intended fix.

use super::{hash_type_names, Context, Rule, SourceFile};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use std::collections::BTreeSet;

pub struct NondeterministicIteration;

const DEFAULT_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

impl Rule for NondeterministicIteration {
    fn name(&self) -> &'static str {
        "nondeterministic-iteration"
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !ctx.config.path_in("zones", "export", &file.path) {
            return;
        }
        let hash_types: BTreeSet<&str> = hash_type_names(ctx.config).collect();
        let configured = ctx.config.list("rules.nondeterministic-iteration", "methods");
        let methods: BTreeSet<&str> = if configured.is_empty() {
            DEFAULT_METHODS.iter().copied().collect()
        } else {
            configured.iter().map(String::as_str).collect()
        };
        let hash_names = hash_typed_names(file, &hash_types);

        let s = &file.sig;
        for k in 0..s.len() {
            if file.test_code(k) {
                continue;
            }
            let t = file.tok(k);
            // `recv.method(` where method is an iteration method.
            if t.kind == TokKind::Ident
                && methods.contains(t.text.as_str())
                && k >= 2
                && file.tok(k - 1).is_punct(".")
                && k + 1 < s.len()
                && file.tok(k + 1).is_punct("(")
            {
                if let Some(recv) = receiver_name(file, k - 2) {
                    let hash_field = hash_names.contains(&recv) && !is_call(file, k - 2);
                    let hash_call = ctx.hash_fns.contains(&recv) && is_call(file, k - 2);
                    if hash_field || hash_call {
                        out.push(self.diag(file, k, &recv, &t.text));
                    }
                }
            }
            // `for pat in expr {`: the implicit IntoIterator of a map
            // reference.
            if t.is_ident("for") {
                if let Some((expr_tail, line)) = for_loop_iterated_name(file, k) {
                    if hash_names.contains(&expr_tail) || ctx.hash_fns.contains(&expr_tail) {
                        out.push(Diagnostic::error(
                            self.name(),
                            &file.path,
                            line,
                            format!(
                                "`for … in` over hash collection `{expr_tail}` in an export-path module; iteration order is nondeterministic — use a BTreeMap/BTreeSet or sort first"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

impl NondeterministicIteration {
    fn diag(&self, file: &SourceFile, k: usize, recv: &str, method: &str) -> Diagnostic {
        Diagnostic::error(
            self.name(),
            &file.path,
            file.tok(k).line,
            format!(
                "`{recv}.{method}()` iterates a hash collection in an export-path module; iteration order is nondeterministic — use a BTreeMap/BTreeSet or sort before emitting"
            ),
        )
    }
}

/// Names in this file declared or constructed as hash collections.
fn hash_typed_names(file: &SourceFile, hash_types: &BTreeSet<&str>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let s = &file.sig;
    for k in 0..s.len() {
        let t = file.tok(k);
        if t.kind != TokKind::Ident || !hash_types.contains(t.text.as_str()) {
            continue;
        }
        // Constructor binding: `name = HashMap::new()` / `with_capacity`.
        if k >= 2 && file.tok(k - 1).is_punct("=") && file.tok(k - 2).kind == TokKind::Ident {
            if k + 2 < s.len() && file.tok(k + 1).is_punct("::") {
                names.insert(file.tok(k - 2).text.clone());
            }
            continue;
        }
        // Type-annotation binding: `name: [wrappers<] HashMap<…>`. Walk
        // back over path segments and wrapper-type noise to the `:`.
        let mut j = k;
        while j > 0 {
            let p = file.tok(j - 1);
            if p.is_punct(":") {
                if j >= 2 && file.tok(j - 2).kind == TokKind::Ident {
                    names.insert(file.tok(j - 2).text.clone());
                }
                break;
            }
            // Tokens allowed between the binding's `:` and the hash type:
            // references, path separators, wrapper-type openers and the
            // wrapper/path segments themselves (`Arc<`, `std::collections::`).
            let wrapper_ident = p.kind == TokKind::Ident
                && (p.text == "mut"
                    || p.text == "dyn"
                    || p.text == "std"
                    || p.text == "collections"
                    || p.text == "sync"
                    || p.text.chars().next().is_some_and(char::is_uppercase));
            let skippable = p.is_punct("::")
                || p.is_punct("<")
                || p.is_punct("&")
                || p.kind == TokKind::Lifetime
                || wrapper_ident;
            if !skippable {
                break;
            }
            j -= 1;
        }
    }
    names
}

/// The receiver identifier ending at sig-position `end` (`map` in
/// `self.map.iter()`, `limiters` in `access.limiters().iter()`).
fn receiver_name(file: &SourceFile, end: usize) -> Option<String> {
    let t = file.tok(end);
    if t.kind == TokKind::Ident {
        return Some(t.text.clone());
    }
    // A call: `name(...).iter()` — find the ident before the matching `(`.
    if t.is_punct(")") {
        let mut depth = 0usize;
        let mut k = end;
        loop {
            let p = file.tok(k);
            if p.is_punct(")") {
                depth += 1;
            } else if p.is_punct("(") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        }
        if k > 0 && file.tok(k - 1).kind == TokKind::Ident {
            return Some(file.tok(k - 1).text.clone());
        }
    }
    None
}

/// Whether the token at sig-position `end` closes a call (so `hash_fns`
/// matches apply to `recv.limiters().iter()` but a plain field named like
/// a hash-returning fn does not fire).
fn is_call(file: &SourceFile, end: usize) -> bool {
    file.tok(end).is_punct(")")
}

/// For a `for` keyword at sig-position `k`, the tail identifier of the
/// iterated expression (`map` in `for (k, v) in &self.map {`), with the
/// loop's line. Expressions ending in `()` resolve to the called
/// function's name so hash-returning fns are caught.
fn for_loop_iterated_name(file: &SourceFile, k: usize) -> Option<(String, u32)> {
    let s = &file.sig;
    // Find `in` at bracket depth 0, then the body `{` at depth 0.
    let mut depth = 0i32;
    let mut in_pos = None;
    for j in k + 1..(k + 120).min(s.len()) {
        let t = file.tok(j);
        match t.text.as_str() {
            "(" | "[" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokKind::Punct => depth -= 1,
            "in" if t.kind == TokKind::Ident && depth == 0 => {
                in_pos = Some(j);
                break;
            }
            _ => {}
        }
    }
    let in_pos = in_pos?;
    let mut body = None;
    depth = 0;
    for j in in_pos + 1..(in_pos + 120).min(s.len()) {
        let t = file.tok(j);
        match t.text.as_str() {
            "(" | "[" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokKind::Punct => depth -= 1,
            "{" if t.kind == TokKind::Punct && depth == 0 => {
                body = Some(j);
                break;
            }
            _ => {}
        }
    }
    let body = body?;
    if body == in_pos + 1 {
        return None;
    }
    let last = file.tok(body - 1);
    if last.kind == TokKind::Ident {
        // Method-call tails like `.iter()` are handled by the method
        // check; here the expression ends in a plain name.
        return Some((last.text.clone(), file.tok(k).line));
    }
    if last.is_punct(")") {
        return receiver_name(file, body - 1).map(|n| (n, file.tok(k).line));
    }
    None
}
