//! Rule `untyped-drop`: every `RouterAction::Drop` construction must
//! reference a `DropCause` mapping, so PR 8's "the typed drop budget sums
//! exactly to the engine's drop count" invariant stays true as new drop
//! sites appear. Three shapes pass:
//!
//! * `RouterAction::Drop(DropCause::…)` — the cause is inline;
//! * `RouterAction::Drop(cause)` where `DropCause` appears in the
//!   preceding statements (the cause was computed by a typed mapping) —
//!   approximated as a 400-significant-token look-back window;
//! * `RouterAction::Drop(pat) =>` — a match *pattern*, which consumes an
//!   already-typed cause rather than constructing one.
//!
//! A bare `RouterAction::Drop` path (no argument) always fires.

use super::{Context, Rule, SourceFile};
use crate::diag::Diagnostic;

pub struct UntypedDrop;

const LOOKBACK: usize = 400;

impl Rule for UntypedDrop {
    fn name(&self) -> &'static str {
        "untyped-drop"
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        let s = &file.sig;
        for k in 0..s.len() {
            if file.test_code(k) {
                continue;
            }
            if !(file.tok(k).is_ident("RouterAction")
                && k + 2 < s.len()
                && file.tok(k + 1).is_punct("::")
                && file.tok(k + 2).is_ident("Drop"))
            {
                continue;
            }
            let line = file.tok(k).line;
            let after = k + 3;
            // `RouterAction::Drop => …` (unit pattern) is fine.
            if after < s.len() && file.tok(after).is_punct("=>") {
                continue;
            }
            if after < s.len() && file.tok(after).is_punct("(") {
                let Some(close) = file.matching(after, "(", ")") else {
                    out.push(self.diag(file, line));
                    continue;
                };
                let inline_cause = (after + 1..close).any(|j| file.tok(j).is_ident("DropCause"));
                if inline_cause {
                    continue;
                }
                // Match pattern: the construct is consumed, not built.
                if close + 1 < s.len() && file.tok(close + 1).is_punct("=>") {
                    continue;
                }
                // A named cause must have been mapped from `DropCause`
                // nearby (same function, approximated by a token window).
                let start = k.saturating_sub(LOOKBACK);
                if (start..k).any(|j| file.tok(j).is_ident("DropCause")) {
                    continue;
                }
            }
            out.push(self.diag(file, line));
        }
    }
}

impl UntypedDrop {
    fn diag(&self, file: &SourceFile, line: u32) -> Diagnostic {
        Diagnostic::error(
            self.name(),
            &file.path,
            line,
            "`RouterAction::Drop` without a `DropCause` mapping; every drop site must be typed so the drop budget keeps summing to the engine's drop count".to_string(),
        )
    }
}
