//! Rule `panic-prone`: `.unwrap()`, `.expect(...)` and `panic!` are
//! banned in the zoned runtime crates (core, sim, systems, ctrl, faults).
//! The chaos engine injects faults precisely to prove the data plane
//! degrades gracefully; a stray `unwrap` turns a recoverable fault into a
//! process abort and voids the no-panic acceptance property. Test code
//! (inline `#[cfg(test)]` modules) is exempt — a test asserting via
//! `unwrap` is fine — and deliberate invariant checks carry a justified
//! `lint:allow(panic-prone)` instead.

use super::{Context, Rule, SourceFile};
use crate::diag::Diagnostic;

pub struct PanicProne;

impl Rule for PanicProne {
    fn name(&self) -> &'static str {
        "panic-prone"
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !ctx.config.path_in("rules.panic-prone", "zones", &file.path) {
            return;
        }
        let s = &file.sig;
        for k in 0..s.len() {
            if file.test_code(k) {
                continue;
            }
            let t = file.tok(k);
            // `.unwrap(` / `.expect(` — method calls only, so
            // `unwrap_or(...)` and field names never match.
            if t.is_punct(".")
                && k + 2 < s.len()
                && file.tok(k + 2).is_punct("(")
                && (file.tok(k + 1).is_ident("unwrap") || file.tok(k + 1).is_ident("expect"))
            {
                let m = file.tok(k + 1);
                out.push(Diagnostic::error(
                    self.name(),
                    &file.path,
                    m.line,
                    format!(
                        "`.{}(...)` in fault-injected runtime code; handle the `None`/`Err` arm \
                         or justify the invariant with `lint:allow(panic-prone)`",
                        m.text
                    ),
                ));
            }
            // `panic!(...)` (the bare macro; `unreachable!`/`todo!` are
            // compile-time placeholders the build already rejects).
            if t.is_ident("panic") && k + 1 < s.len() && file.tok(k + 1).is_punct("!") {
                out.push(Diagnostic::error(
                    self.name(),
                    &file.path,
                    t.line,
                    "`panic!` in fault-injected runtime code; return a typed error \
                     or justify the invariant with `lint:allow(panic-prone)`"
                        .to_string(),
                ));
            }
        }
    }
}
