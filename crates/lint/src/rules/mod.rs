//! The rule engine: a prepared [`SourceFile`] (token stream, significant
//! indices, `#[cfg(test)]` shadowing), the workspace-level [`Context`]
//! (zone config plus the cross-module table of functions returning hash
//! collections), and the seven rules of the taxonomy (`DESIGN.md` §13).

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;

pub mod drops;
pub mod entropy;
pub mod iteration;
pub mod panic;
pub mod unsafe_code;
pub mod wallclock;
pub mod wildcard;

/// Names of every rule, in reporting order. The allow policy findings
/// (`unjustified-allow`, `unknown-rule`, `unused-allow`) are emitted by
/// the engine itself, not listed here.
pub const RULE_NAMES: [&str; 7] = [
    "nondeterministic-iteration",
    "wall-clock",
    "unseeded-entropy",
    "untyped-drop",
    "wildcard-defense-match",
    "unsafe-code",
    "panic-prone",
];

/// One prepared source file.
pub struct SourceFile {
    pub path: String,
    pub toks: Vec<Tok>,
    /// Indices of non-comment tokens, in order.
    pub sig: Vec<usize>,
    /// Per-token: inside an inline `#[cfg(test)] mod` block. Test-only
    /// code cannot reach an export, so the determinism rules skip it
    /// (integration tests under `tests/` are separate files and are
    /// zoned via `lint.toml` instead).
    pub in_test: Vec<bool>,
    pub is_crate_root: bool,
}

impl SourceFile {
    pub fn prepare(path: &str, source: &str, is_crate_root: bool) -> SourceFile {
        let toks = lex(source);
        let sig: Vec<usize> =
            toks.iter().enumerate().filter(|(_, t)| !t.is_comment()).map(|(i, _)| i).collect();
        let mut file =
            SourceFile { path: path.to_string(), toks, sig, in_test: Vec::new(), is_crate_root };
        file.in_test = file.mark_test_blocks();
        file
    }

    /// The significant token at sig-position `k`.
    pub fn tok(&self, k: usize) -> &Tok {
        &self.toks[self.sig[k]]
    }

    /// Whether sig-position `k` lies in an inline `#[cfg(test)]` module.
    pub fn test_code(&self, k: usize) -> bool {
        self.in_test[self.sig[k]]
    }

    /// Find the sig-position of the matching closer for the opener at
    /// sig-position `open` (`(`/`)`, `{`/`}`, `[`/`]`).
    pub fn matching(&self, open: usize, open_p: &str, close_p: &str) -> Option<usize> {
        let mut depth = 0usize;
        for k in open..self.sig.len() {
            let t = self.tok(k);
            if t.is_punct(open_p) {
                depth += 1;
            } else if t.is_punct(close_p) {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        None
    }

    /// Mark every token inside `#[cfg(test)] mod <name> { ... }` blocks.
    fn mark_test_blocks(&self) -> Vec<bool> {
        let mut marked = vec![false; self.toks.len()];
        let s = &self.sig;
        let mut k = 0usize;
        while k + 6 < s.len() {
            let attr_is_cfg_test = self.tok(k).is_punct("#")
                && self.tok(k + 1).is_punct("[")
                && self.tok(k + 2).is_ident("cfg")
                && self.tok(k + 3).is_punct("(")
                && self.tok(k + 4).is_ident("test")
                && self.tok(k + 5).is_punct(")")
                && self.tok(k + 6).is_punct("]");
            if !attr_is_cfg_test {
                k += 1;
                continue;
            }
            // Skip any further attributes, then accept `pub`? `mod name {`.
            let mut j = k + 7;
            while j < s.len() && self.tok(j).is_punct("#") {
                if let Some(close) = self.matching(j + 1, "[", "]") {
                    j = close + 1;
                } else {
                    break;
                }
            }
            if j < s.len() && self.tok(j).is_ident("pub") {
                j += 1;
            }
            if j + 2 < s.len() && self.tok(j).is_ident("mod") && self.tok(j + 2).is_punct("{") {
                if let Some(close) = self.matching(j + 2, "{", "}") {
                    for m in &s[k..=close] {
                        marked[*m] = true;
                    }
                    k = close + 1;
                    continue;
                }
            }
            k += 1;
        }
        marked
    }
}

/// Workspace-level context shared by every rule.
pub struct Context<'a> {
    pub config: &'a LintConfig,
    /// Functions (by name) whose return type mentions a hash collection —
    /// collected workspace-wide so `for x in access.limiters()` is caught
    /// across module boundaries.
    pub hash_fns: BTreeSet<String>,
}

impl<'a> Context<'a> {
    pub fn build(config: &'a LintConfig, files: &[SourceFile]) -> Context<'a> {
        let hash_types: BTreeSet<&str> = hash_type_names(config).collect();
        let mut hash_fns = BTreeSet::new();
        for file in files {
            let s = &file.sig;
            for k in 0..s.len() {
                if !file.tok(k).is_ident("fn") || k + 1 >= s.len() {
                    continue;
                }
                let name = file.tok(k + 1);
                if name.kind != TokKind::Ident {
                    continue;
                }
                // Scan the signature up to its body/terminator for a hash
                // type mentioned after `->`.
                let mut seen_arrow = false;
                for j in k + 2..(k + 80).min(s.len()) {
                    let t = file.tok(j);
                    if t.is_punct("{") || t.is_punct(";") {
                        break;
                    }
                    if t.is_punct("->") {
                        seen_arrow = true;
                    } else if seen_arrow
                        && t.kind == TokKind::Ident
                        && hash_types.contains(t.text.as_str())
                    {
                        hash_fns.insert(name.text.clone());
                        break;
                    }
                }
            }
        }
        Context { config, hash_fns }
    }
}

/// The configured hash-collection type names (default `HashMap`/`HashSet`).
pub fn hash_type_names(config: &LintConfig) -> impl Iterator<Item = &str> {
    let configured = config.list("rules.nondeterministic-iteration", "hash_types");
    if configured.is_empty() {
        ["HashMap", "HashSet"].to_vec().into_iter()
    } else {
        configured.iter().map(String::as_str).collect::<Vec<_>>().into_iter()
    }
}

/// A lint rule.
pub trait Rule {
    fn name(&self) -> &'static str;
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>);
}

/// The full rule set, in [`RULE_NAMES`] order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(iteration::NondeterministicIteration),
        Box::new(wallclock::WallClock),
        Box::new(entropy::UnseededEntropy),
        Box::new(drops::UntypedDrop),
        Box::new(wildcard::WildcardDefenseMatch),
        Box::new(unsafe_code::UnsafeCode),
        Box::new(panic::PanicProne),
    ]
}
