//! Diagnostics: rustc-style rendering plus the machine-readable JSON
//! report consumed by CI and tooling.

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the build (subject to a justified `lint:allow`).
    Error,
    /// Reported, and promoted to an error under `--deny-all`.
    Warning,
}

/// One finding, anchored to a workspace-relative `file:line` span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub severity: Severity,
    /// The justification of the `lint:allow` that suppressed this
    /// finding, when one did.
    pub suppressed_by: Option<String>,
}

impl Diagnostic {
    pub fn error(rule: &str, path: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message,
            severity: Severity::Error,
            suppressed_by: None,
        }
    }

    /// Render in the rustc style the repo's other tooling emits.
    pub fn render(&self) -> String {
        let level = match (self.severity, &self.suppressed_by) {
            (_, Some(reason)) => {
                return format!(
                    "note[{}]: suppressed at {}:{} — {}",
                    self.rule, self.path, self.line, reason
                )
            }
            (Severity::Error, None) => "error",
            (Severity::Warning, None) => "warning",
        };
        format!("{level}[{}]: {}\n  --> {}:{}", self.rule, self.message, self.path, self.line)
    }
}

/// Escape a string for embedding in the JSON report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize the full diagnostic set as the machine-readable report.
pub fn to_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n");
    let errors =
        diags.iter().filter(|d| d.severity == Severity::Error && d.suppressed_by.is_none()).count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning && d.suppressed_by.is_none())
        .count();
    let suppressed = diags.iter().filter(|d| d.suppressed_by.is_some()).count();
    out.push_str(&format!(
        "  \"summary\": {{ \"files\": {files_scanned}, \"errors\": {errors}, \"warnings\": {warnings}, \"suppressed\": {suppressed} }},\n"
    ));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let sev = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        out.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"severity\": \"{}\", \"suppressed\": {}, \"reason\": {}, \"message\": \"{}\" }}{}\n",
            json_escape(&d.rule),
            json_escape(&d.path),
            d.line,
            sev,
            d.suppressed_by.is_some(),
            match &d.suppressed_by {
                Some(r) => format!("\"{}\"", json_escape(r)),
                None => "null".to_string(),
            },
            json_escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_json_roundtrip_basics() {
        let d =
            Diagnostic::error("wall-clock", "crates/sim/src/engine.rs", 42, "bad \"time\"".into());
        assert!(d.render().starts_with("error[wall-clock]"));
        assert!(d.render().contains("crates/sim/src/engine.rs:42"));
        let json = to_json(&[d], 7);
        assert!(json.contains("\"files\": 7"));
        assert!(json.contains("\\\"time\\\""));
        assert!(json.contains("\"errors\": 1"));
    }
}
