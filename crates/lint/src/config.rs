//! `lint.toml` — the declarative zone / rule configuration.
//!
//! The workspace is partitioned into *zones* by path prefix; each rule
//! declares which zones it polices (see `DESIGN.md` §13). The parser
//! handles the small TOML subset the config uses — `[section]` headers,
//! `key = "string"` and `key = [ "a", "b", ... ]` (multi-line arrays,
//! `#` comments) — so the tool stays dependency-free.

use std::collections::BTreeMap;

/// Parsed configuration: section → key → list of string values (scalar
/// values are one-element lists).
#[derive(Debug, Default, Clone)]
pub struct LintConfig {
    sections: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

impl LintConfig {
    /// Parse the `lint.toml` text. Unknown sections/keys are kept (the
    /// rules look up what they need), malformed lines are an error.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((no, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, mut value)) =
                line.split_once('=').map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            else {
                return Err(format!("lint.toml:{}: expected `key = value`", no + 1));
            };
            // Multi-line array: keep consuming until the closing bracket.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if value.ends_with(']') {
                        break;
                    }
                }
            }
            let values = parse_value(&value).map_err(|e| format!("lint.toml:{}: {e}", no + 1))?;
            cfg.sections.entry(section.clone()).or_default().insert(key, values);
        }
        Ok(cfg)
    }

    /// The string list at `[section] key`, empty if absent.
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        self.sections.get(section).and_then(|s| s.get(key)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `path` (workspace-relative, `/`-separated) lies under any
    /// of the prefixes at `[section] key`.
    pub fn path_in(&self, section: &str, key: &str, path: &str) -> bool {
        self.list(section, key).iter().any(|prefix| in_prefix(path, prefix))
    }
}

/// Path-prefix test on whole components: `crates/sim` covers
/// `crates/sim/src/engine.rs` but not `crates/simx/...`.
pub fn in_prefix(path: &str, prefix: &str) -> bool {
    path == prefix || path.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('/'))
}

fn strip_comment(line: &str) -> &str {
    // `#` inside quotes would break this, but the config never quotes a
    // `#`; keep the parser honest about its scope.
    match line.find('#') {
        Some(i) if !line[..i].contains('"') || line[..i].matches('"').count().is_multiple_of(2) => {
            &line[..i]
        }
        _ => line,
    }
}

fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            out.push(unquote(item)?);
        }
        return Ok(out);
    }
    Ok(vec![unquote(value)?])
}

fn unquote(item: &str) -> Result<String, String> {
    item.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{item}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_multiline_arrays() {
        let cfg = LintConfig::parse(
            r#"
            # comment
            [zones]
            export = [
              "crates/sim/src",   # trailing comment
              "crates/experiments/src",
            ]
            [rules.wall-clock]
            free = ["crates/bench"]
            note = "hi"
            "#,
        )
        .unwrap();
        assert_eq!(cfg.list("zones", "export").len(), 2);
        assert!(cfg.path_in("zones", "export", "crates/sim/src/engine.rs"));
        assert!(!cfg.path_in("zones", "export", "crates/simx/src/engine.rs"));
        assert_eq!(cfg.list("rules.wall-clock", "free"), ["crates/bench".to_string()]);
        assert_eq!(cfg.list("rules.wall-clock", "note"), ["hi".to_string()]);
    }

    #[test]
    fn rejects_unquoted_values() {
        assert!(LintConfig::parse("[a]\nk = nope").is_err());
    }
}
