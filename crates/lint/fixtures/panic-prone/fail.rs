//! Fixture: `.unwrap()`, `.expect(...)` and `panic!` in runtime code
//! (must FAIL with three `panic-prone` findings).

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(text: &str) -> u32 {
    text.parse().expect("fixture: not a number")
}

pub fn guard(ok: bool) {
    if !ok {
        panic!("fixture: invariant violated");
    }
}
