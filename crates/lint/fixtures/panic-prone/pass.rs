//! Fixture: panic-free runtime code (must PASS). The `Err`/`None` arms
//! are handled, `unwrap_or` variants are not method-call `unwrap`s, a
//! justified allow waives a deliberate invariant check, and test code is
//! exempt outright.

pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

pub fn parse(text: &str) -> u32 {
    match text.parse() {
        Ok(n) => n,
        Err(_) => 0,
    }
}

pub fn checked(denominator: u32) -> u32 {
    if denominator == 0 {
        // lint:allow(panic-prone): fixture — deliberate invariant with a written justification
        panic!("fixture invariant");
    }
    100 / denominator
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let x: Option<u32> = Some(7);
        assert_eq!(x.unwrap(), 7);
    }
}
