//! Fixture: a `_` arm in a match naming a protected enum (must FAIL —
//! a sixth defense kind would silently fall through to 100 kbps).

pub enum DefenseKind {
    NetFence,
    Tva,
    StopIt,
    Fq,
    None,
}

pub fn fair_share_for(system: DefenseKind) -> u64 {
    match system {
        DefenseKind::StopIt => 30_000,
        _ => 100_000,
    }
}
