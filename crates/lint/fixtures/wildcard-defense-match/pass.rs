//! Fixture: every variant enumerated over the protected enum; `_` arms
//! over unprotected types stay legal (must PASS).

pub enum DefenseKind {
    NetFence,
    Tva,
    StopIt,
    Fq,
    None,
}

pub fn fair_share_for(system: DefenseKind) -> u64 {
    match system {
        DefenseKind::StopIt => 30_000,
        DefenseKind::NetFence | DefenseKind::Tva | DefenseKind::Fq | DefenseKind::None => 100_000,
    }
}

pub fn label(slot: Option<u32>) -> &'static str {
    match slot {
        Some(0) => "first",
        _ => "other",
    }
}
