//! Fixture: a crate root carrying the mandatory attribute (must PASS).

#![forbid(unsafe_code)]

pub fn entry() -> u32 {
    7
}
