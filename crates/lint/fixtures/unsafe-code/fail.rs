//! Fixture: a crate root missing `#![forbid(unsafe_code)]` (must FAIL
//! when analyzed as a crate root).

pub fn entry() -> u32 {
    7
}
