//! Fixture: simulated time only, plus one justified wall-clock read
//! (must PASS).

pub type Nanos = u64;

pub fn advance(now: Nanos, dt: Nanos) -> Nanos {
    now + dt
}

pub fn wall_seconds() -> f64 {
    // lint:allow(wall-clock): measures harness wall-time for a throughput table; never enters a Record
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}
