//! Fixture: wall-clock reads outside the bench zone (must FAIL — the
//! `SystemTime` import, the `Instant::now` call and the `SystemTime::now`
//! call each produce a finding).

use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let _ = t0.elapsed();
    SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
}
