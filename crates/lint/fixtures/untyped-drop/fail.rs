//! Fixture: a drop constructed without any `DropCause` mapping in sight
//! (must FAIL — the drop budget cannot account for it).

pub enum RouterAction {
    Forward,
    Drop(u32),
}

pub fn police(code: u32, over_budget: bool) -> RouterAction {
    if over_budget {
        return RouterAction::Drop(code);
    }
    RouterAction::Forward
}
