//! Fixture: every drop site references a `DropCause` mapping (must
//! PASS) — inline cause, cause mapped nearby, and a match *pattern*
//! consuming an already-typed cause.

pub enum DropCause {
    Unauthorized,
    RateLimited,
}

pub enum RouterAction {
    Forward,
    Drop(DropCause),
}

pub fn police(over_budget: bool) -> RouterAction {
    if over_budget {
        return RouterAction::Drop(DropCause::RateLimited);
    }
    RouterAction::Forward
}

pub fn mapped(cause: DropCause) -> RouterAction {
    RouterAction::Drop(cause)
}

pub fn count(action: &RouterAction) -> u32 {
    match action {
        RouterAction::Drop(_) => 1,
        RouterAction::Forward => 0,
    }
}
