//! Fixture: hash-collection iteration on the export path (must FAIL —
//! one finding per iteration site, none for the keyed lookup).

use std::collections::HashMap;

pub struct Book {
    pub flows: HashMap<u32, u64>,
}

impl Book {
    /// Emits rows in hash order — the exact `Record`-nondeterminism bug.
    pub fn rows(&self) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        for (addr, bytes) in &self.flows {
            out.push((*addr, *bytes));
        }
        out
    }

    pub fn keys_in_hash_order(&self) -> Vec<u32> {
        self.flows.keys().copied().collect()
    }

    /// Keyed access never fires.
    pub fn lookup(&self, addr: u32) -> Option<u64> {
        self.flows.get(&addr).copied()
    }
}
