//! Fixture: the sanctioned alternatives on the export path (must PASS) —
//! a `BTreeMap` for anything iterated, hash maps kept keyed-only, and a
//! justified allow where the result is sorted before anyone sees it.

use std::collections::{BTreeMap, HashMap};

pub struct Book {
    /// Sorted map: iteration order is key order, deterministic.
    pub flows: BTreeMap<u32, u64>,
    /// Hash-keyed, lookup-only: never iterated.
    pub index: HashMap<u32, usize>,
}

impl Book {
    pub fn rows(&self) -> Vec<(u32, u64)> {
        self.flows.iter().map(|(a, b)| (*a, *b)).collect()
    }

    pub fn lookup(&self, addr: u32) -> Option<usize> {
        self.index.get(&addr).copied()
    }

    pub fn sorted_index_keys(&self) -> Vec<u32> {
        // lint:allow(nondeterministic-iteration): collected then sorted on the next line — callers only ever see key order
        let mut keys: Vec<u32> = self.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}
