//! Fixture: every draw comes from a seeded `SimRng` substream (must
//! PASS).

pub struct SimRng(u64);

impl SimRng {
    pub fn seeded(seed: u64) -> SimRng {
        SimRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    pub fn substream(&self, label: u64) -> SimRng {
        SimRng(self.0.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ label)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        self.0
    }
}

pub fn jitter(rng: &mut SimRng, span: u64) -> u64 {
    rng.next_u64() % span.max(1)
}
