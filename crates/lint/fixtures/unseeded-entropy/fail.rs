//! Fixture: ambient entropy sources (must FAIL — `RandomState` seeds
//! itself from the OS per process, so anything derived from it is
//! unreproducible).

use std::collections::hash_map::RandomState;
use std::hash::BuildHasher;

pub fn ambient_seed() -> u64 {
    let state = RandomState::new();
    state.hash_one(0x6e66u64)
}
