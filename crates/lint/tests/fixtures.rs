//! Golden fixture tests: one failing and one passing fixture per rule
//! (`fixtures/<rule>/{fail,pass}.rs`), the zone exemptions, the
//! acceptance scenario from the issue (reintroducing hash iteration into
//! `crates/experiments/src/record.rs` must be flagged under the real
//! `lint.toml`), and the workspace-clean gate itself.

use std::path::Path;

use netfence_lint::config::LintConfig;
use netfence_lint::rules::RULE_NAMES;
use netfence_lint::workspace::FileInput;
use netfence_lint::{check_files, check_workspace, Report};

/// The zone config the fixtures are analyzed under: everything is on the
/// export path and wildcard-protected; `fixtures/bench` is the bench zone.
const FIXTURE_CONFIG: &str = r#"
[zones]
export = ["fixtures"]
bench = ["fixtures/bench"]
wildcard = ["fixtures"]

[rules.panic-prone]
zones = ["fixtures/panic-prone"]
"#;

fn fixture_source(rule: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(format!("{which}.rs"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Analyze one fixture under `FIXTURE_CONFIG` at a virtual `path`.
fn check_fixture(rule: &str, which: &str, path: &str, is_crate_root: bool) -> Report {
    let config = LintConfig::parse(FIXTURE_CONFIG).unwrap();
    let files =
        [FileInput { path: path.to_string(), source: fixture_source(rule, which), is_crate_root }];
    check_files(&files, &config)
}

fn unsuppressed<'a>(report: &'a Report, rule: &str) -> Vec<&'a netfence_lint::diag::Diagnostic> {
    report.diagnostics.iter().filter(|d| d.rule == rule && d.suppressed_by.is_none()).collect()
}

#[test]
fn every_rule_has_a_failing_and_a_passing_fixture() {
    for rule in RULE_NAMES {
        let is_root = rule == "unsafe-code";

        let fail = check_fixture(rule, "fail", &format!("fixtures/{rule}/fail.rs"), is_root);
        assert!(
            !unsuppressed(&fail, rule).is_empty(),
            "{rule}: fail.rs produced no `{rule}` finding:\n{}",
            render(&fail)
        );
        for other in RULE_NAMES {
            if other != rule {
                assert!(
                    unsuppressed(&fail, other).is_empty(),
                    "{rule}: fail.rs leaked a `{other}` finding:\n{}",
                    render(&fail)
                );
            }
        }

        let pass = check_fixture(rule, "pass", &format!("fixtures/{rule}/pass.rs"), is_root);
        assert_eq!(pass.errors(), 0, "{rule}: pass.rs has errors:\n{}", render(&pass));
        assert_eq!(pass.warnings(), 0, "{rule}: pass.rs has warnings:\n{}", render(&pass));
    }
}

/// The same wall-clock violations are legal inside the bench zone.
#[test]
fn bench_zone_exempts_wall_clock() {
    let report = check_fixture("wall-clock", "fail", "fixtures/bench/fail.rs", false);
    assert_eq!(report.errors(), 0, "bench zone still flagged:\n{}", render(&report));
}

/// Outside the export zone the iteration rule stays quiet (the file is
/// not on any path that feeds a `Record`).
#[test]
fn export_zone_gates_iteration() {
    let config = LintConfig::parse("[zones]\nexport = [\"fixtures\"]\n").unwrap();
    let files = [FileInput {
        path: "elsewhere/fail.rs".to_string(),
        source: fixture_source("nondeterministic-iteration", "fail"),
        is_crate_root: false,
    }];
    let report = check_files(&files, &config);
    assert!(unsuppressed(&report, "nondeterministic-iteration").is_empty());
}

/// The issue's acceptance scenario: deliberately reintroduce a HashMap
/// iteration into `crates/experiments/src/record.rs` and analyze it
/// under the repository's real `lint.toml` — the gate must fail.
#[test]
fn reintroduced_hash_iteration_in_record_rs_is_flagged() {
    let root = workspace_root();
    let config_text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let config = LintConfig::parse(&config_text).unwrap();
    let regression = r#"
use std::collections::HashMap;

pub fn summarize(per_flow: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut rows = Vec::new();
    for (flow, bytes) in per_flow.iter() {
        rows.push((*flow, *bytes));
    }
    rows
}
"#;
    let files = [FileInput {
        path: "crates/experiments/src/record.rs".to_string(),
        source: regression.to_string(),
        is_crate_root: false,
    }];
    let report = check_files(&files, &config);
    assert!(
        !unsuppressed(&report, "nondeterministic-iteration").is_empty(),
        "record.rs regression was not flagged:\n{}",
        render(&report)
    );
}

/// An allow comment with an empty reason is itself an error, and an
/// allow naming an unknown rule is too — the escape hatch cannot be used
/// to silently disable the gate.
#[test]
fn allow_policy_is_enforced_on_fixtures() {
    let config = LintConfig::parse(FIXTURE_CONFIG).unwrap();
    let source =
        "// lint:allow(wall-clock):\n// lint:allow(no-such-rule): because\npub fn f() {}\n";
    let files = [FileInput {
        path: "fixtures/policy.rs".to_string(),
        source: source.to_string(),
        is_crate_root: false,
    }];
    let report = check_files(&files, &config);
    assert!(!unsuppressed(&report, "unjustified-allow").is_empty(), "{}", render(&report));
    assert!(!unsuppressed(&report, "unknown-rule").is_empty(), "{}", render(&report));
}

/// The gate CI runs: the workspace itself is clean.
#[test]
fn workspace_is_clean() {
    let report = check_workspace(&workspace_root()).unwrap();
    let offending: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.suppressed_by.is_none())
        .map(|d| d.render())
        .collect();
    assert!(offending.is_empty(), "workspace not lint-clean:\n{}", offending.join("\n"));
}

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn render(report: &Report) -> String {
    report.diagnostics.iter().map(|d| d.render()).collect::<Vec<_>>().join("\n")
}
