//! Passport-style source authentication (§4.5 of the paper, \[26\]).
//!
//! NetFence uses Passport to prevent source address spoofing so that
//! bottleneck routers can attribute traffic to its true source AS (needed
//! for per-AS damage localization) and so that the AS pairwise keys used to
//! protect `L↓` feedback are available. A Passport header is inserted
//! between IP and the NetFence header. The source AS computes one MAC per
//! AS on the path using the key it shares with that AS; each on-path AS
//! verifies (and erases) its MAC.
//!
//! This reproduction keeps the mechanism but simplifies the header to a
//! single verification MAC per validating AS pair (the simulator validates
//! at the bottleneck/transit AS, which is all the NetFence evaluation
//! needs). The header length is accounted as 24 bytes to match the packet
//! size estimates in §4.6.

use netfence_crypto::{AsKeyTable, Mac32, MacInput};

use crate::types::{AsId, FlowPair};

/// Wire length of the (simplified) Passport header, matching the 24-byte
/// estimate used by the paper's packet-size accounting (§4.6).
pub const PASSPORT_HEADER_LEN: usize = 24;

/// A Passport shim header.
///
/// Carries the claimed source AS and a MAC computed with the key the source
/// AS shares with the verifying AS. The MAC also covers the packet length,
/// the first bytes of the transport payload, and the NetFence request
/// priority (§5.2.2: extending Passport's MAC to protect the priority
/// field), which lets routers detect on-path tampering with those fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassportHeader {
    /// The source AS that stamped this header.
    pub src_as: AsId,
    /// MAC over (src, dst, len, payload prefix, priority) under the key
    /// shared between `src_as` and the verifying AS.
    pub mac: Mac32,
}

/// Fields of a packet covered by the Passport MAC.
#[derive(Debug, Clone, Copy)]
pub struct PassportCoverage {
    /// Source/destination hosts.
    pub flow: FlowPair,
    /// Total packet length in bytes.
    pub len: u32,
    /// The first 8 bytes of the transport payload (includes the TCP/UDP
    /// checksum in a real packet).
    pub payload_prefix: [u8; 8],
    /// NetFence request packet priority (0 for regular packets).
    pub priority: u8,
}

fn mac_input(cov: &PassportCoverage, src_as: AsId) -> MacInput {
    let mut m = MacInput::new("passport");
    m.push_u32(src_as.0)
        .push_u32(cov.flow.src.0)
        .push_u32(cov.flow.dst.0)
        .push_u32(cov.len)
        .push_bytes(&cov.payload_prefix)
        .push_u8(cov.priority);
    m
}

/// Stamp a Passport header at the source AS's border (or access) router.
///
/// `keys` is the source AS's pairwise key table; `verifier_as` is the AS
/// that will check the header (the bottleneck/transit AS in the NetFence
/// evaluation topologies). Returns `None` when no key is shared with the
/// verifier.
pub fn stamp(
    keys: &AsKeyTable,
    src_as: AsId,
    verifier_as: AsId,
    cov: &PassportCoverage,
) -> Option<PassportHeader> {
    let cmac = keys.get(verifier_as.0)?;
    Some(PassportHeader { src_as, mac: cmac.mac32(mac_input(cov, src_as).as_bytes()) })
}

/// Result of verifying a Passport header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassportCheck {
    /// The MAC verifies: the packet really originates from `src_as`.
    Valid,
    /// The MAC is wrong — spoofed source AS or tampered covered fields.
    Invalid,
    /// The verifying AS shares no key with the claimed source AS; the packet
    /// is treated as legacy/unauthenticated traffic.
    NoKey,
}

/// Verify a Passport header at `verifier_as` using its pairwise key table.
pub fn verify(keys: &AsKeyTable, header: &PassportHeader, cov: &PassportCoverage) -> PassportCheck {
    match keys.get(header.src_as.0) {
        None => PassportCheck::NoKey,
        Some(cmac) => {
            if cmac.verify32(mac_input(cov, header.src_as).as_bytes(), header.mac) {
                PassportCheck::Valid
            } else {
                PassportCheck::Invalid
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HostId;
    use netfence_crypto::{full_mesh_exchange, AsKeyAgent};

    fn tables() -> Vec<AsKeyTable> {
        let agents: Vec<_> =
            (0..3).map(|i| AsKeyAgent::new(100 + i, 424_242 * (i as u64 + 1))).collect();
        full_mesh_exchange(&agents)
    }

    fn coverage() -> PassportCoverage {
        PassportCoverage {
            flow: FlowPair::new(HostId(1), HostId(2)),
            len: 1500,
            payload_prefix: *b"\x00\x01\x02\x03\x04\x05\x06\x07",
            priority: 3,
        }
    }

    #[test]
    fn stamp_and_verify() {
        let t = tables();
        let cov = coverage();
        let h = stamp(&t[0], AsId(100), AsId(101), &cov).unwrap();
        assert_eq!(verify(&t[1], &h, &cov), PassportCheck::Valid);
    }

    #[test]
    fn spoofed_source_as_detected() {
        let t = tables();
        let cov = coverage();
        // AS 102 stamps a header claiming to be AS 100: the MAC is computed
        // under key(102,101), not key(100,101), so verification at AS 101
        // fails.
        let forged =
            PassportHeader { src_as: AsId(100), mac: t[2].get(101).unwrap().mac32(b"whatever") };
        assert_eq!(verify(&t[1], &forged, &cov), PassportCheck::Invalid);
    }

    #[test]
    fn tampered_priority_detected() {
        // §5.2.2: covering the priority field lets downstream routers detect
        // an on-path router inflating request priority.
        let t = tables();
        let cov = coverage();
        let h = stamp(&t[0], AsId(100), AsId(101), &cov).unwrap();
        let mut tampered = cov;
        tampered.priority = 10;
        assert_eq!(verify(&t[1], &h, &tampered), PassportCheck::Invalid);
    }

    #[test]
    fn tampered_length_detected() {
        let t = tables();
        let cov = coverage();
        let h = stamp(&t[0], AsId(100), AsId(101), &cov).unwrap();
        let mut tampered = cov;
        tampered.len = 9000;
        assert_eq!(verify(&t[1], &h, &tampered), PassportCheck::Invalid);
    }

    #[test]
    fn missing_key_reported() {
        let t = tables();
        let cov = coverage();
        let h = PassportHeader { src_as: AsId(999), mac: 0 };
        assert_eq!(verify(&t[1], &h, &cov), PassportCheck::NoKey);
        assert!(stamp(&t[0], AsId(100), AsId(999), &cov).is_none());
    }
}
