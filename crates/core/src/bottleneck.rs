//! Bottleneck-router logic: congestion policing feedback updates at a link
//! in the `mon` state (§4.3.2), channel capacity split (§3.1, §4.2), and the
//! glue around [`crate::monitor::BottleneckMonitor`].
//!
//! A bottleneck router's per-packet work is deliberately tiny — O(1): look
//! at the feedback already in the header, and either leave it alone or
//! overwrite it with `L↓` (one MAC computation). It never keeps per-host or
//! per-flow state; the only state beyond the monitor EWMAs is the per-AS key
//! table (at most one entry per AS on today's Internet, §5.1).

use netfence_crypto::AsKeyTable;

use crate::config::Config;
use crate::feedback::{stamp_decr, Feedback};
use crate::monitor::{BottleneckMonitor, MonitorEvent};
use crate::types::{AsId, Bps, FlowPair, LinkId, Nanos};

/// The three forwarding channels a NetFence router keeps per output link
/// (Figure 2). Legacy traffic gets the lowest priority to create deployment
/// incentive; the request channel is capped at a small fraction of capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Channel {
    /// Regular packets (valid congestion policing feedback).
    Regular,
    /// Request packets, scheduled by priority level within the channel.
    Request,
    /// Legacy (non-NetFence) packets, lowest forwarding priority.
    Legacy,
}

/// Outcome of the bottleneck feedback-update rules for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampOutcome {
    /// The feedback was left untouched.
    Unchanged,
    /// The feedback was overwritten with this link's `L↓`.
    StampedDecr,
    /// The packet's source AS has no shared key with this router's AS, so
    /// `L↓` could not be stamped (the packet is forwarded unchanged; such
    /// traffic is handled by the per-AS policing fallback instead).
    NoKey,
}

/// Per-link bottleneck state: the monitoring state machine plus what is
/// needed to stamp `L↓` feedback.
#[derive(Debug)]
pub struct BottleneckLink {
    /// This link's identifier (carried in the `LINK-ID` field of `mon`
    /// feedback).
    link: LinkId,
    /// Output capacity in bits per second.
    capacity: Bps,
    /// Keys shared between this router's AS and every source AS (Passport).
    as_keys: AsKeyTable,
    /// Monitoring cycle / attack detection / stamping hysteresis.
    monitor: BottleneckMonitor,
    /// Protocol parameters.
    cfg: Config,
    /// Count of packets whose feedback was overwritten with `L↓` (metrics).
    stamped_decr: u64,
}

impl BottleneckLink {
    /// Create the bottleneck state for `link`.
    pub fn new(link: LinkId, capacity: Bps, as_keys: AsKeyTable, cfg: Config, now: Nanos) -> Self {
        BottleneckLink {
            link,
            capacity,
            as_keys,
            monitor: BottleneckMonitor::new(now),
            cfg,
            stamped_decr: 0,
        }
    }

    /// The link identifier.
    pub fn link(&self) -> LinkId {
        self.link
    }

    /// Install the pairwise key shared with the source AS `peer` (learned
    /// from a Passport-style key announcement after construction).
    pub fn install_as_key(&mut self, peer: AsId, key: [u8; 16]) {
        self.as_keys.install(peer.0, key);
    }

    /// Remove the pairwise key shared with the source AS `peer` (its TTL
    /// lapsed without a refreshing announcement); traffic from that AS
    /// reverts to unverifiable until a new announcement lands.
    pub fn remove_as_key(&mut self, peer: AsId) -> bool {
        self.as_keys.remove(peer.0)
    }

    /// The link capacity in bits per second.
    pub fn capacity(&self) -> Bps {
        self.capacity
    }

    /// The capacity share reserved for the request channel (5 % by default).
    pub fn request_channel_capacity(&self) -> Bps {
        (self.capacity as f64 * self.cfg.request_channel_fraction) as Bps
    }

    /// Whether this link is currently in a monitoring cycle.
    pub fn in_mon(&self) -> bool {
        self.monitor.in_mon()
    }

    /// Number of packets stamped with `L↓` so far.
    pub fn stamped_decr_count(&self) -> u64 {
        self.stamped_decr
    }

    /// Access the monitor (e.g. for metrics).
    pub fn monitor(&self) -> &BottleneckMonitor {
        &self.monitor
    }

    /// Record the fate of a regular packet at this link's queue (transmitted
    /// or dropped) for attack detection.
    pub fn record_regular(&mut self, bytes: usize, dropped: bool) {
        self.monitor.detector_mut().record(bytes, dropped);
    }

    /// Report instantaneous congestion (RED drop/mark or average queue above
    /// `min_thresh`); extends the `L↓` stamping hysteresis.
    pub fn note_congestion(&mut self, now: Nanos) {
        self.monitor.note_congestion(now, &self.cfg);
    }

    /// Periodic attack-detection evaluation; call roughly every
    /// `cfg.detection_interval`.
    pub fn tick(&mut self, now: Nanos) -> MonitorEvent {
        self.monitor.tick(now, self.capacity, &self.cfg)
    }

    /// Apply the ordered feedback-update rules of §4.3.2 to a packet being
    /// transmitted over this link, mutating `feedback` in place:
    ///
    /// 1. `nop` → stamp `L↓`;
    /// 2. an upstream link's `L↓` → leave unchanged;
    /// 3. `L↑` → stamp `L↓` only if the link is currently overloaded
    ///    (within the stamping hysteresis window).
    ///
    /// Outside a monitoring cycle the feedback is never touched, which keeps
    /// the idle-time overhead at zero (§3.1).
    pub fn update_feedback(
        &mut self,
        now: Nanos,
        flow: FlowPair,
        src_as: AsId,
        feedback: &mut Feedback,
    ) -> StampOutcome {
        if !self.monitor.in_mon() {
            return StampOutcome::Unchanged;
        }
        let should_stamp = match feedback {
            Feedback::Nop { .. } => true,
            Feedback::Mon { .. } if feedback.is_decr() => false,
            _ => self.monitor.should_stamp_decr(now),
        };
        if !should_stamp {
            return StampOutcome::Unchanged;
        }
        let Some(kai) = self.as_keys.get(src_as.0) else {
            return StampOutcome::NoKey;
        };
        match stamp_decr(kai, flow, self.link, feedback) {
            Some(new_fb) => {
                *feedback = new_fb;
                self.stamped_decr += 1;
                StampOutcome::StampedDecr
            }
            None => StampOutcome::Unchanged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::{stamp_incr, stamp_nop, Action};
    use crate::types::{HostId, SEC};
    use netfence_crypto::TimeVaryingSecret;

    fn keys() -> (AsKeyTable, AsKeyTable) {
        use netfence_crypto::{full_mesh_exchange, AsKeyAgent};
        let agents = vec![AsKeyAgent::new(1, 111), AsKeyAgent::new(2, 222)];
        let mut t = full_mesh_exchange(&agents);
        (t.remove(0), t.remove(0))
    }

    fn make_mon(link: &mut BottleneckLink, now: &mut Nanos) {
        while !link.in_mon() {
            *now += SEC;
            for i in 0..100 {
                link.record_regular(1500, i % 5 == 0);
            }
            link.tick(*now);
        }
    }

    #[test]
    fn idle_link_never_stamps() {
        let (_t1, t2) = keys();
        let cfg = Config::default();
        let mut bl = BottleneckLink::new(LinkId(9), 10_000_000, t2, cfg, 0);
        let mut ka = TimeVaryingSecret::new([1; 16]);
        let flow = FlowPair::new(HostId(1), HostId(2));
        let mut fb = stamp_nop(&mut ka, SEC, flow);
        assert_eq!(bl.update_feedback(SEC, flow, AsId(1), &mut fb), StampOutcome::Unchanged);
        assert!(fb.is_nop());
    }

    #[test]
    fn mon_state_stamps_nop_unconditionally() {
        let (_t1, t2) = keys();
        let cfg = Config::short_timers();
        let mut bl = BottleneckLink::new(LinkId(9), 10_000_000, t2, cfg, 0);
        let mut now = 0;
        make_mon(&mut bl, &mut now);
        let mut ka = TimeVaryingSecret::new([1; 16]);
        let flow = FlowPair::new(HostId(1), HostId(2));
        // Even long after the hysteresis window, nop feedback is converted
        // to L↓ (rule 1): the sender must be brought under a rate limiter.
        let later = now + 100 * SEC;
        let mut fb = stamp_nop(&mut ka, later, flow);
        assert_eq!(bl.update_feedback(later, flow, AsId(1), &mut fb), StampOutcome::StampedDecr);
        assert!(fb.is_decr());
        assert_eq!(fb.link(), Some(LinkId(9)));
        assert_eq!(bl.stamped_decr_count(), 1);
    }

    #[test]
    fn upstream_decr_is_never_overwritten() {
        let (_t1, t2) = keys();
        let cfg = Config::short_timers();
        let mut bl = BottleneckLink::new(LinkId(9), 10_000_000, t2, cfg, 0);
        let mut now = 0;
        make_mon(&mut bl, &mut now);
        let flow = FlowPair::new(HostId(1), HostId(2));
        let mut fb = Feedback::Mon {
            link: LinkId(5),
            action: Action::Decr,
            ts: (now / SEC) as u32,
            token: 0x1234,
            token_nop: None,
        };
        let before = fb;
        assert_eq!(bl.update_feedback(now, flow, AsId(1), &mut fb), StampOutcome::Unchanged);
        assert_eq!(fb, before);
    }

    #[test]
    fn incr_is_overwritten_only_while_overloaded() {
        let (_t1, t2) = keys();
        let cfg = Config::short_timers();
        let mut bl = BottleneckLink::new(LinkId(9), 10_000_000, t2, cfg.clone(), 0);
        let mut now = 0;
        make_mon(&mut bl, &mut now);
        let mut ka = TimeVaryingSecret::new([1; 16]);
        let flow = FlowPair::new(HostId(1), HostId(2));

        // Inside the hysteresis window: L↑ becomes L↓.
        bl.note_congestion(now);
        let mut fb = stamp_incr(&mut ka, now, flow, LinkId(9));
        assert_eq!(bl.update_feedback(now, flow, AsId(1), &mut fb), StampOutcome::StampedDecr);
        assert!(fb.is_decr());

        // Far outside the hysteresis window: L↑ passes untouched.
        let later = now + 10 * cfg.ilim;
        let mut fb = stamp_incr(&mut ka, later, flow, LinkId(9));
        assert_eq!(bl.update_feedback(later, flow, AsId(1), &mut fb), StampOutcome::Unchanged);
        assert!(fb.is_incr());
    }

    #[test]
    fn unknown_source_as_reports_no_key() {
        let (_t1, t2) = keys();
        let cfg = Config::short_timers();
        let mut bl = BottleneckLink::new(LinkId(9), 10_000_000, t2, cfg, 0);
        let mut now = 0;
        make_mon(&mut bl, &mut now);
        let mut ka = TimeVaryingSecret::new([1; 16]);
        let flow = FlowPair::new(HostId(1), HostId(2));
        let mut fb = stamp_nop(&mut ka, now, flow);
        assert_eq!(bl.update_feedback(now, flow, AsId(42), &mut fb), StampOutcome::NoKey);
        assert!(fb.is_nop());
    }

    #[test]
    fn request_channel_capacity_is_five_percent() {
        let (_t1, t2) = keys();
        let bl = BottleneckLink::new(LinkId(9), 100_000_000, t2, Config::default(), 0);
        assert_eq!(bl.request_channel_capacity(), 5_000_000);
    }

    #[test]
    fn channel_ordering_prioritizes_regular_and_request_over_legacy() {
        // Channel is ordered so schedulers can sort: Regular < Request <
        // Legacy == descending forwarding priority of the legacy channel.
        assert!(Channel::Regular < Channel::Request);
        assert!(Channel::Request < Channel::Legacy);
    }
}
