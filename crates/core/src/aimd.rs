//! Robust AIMD rate-limit adjustment (§4.3.4, Figure 17).
//!
//! An access router adjusts each (sender, bottleneck link) rate limit once
//! per control interval `Ilim`:
//!
//! 1. If the limiter has seen `L↑` feedback newer than the interval start
//!    (`hasIncr`), and the sender actually used more than half of its limit,
//!    the limit grows additively by `Δ`.
//! 2. Otherwise the limit shrinks multiplicatively to `(1 − δ)·rlim`.
//!
//! The "robust" part is the combination with the bottleneck's stamping
//! hysteresis (Figure 4): the bottleneck keeps stamping `L↓` for two full
//! control intervals after congestion ends, so a sender that congested the
//! link cannot obtain `L↑` feedback covering a whole interval — hiding `L↓`
//! or staying silent both lead to a decrease. The throughput check prevents
//! a sender from inflating its limit by sending slowly for a long time and
//! then bursting.

use crate::config::Config;
use crate::feedback::{Action, Feedback};
use crate::types::{Bps, Nanos, SEC};

/// What the adjustment decided, for logging/metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adjustment {
    /// Additive increase by `Δ`.
    Increased,
    /// Held constant (had `L↑` but under-utilized the limit).
    Kept,
    /// Multiplicative decrease to `(1 − δ)·rlim`.
    Decreased,
}

/// Per-rate-limiter AIMD state (the `m_hasIncr` / `m_ts` variables of
/// Figure 17 plus the rate limit itself).
#[derive(Debug, Clone)]
pub struct AimdState {
    /// Current rate limit in bits per second.
    rate: Bps,
    /// Whether `L↑` feedback with a timestamp newer than the current control
    /// interval start has been observed.
    has_incr: bool,
    /// Start of the current control interval (nanoseconds).
    interval_start: Nanos,
    /// Whether any `L↓` feedback has been observed during the current
    /// control interval (used by the access router's garbage-collection rule
    /// and by the congestion-quota extension, not by the core adjustment).
    saw_decr: bool,
}

impl AimdState {
    /// Create AIMD state with the configured initial rate limit.
    pub fn new(cfg: &Config, now: Nanos) -> Self {
        AimdState {
            rate: cfg.initial_rate_limit,
            has_incr: false,
            interval_start: now,
            saw_decr: false,
        }
    }

    /// Create AIMD state with an explicit starting rate.
    pub fn with_rate(rate: Bps, now: Nanos) -> Self {
        AimdState { rate, has_incr: false, interval_start: now, saw_decr: false }
    }

    /// The current rate limit.
    pub fn rate(&self) -> Bps {
        self.rate
    }

    /// Start time of the current control interval.
    pub fn interval_start(&self) -> Nanos {
        self.interval_start
    }

    /// Whether `L↓` feedback was seen in the current interval.
    pub fn saw_decr(&self) -> bool {
        self.saw_decr
    }

    /// Whether `L↑` feedback newer than the interval start was seen.
    pub fn has_incr(&self) -> bool {
        self.has_incr
    }

    /// Record feedback observed for this limiter (Figure 17
    /// `update_status`). The feedback timestamp (in seconds) is compared
    /// against the interval start; only `L↑` newer than the interval start
    /// sets `hasIncr`.
    pub fn observe(&mut self, fb: &Feedback) {
        if let Feedback::Mon { action, ts, .. } = fb {
            match action {
                Action::Incr => {
                    if u64::from(*ts) * SEC >= self.interval_start_secs() * SEC {
                        self.has_incr = true;
                    }
                }
                Action::Decr => {
                    self.saw_decr = true;
                }
            }
        }
    }

    fn interval_start_secs(&self) -> u64 {
        self.interval_start / SEC
    }

    /// Whether the control interval that started at `interval_start` has
    /// elapsed at `now`.
    pub fn interval_elapsed(&self, now: Nanos, cfg: &Config) -> bool {
        now.saturating_sub(self.interval_start) >= cfg.ilim
    }

    /// Apply the end-of-interval adjustment (Figure 17
    /// `adjust_rate_limit`). `throughput_bps` is the limiter's measured
    /// outgoing rate over the ending interval.
    pub fn adjust(&mut self, now: Nanos, throughput_bps: f64, cfg: &Config) -> Adjustment {
        let decision = if self.has_incr {
            if throughput_bps > self.rate as f64 / 2.0 {
                self.rate = self.rate.saturating_add(cfg.additive_increase).min(cfg.max_rate_limit);
                Adjustment::Increased
            } else {
                Adjustment::Kept
            }
        } else {
            let decreased = (self.rate as f64 * (1.0 - cfg.multiplicative_decrease)) as Bps;
            self.rate = decreased.max(cfg.min_rate_limit);
            Adjustment::Decreased
        };
        self.has_incr = false;
        self.saw_decr = false;
        self.interval_start = now;
        decision
    }
}

/// Compute Jain's fairness index of a set of rates (used by the analysis
/// tests and the Figure 9 harness): `(Σx)² / (n·Σx²)`.
pub fn jain_fairness_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (rates.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::Action;
    use crate::types::LinkId;

    fn incr(ts: u32) -> Feedback {
        Feedback::Mon { link: LinkId(1), action: Action::Incr, ts, token: 0, token_nop: None }
    }
    fn decr(ts: u32) -> Feedback {
        Feedback::Mon { link: LinkId(1), action: Action::Decr, ts, token: 0, token_nop: None }
    }

    #[test]
    fn increase_requires_incr_and_utilization() {
        let cfg = Config::default();
        let mut s = AimdState::with_rate(100_000, 0);
        s.observe(&incr(1));
        // Utilized more than half the limit => increase by Δ.
        assert_eq!(s.adjust(2 * SEC, 60_000.0, &cfg), Adjustment::Increased);
        assert_eq!(s.rate(), 112_000);
    }

    #[test]
    fn underutilized_limiter_is_not_increased() {
        // Prevents a malicious sender from inflating its limit by sending
        // slowly for a long time (§4.3.4 rule 1).
        let cfg = Config::default();
        let mut s = AimdState::with_rate(100_000, 0);
        s.observe(&incr(1));
        assert_eq!(s.adjust(2 * SEC, 10_000.0, &cfg), Adjustment::Kept);
        assert_eq!(s.rate(), 100_000);
    }

    #[test]
    fn no_incr_feedback_means_decrease() {
        // Hiding L↓ (or not sending at all) cannot prevent the decrease:
        // without fresh L↑ the limit is always cut.
        let cfg = Config::default();
        let mut s = AimdState::with_rate(100_000, 0);
        assert_eq!(s.adjust(2 * SEC, 90_000.0, &cfg), Adjustment::Decreased);
        assert_eq!(s.rate(), 90_000);
        // Presenting only L↓ also decreases.
        s.observe(&decr(3));
        assert_eq!(s.adjust(4 * SEC, 90_000.0, &cfg), Adjustment::Decreased);
        assert_eq!(s.rate(), 81_000);
    }

    #[test]
    fn stale_incr_feedback_does_not_count() {
        let cfg = Config::default();
        // Interval starts at t = 10 s; feedback stamped at 5 s is older than
        // the interval start and must not set hasIncr.
        let mut s = AimdState::with_rate(100_000, 10 * SEC);
        s.observe(&incr(5));
        assert!(!s.has_incr());
        assert_eq!(s.adjust(12 * SEC, 90_000.0, &cfg), Adjustment::Decreased);
    }

    #[test]
    fn rate_respects_floor_and_ceiling() {
        let cfg = Config::default();
        let mut s = AimdState::with_rate(cfg.min_rate_limit, 0);
        s.adjust(2 * SEC, 0.0, &cfg);
        assert_eq!(s.rate(), cfg.min_rate_limit);

        let mut s = AimdState::with_rate(cfg.max_rate_limit, 0);
        s.observe(&incr(1));
        s.adjust(2 * SEC, cfg.max_rate_limit as f64, &cfg);
        assert_eq!(s.rate(), cfg.max_rate_limit);
    }

    #[test]
    fn interval_elapsed() {
        let cfg = Config::default();
        let s = AimdState::with_rate(1000, 10 * SEC);
        assert!(!s.interval_elapsed(11 * SEC, &cfg));
        assert!(s.interval_elapsed(12 * SEC, &cfg));
    }

    #[test]
    fn observe_resets_each_interval() {
        let cfg = Config::default();
        let mut s = AimdState::with_rate(100_000, 0);
        s.observe(&incr(1));
        s.observe(&decr(1));
        assert!(s.has_incr() && s.saw_decr());
        s.adjust(2 * SEC, 90_000.0, &cfg);
        assert!(!s.has_incr() && !s.saw_decr());
    }

    /// Two senders through the same bottleneck converge to the same rate:
    /// the classic Chiu–Jain result the paper's fairness proof relies on.
    #[test]
    fn aimd_converges_to_fairness() {
        let cfg = Config::default();
        let mut a = AimdState::with_rate(400_000, 0);
        let mut b = AimdState::with_rate(50_000, 0);
        let capacity = 300_000.0;
        let mut now = 0;
        let mut last_index = jain_fairness_index(&[a.rate() as f64, b.rate() as f64]);
        for round in 0..200 {
            now += cfg.ilim;
            let overloaded = (a.rate() + b.rate()) as f64 > capacity;
            let ts = (now / SEC) as u32;
            if !overloaded {
                a.observe(&incr(ts));
                b.observe(&incr(ts));
            }
            // Senders always utilize their full limits.
            a.adjust(now, a.rate() as f64, &cfg);
            b.adjust(now, b.rate() as f64, &cfg);
            if round % 50 == 49 {
                let idx = jain_fairness_index(&[a.rate() as f64, b.rate() as f64]);
                assert!(
                    idx >= last_index - 1e-6,
                    "fairness index decreased: {last_index} -> {idx}"
                );
                last_index = idx;
            }
        }
        let ratio = a.rate() as f64 / b.rate() as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "rates did not converge: {} vs {}",
            a.rate(),
            b.rate()
        );
        assert!(last_index > 0.99);
    }

    #[test]
    fn fairness_index_basics() {
        assert!((jain_fairness_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(jain_fairness_index(&[]), 1.0);
        assert_eq!(jain_fairness_index(&[0.0, 0.0]), 1.0);
    }

    proptest::proptest! {
        /// The decrease path is always by exactly (1-δ) down to the floor,
        /// and the increase path by exactly Δ up to the ceiling.
        #[test]
        fn adjustment_magnitudes(rate in 10_000u64..10_000_000u64, incr_seen: bool, tput_frac in 0.0f64..1.0) {
            let cfg = Config::default();
            let mut s = AimdState::with_rate(rate, 0);
            if incr_seen { s.observe(&incr(1)); }
            let tput = rate as f64 * tput_frac;
            let before = s.rate();
            let decision = s.adjust(2 * SEC, tput, &cfg);
            match decision {
                Adjustment::Increased => {
                    proptest::prop_assert!(incr_seen && tput > before as f64 / 2.0);
                    proptest::prop_assert_eq!(s.rate(), (before + cfg.additive_increase).min(cfg.max_rate_limit));
                }
                Adjustment::Kept => {
                    proptest::prop_assert!(incr_seen);
                    proptest::prop_assert_eq!(s.rate(), before);
                }
                Adjustment::Decreased => {
                    proptest::prop_assert!(!incr_seen);
                    let expect = ((before as f64 * 0.9) as u64).max(cfg.min_rate_limit);
                    proptest::prop_assert_eq!(s.rate(), expect);
                }
            }
        }
    }
}
