//! Per-AS damage localization at bottleneck routers (§4.5).
//!
//! Access routers are the enforcement point of NetFence; if one is
//! compromised, the hosts behind it (or the router itself) can flood
//! without being policed. NetFence confines the damage to the compromised
//! AS: when congestion persists *after* a monitoring cycle has started — a
//! signal that some access routers are not doing their job — a bottleneck
//! router separates traffic by source AS. The paper describes two
//! mechanisms and notes a third:
//!
//! * **per-AS queues / per-AS rate limits** set to each AS's max-min fair
//!   share of the congested link (≈35 K ASes on today's Internet, so the
//!   state is affordable);
//! * **heavy-hitter detection** (RED-PD style): only ASes that keep sending
//!   above their share are throttled — legitimate ASes keep reducing their
//!   senders' traffic in response to `L↓`, so persistent heavy hitters are
//!   the compromised ones.
//!
//! Both modes are implemented here behind one type, [`AsPolicer`]. Source
//! ASes are identified via Passport ([`crate::passport`]), so they cannot be
//! spoofed.

use std::collections::BTreeMap;

use crate::types::{AsId, Bps, Nanos, SEC};

/// Which localization mechanism to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsPolicingMode {
    /// Enforce each AS's max-min fair share with a per-AS rate limit.
    FairShare,
    /// RED-PD-style heavy-hitter detection: only ASes sending more than
    /// `factor ×` their fair share are throttled (to their fair share).
    HeavyHitter {
        /// Multiple of the fair share above which an AS is considered a
        /// heavy hitter (RED-PD uses a small constant; 1.5 is typical).
        factor_x100: u32,
    },
}

/// Per-AS accounting state.
#[derive(Debug, Clone, Default)]
struct AsState {
    /// Bytes observed in the current measurement interval.
    bytes: u64,
    /// EWMA of the AS's arrival rate in bits per second.
    ewma_rate: f64,
    /// Rate limit currently applied to the AS (None = unlimited).
    limit: Option<Bps>,
    /// Leaky-bucket credit in bits for enforcing `limit`.
    credit_bits: f64,
    /// Last time the credit was updated.
    last_credit_update: Nanos,
    /// Packets dropped by the policer for this AS.
    dropped: u64,
}

/// The per-AS policer attached to a congested link.
#[derive(Debug)]
pub struct AsPolicer {
    mode: AsPolicingMode,
    /// Capacity of the protected link, bits per second.
    capacity: Bps,
    /// Measurement/evaluation interval.
    interval: Nanos,
    /// Last evaluation time.
    last_eval: Nanos,
    /// EWMA weight for per-AS rates.
    ewma_weight: f64,
    // BTreeMap: the policer sweeps every tracked AS each interval and its
    // fair-share decisions must not depend on iteration order.
    per_as: BTreeMap<AsId, AsState>,
}

impl AsPolicer {
    /// Create a policer for a link of the given capacity.
    pub fn new(mode: AsPolicingMode, capacity: Bps, now: Nanos) -> Self {
        AsPolicer {
            mode,
            capacity,
            interval: SEC,
            last_eval: now,
            ewma_weight: 0.3,
            per_as: BTreeMap::new(),
        }
    }

    /// Number of ASes currently tracked (the paper's scalability argument:
    /// this is bounded by the number of ASes, not hosts).
    pub fn tracked_ases(&self) -> usize {
        self.per_as.len()
    }

    /// The rate limit currently applied to an AS, if any.
    pub fn limit_of(&self, as_id: AsId) -> Option<Bps> {
        self.per_as.get(&as_id).and_then(|s| s.limit)
    }

    /// Packets dropped for an AS so far.
    pub fn dropped_of(&self, as_id: AsId) -> u64 {
        self.per_as.get(&as_id).map(|s| s.dropped).unwrap_or(0)
    }

    /// Offer a packet from `src_as`; returns `true` if it may be forwarded.
    ///
    /// Also records the packet for rate estimation. Must be called for every
    /// regular packet arriving at the protected link while localization is
    /// active.
    pub fn admit(&mut self, now: Nanos, src_as: AsId, bytes: usize) -> bool {
        self.maybe_evaluate(now);
        let st = self.per_as.entry(src_as).or_default();
        st.bytes += bytes as u64;
        let Some(limit) = st.limit else { return true };
        // Leaky-bucket enforcement of the per-AS limit.
        let elapsed = now.saturating_sub(st.last_credit_update);
        st.last_credit_update = now;
        let burst_bits = 2.0 * 1500.0 * 8.0 + limit as f64 * 0.1; // ~100 ms of burst
        st.credit_bits = (st.credit_bits + elapsed as f64 / SEC as f64 * limit as f64)
            .min(burst_bits.max(limit as f64 * self.interval as f64 / SEC as f64 * 0.25));
        let need = bytes as f64 * 8.0;
        if st.credit_bits >= need {
            st.credit_bits -= need;
            true
        } else {
            st.dropped += 1;
            false
        }
    }

    /// Re-compute per-AS limits when the measurement interval has elapsed.
    fn maybe_evaluate(&mut self, now: Nanos) {
        if now.saturating_sub(self.last_eval) < self.interval {
            return;
        }
        let elapsed = now - self.last_eval;
        self.last_eval = now;
        let w = self.ewma_weight;
        for st in self.per_as.values_mut() {
            let inst = st.bytes as f64 * 8.0 * SEC as f64 / elapsed as f64;
            st.ewma_rate = st.ewma_rate * (1.0 - w) + inst * w;
            st.bytes = 0;
        }
        // Active ASes contend for the capacity; each gets an equal share
        // (a single round of max-min since all demands here exceed their
        // shares during an attack).
        let active: Vec<AsId> =
            self.per_as.iter().filter(|(_, s)| s.ewma_rate > 1_000.0).map(|(a, _)| *a).collect();
        if active.is_empty() {
            return;
        }
        let fair_share = self.capacity as f64 / active.len() as f64;
        for (as_id, st) in self.per_as.iter_mut() {
            if !active.contains(as_id) {
                st.limit = None;
                continue;
            }
            match self.mode {
                AsPolicingMode::FairShare => {
                    st.limit = Some(fair_share as Bps);
                }
                AsPolicingMode::HeavyHitter { factor_x100 } => {
                    let threshold = fair_share * factor_x100 as f64 / 100.0;
                    if st.ewma_rate > threshold {
                        st.limit = Some(fair_share as Bps);
                    } else {
                        st.limit = None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MILLI;
    use std::collections::HashMap;

    /// Drive `seconds` of traffic: `rates` maps an AS to its sending rate in
    /// bps (1500 B packets). Returns delivered bits per AS.
    fn run(policer: &mut AsPolicer, rates: &[(AsId, Bps)], seconds: u64) -> HashMap<AsId, u64> {
        let mut delivered: HashMap<AsId, u64> = HashMap::new();
        let mut sent: HashMap<AsId, u64> = HashMap::new();
        let pkt_bits: u64 = 1500 * 8;
        // Generate each AS's constant-rate packet arrivals in millisecond
        // steps.
        for ms in 0..seconds * 1000 {
            let now = ms * MILLI;
            for (as_id, rate) in rates {
                // Number of packets this AS should have sent by `now`.
                let due = rate * ms / 1000 / pkt_bits;
                let s = sent.entry(*as_id).or_insert(0);
                while *s < due {
                    if policer.admit(now, *as_id, 1500) {
                        *delivered.entry(*as_id).or_insert(0) += pkt_bits;
                    }
                    *s += 1;
                }
            }
        }
        delivered
    }

    #[test]
    fn unlimited_until_evaluation() {
        let mut p = AsPolicer::new(AsPolicingMode::FairShare, 10_000_000, 0);
        assert!(p.admit(0, AsId(1), 1500));
        assert_eq!(p.limit_of(AsId(1)), None);
    }

    #[test]
    fn fair_share_mode_limits_every_active_as() {
        let mut p = AsPolicer::new(AsPolicingMode::FairShare, 10_000_000, 0);
        // Two ASes: one floods at 20 Mbps, one sends 2 Mbps.
        let delivered = run(&mut p, &[(AsId(1), 20_000_000), (AsId(2), 2_000_000)], 10);
        assert_eq!(p.tracked_ases(), 2);
        assert!(p.limit_of(AsId(1)).is_some());
        // The flooder is confined to roughly its 5 Mbps fair share.
        let flooder_rate = delivered[&AsId(1)] as f64 / 10.0;
        assert!(flooder_rate < 7_000_000.0, "flooder got {flooder_rate} bps");
        // The modest AS keeps (most of) its traffic.
        let modest_rate = delivered[&AsId(2)] as f64 / 10.0;
        assert!(modest_rate > 1_500_000.0, "modest AS got {modest_rate} bps");
    }

    #[test]
    fn heavy_hitter_mode_only_throttles_the_flooder() {
        let mut p = AsPolicer::new(AsPolicingMode::HeavyHitter { factor_x100: 150 }, 10_000_000, 0);
        let delivered = run(&mut p, &[(AsId(1), 20_000_000), (AsId(2), 2_000_000)], 10);
        // The compromised AS is detected and limited...
        assert!(p.limit_of(AsId(1)).is_some(), "flooding AS must be detected as a heavy hitter");
        // ...while the well-behaved AS is left alone entirely.
        assert_eq!(p.limit_of(AsId(2)), None);
        assert_eq!(p.dropped_of(AsId(2)), 0);
        let modest_rate = delivered[&AsId(2)] as f64 / 10.0;
        assert!(modest_rate > 1_800_000.0);
    }

    #[test]
    fn state_is_per_as_not_per_host() {
        // The scalability claim of §5.1: policing state grows with the
        // number of ASes, regardless of how many hosts send.
        let mut p = AsPolicer::new(AsPolicingMode::FairShare, 10_000_000, 0);
        for host in 0..10_000u64 {
            let as_id = AsId((host % 7) as u32);
            p.admit(host * MILLI, as_id, 1500);
        }
        assert_eq!(p.tracked_ases(), 7);
    }
}
