//! # netfence-core
//!
//! A from-scratch implementation of the **NetFence** DoS-resistant network
//! architecture (Liu, Yang, Xia — SIGCOMM 2010): *secure congestion policing
//! feedback* plus the closed-loop congestion policing built on top of it.
//!
//! The crate is sans-I/O and simulation-agnostic: every state machine takes
//! explicit `now` timestamps and packet/header values and returns decisions.
//! The companion crates bind it to a discrete-event network simulator
//! (`netfence-sim` / `netfence-systems`) and regenerate the paper's
//! evaluation (`netfence-experiments`, `netfence-bench`).
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | §4.1, §4.4 feedback + MAC tokens (Eq. 1–3) | [`feedback`] |
//! | Figure 6 header wire format | [`header`] |
//! | §4.2 request channel policing (Figure 15) | [`request_limiter`] |
//! | §4.3.3 leaky-bucket regular limiter (Figure 16) | [`regular_limiter`] |
//! | §4.3.4 robust AIMD (Figure 17) | [`aimd`] |
//! | §4.3.1 attack detection & monitoring cycles (Figure 19) | [`monitor`] |
//! | §4.3.2 bottleneck feedback rewriting | [`bottleneck`] |
//! | Figure 18 access-router policing pipeline | [`access`] |
//! | §3.1/§4.2 end-host shim behaviour | [`endpoint`] |
//! | §4.5 per-AS damage localization | [`as_police`] |
//! | §4.5 / \[26\] Passport source authentication | [`passport`] |
//! | Appendix B multi-bottleneck extensions | [`multi`] |
//! | §7 congestion quota | [`congestion_quota`] |
//! | Figure 3 parameters | [`config`] |
//!
//! ## Quick example
//!
//! ```
//! use netfence_core::prelude::*;
//! use netfence_crypto::{full_mesh_exchange, AsKeyAgent};
//!
//! // Two ASes exchange Passport keys.
//! let agents = vec![AsKeyAgent::new(1, 42), AsKeyAgent::new(2, 43)];
//! let mut tables = full_mesh_exchange(&agents);
//!
//! // AS 1 runs an access router; AS 2 runs a bottleneck link.
//! let cfg = Config::default();
//! let mut access = AccessRouter::new(cfg.clone(), AsId(1), [7; 16], tables.remove(0));
//! access.register_link_as(LinkId(100), AsId(2));
//!
//! // A sender requests, the access router stamps nop feedback.
//! let flow = FlowPair::new(HostId(10), HostId(20));
//! let mut header = NetFenceHeader::request(6, 0, Feedback::Nop { ts: 0, token: 0 });
//! let verdict = access.process_outbound(SEC, flow, &mut header, 92);
//! assert!(matches!(verdict, AccessVerdict::Forward { .. }));
//! assert!(header.presented.is_nop());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
pub mod aimd;
pub mod as_police;
pub mod bottleneck;
pub mod config;
pub mod congestion_quota;
pub mod endpoint;
pub mod feedback;
pub mod header;
pub mod monitor;
pub mod multi;
pub mod passport;
pub mod regular_limiter;
pub mod request_limiter;
pub mod types;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::access::{AccessRouter, AccessVerdict, DropReason};
    pub use crate::aimd::{jain_fairness_index, Adjustment, AimdState};
    pub use crate::bottleneck::{BottleneckLink, Channel, StampOutcome};
    pub use crate::config::Config;
    pub use crate::endpoint::{ReceiverPolicy, ReceiverShim, SenderShim};
    pub use crate::feedback::{Action, Feedback, FeedbackError};
    pub use crate::header::{NetFenceHeader, PacketKind};
    pub use crate::monitor::MonitorEvent;
    pub use crate::regular_limiter::{BucketVerdict, LeakyBucket};
    pub use crate::request_limiter::{RequestLimiter, RequestVerdict};
    pub use crate::types::{
        AsId, Bps, FlowPair, HostId, LimiterKey, LinkId, Nanos, MICRO, MILLI, SEC,
    };
}

pub use prelude::*;
