//! NetFence protocol parameters (Figure 3 of the paper) plus the handful of
//! implementation constants the paper describes in prose.

use crate::types::{Bps, Nanos, MILLI, SEC};

/// The full parameter set of a NetFence deployment.
///
/// Field defaults reproduce Figure 3 of the paper exactly:
///
/// | Name | Value | Meaning |
/// |---|---|---|
/// | `l1` | 1 ms | level-1 request packet rate limit |
/// | `Ilim` | 2 s | rate limiter control interval length |
/// | `w` | 4 s | feedback expiration time |
/// | `Δ` | 12 kbps | rate limiter additive increase |
/// | `δ` | 0.1 | rate limiter multiplicative decrease |
/// | `p_th` | 2% | packet loss rate threshold |
/// | `Q_lim` | 0.2 s × link bw | max queue length |
/// | `min_thresh` | 0.5 Q_lim | RED parameter |
/// | `max_thresh` | 0.75 Q_lim | RED parameter |
/// | `w_q` | 0.1 | EWMA weight for the average queue length |
#[derive(Debug, Clone)]
pub struct Config {
    /// `l1`: the inter-packet interval of the level-1 request packet rate
    /// limit (one level-1 request packet per `l1`). Figure 3: 1 ms.
    pub l1_interval: Nanos,
    /// `Ilim`: rate limiter control interval length. Figure 3: 2 s.
    pub ilim: Nanos,
    /// `w`: feedback expiration time. Figure 3: 4 s.
    pub feedback_expiry: Nanos,
    /// `Δ`: additive increase step of the regular rate limiter in bits per
    /// second. Figure 3: 12 kbps.
    pub additive_increase: Bps,
    /// `δ`: multiplicative decrease factor. Figure 3: 0.1 (the limit is cut
    /// to `(1 − δ)·rlim`).
    pub multiplicative_decrease: f64,
    /// `p_th`: regular-packet loss rate threshold used by attack detection.
    /// Figure 3: 2 %.
    pub loss_threshold: f64,
    /// Link utilization threshold used by attack detection on
    /// well-provisioned links (§4.3.1 mentions e.g. 95 %).
    pub utilization_threshold: f64,
    /// `Q_lim` expressed as a queueing delay: maximum queue length is
    /// `qlim_delay × link bandwidth`. Figure 3: 0.2 s.
    pub qlim_delay: Nanos,
    /// RED `min_thresh` as a fraction of `Q_lim`. Figure 3: 0.5.
    pub red_min_thresh_frac: f64,
    /// RED `max_thresh` as a fraction of `Q_lim`. Figure 3: 0.75.
    pub red_max_thresh_frac: f64,
    /// RED maximum drop probability at `max_thresh` (standard RED `max_p`).
    pub red_max_p: f64,
    /// `w_q`: EWMA weight for the RED average queue length. Figure 3: 0.1.
    pub red_wq: f64,
    /// Fraction of link capacity reserved for the request channel (§3.1,
    /// §4.2): 5 %.
    pub request_channel_fraction: f64,
    /// `Ta`: idle time after which an access router terminates a
    /// per-(sender, bottleneck) rate limiter (§4.3.1, "a few hours"). The
    /// default here is 2 hours; experiment harnesses shorten it.
    pub ta: Nanos,
    /// `Tb`: quiet time after which a bottleneck router terminates a
    /// monitoring cycle (§4.3.1, "a few hours"). Default 2 hours.
    pub tb: Nanos,
    /// Period between two attack-detection evaluations at a bottleneck link
    /// (the EWMA update interval of Figure 19's `check_packet_loss`).
    pub detection_interval: Nanos,
    /// EWMA weight for the attack-detection loss estimate (Figure 19 uses
    /// 0.1: `drop_rate = drop_rate*0.9 + dr*0.1`).
    pub detection_ewma: f64,
    /// Initial rate limit installed when a (sender, bottleneck) rate limiter
    /// is created. The paper targets fair shares of 50–400 kbps; we start in
    /// the middle of that band.
    pub initial_rate_limit: Bps,
    /// Floor below which a rate limit is never decreased. It is kept above
    /// one MTU per `max_limiter_delay` so that a minimal-rate limiter still
    /// lets packets trickle through instead of dropping everything (which
    /// would break the sender's feedback loop permanently).
    pub min_rate_limit: Bps,
    /// Ceiling for a rate limit (avoids unbounded growth during long idle
    /// monitored periods).
    pub max_rate_limit: Bps,
    /// Maximum queueing delay the regular-packet leaky bucket will impose
    /// before dropping ("caching_delay_too_long" in Figure 16).
    pub max_limiter_delay: Nanos,
    /// Maximum request packet priority level understood by routers.
    pub max_request_priority: u8,
    /// Token bucket depth of the request limiter, in tokens. It must be
    /// large enough to afford one high-priority request after a back-off
    /// (level 10 costs 512 tokens), otherwise a sender that lost its
    /// feedback could never recover.
    pub request_bucket_depth: f64,
    /// Number of extra control intervals the `L↓` feedback keeps being
    /// stamped after congestion abates (`2·Ilim` hysteresis, §4.3.4 and
    /// Figure 4). The appendix shows 2 is the minimum robust value; the
    /// ablation bench varies it.
    pub hysteresis_intervals: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            l1_interval: MILLI,
            ilim: 2 * SEC,
            feedback_expiry: 4 * SEC,
            additive_increase: 12_000,
            multiplicative_decrease: 0.1,
            loss_threshold: 0.02,
            utilization_threshold: 0.95,
            qlim_delay: 200 * MILLI,
            red_min_thresh_frac: 0.5,
            red_max_thresh_frac: 0.75,
            red_max_p: 0.1,
            red_wq: 0.1,
            request_channel_fraction: 0.05,
            ta: 2 * 3600 * SEC,
            tb: 2 * 3600 * SEC,
            detection_interval: SEC,
            detection_ewma: 0.1,
            initial_rate_limit: 200_000,
            min_rate_limit: 16_000,
            max_rate_limit: 100_000_000,
            max_limiter_delay: 2 * SEC,
            max_request_priority: 16,
            request_bucket_depth: 4096.0,
            hysteresis_intervals: 2,
        }
    }
}

impl Config {
    /// A configuration with timers shortened so that unit tests and small
    /// simulations exercise rate-limiter garbage collection and monitoring
    /// cycle termination without simulating hours.
    pub fn short_timers() -> Self {
        Config { ta: 60 * SEC, tb: 60 * SEC, ..Config::default() }
    }

    /// The request-channel token refill rate in tokens per second implied by
    /// `l1` (one level-1 token per `l1`).
    pub fn request_tokens_per_sec(&self) -> f64 {
        SEC as f64 / self.l1_interval as f64
    }

    /// Sanity-check parameter relationships the design relies on.
    ///
    /// Returns a human-readable list of violations (empty when valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.ilim == 0 {
            problems.push("Ilim must be positive".into());
        }
        if self.feedback_expiry < self.ilim {
            problems.push("feedback expiration w should be at least one control interval".into());
        }
        if !(0.0..1.0).contains(&self.multiplicative_decrease) {
            problems.push("δ must lie in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.loss_threshold) {
            problems.push("p_th must be a probability".into());
        }
        if self.red_min_thresh_frac >= self.red_max_thresh_frac {
            problems.push("RED min_thresh must be below max_thresh".into());
        }
        if self.min_rate_limit == 0 || self.min_rate_limit > self.initial_rate_limit {
            problems.push("rate limit floor must be positive and below the initial limit".into());
        }
        if !(0.0..=1.0).contains(&self.request_channel_fraction) {
            problems.push("request channel fraction must be a fraction".into());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3 of the paper, asserted literally.
    #[test]
    fn figure3_values() {
        let c = Config::default();
        assert_eq!(c.l1_interval, MILLI);
        assert_eq!(c.ilim, 2 * SEC);
        assert_eq!(c.feedback_expiry, 4 * SEC);
        assert_eq!(c.additive_increase, 12_000);
        assert!((c.multiplicative_decrease - 0.1).abs() < 1e-12);
        assert!((c.loss_threshold - 0.02).abs() < 1e-12);
        assert_eq!(c.qlim_delay, 200 * MILLI);
        assert!((c.red_min_thresh_frac - 0.5).abs() < 1e-12);
        assert!((c.red_max_thresh_frac - 0.75).abs() < 1e-12);
        assert!((c.red_wq - 0.1).abs() < 1e-12);
        assert!((c.request_channel_fraction - 0.05).abs() < 1e-12);
    }

    #[test]
    fn default_config_is_valid() {
        assert!(Config::default().validate().is_empty());
        assert!(Config::short_timers().validate().is_empty());
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let c = Config {
            multiplicative_decrease: 1.5,
            red_min_thresh_frac: 0.9,
            min_rate_limit: 0,
            ..Config::default()
        };
        let problems = c.validate();
        assert_eq!(problems.len(), 3);
    }

    #[test]
    fn request_token_rate_matches_l1() {
        let c = Config::default();
        assert!((c.request_tokens_per_sec() - 1000.0).abs() < 1e-9);
    }
}
