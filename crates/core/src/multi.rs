//! Multiple-bottleneck extensions (Appendix B of the paper).
//!
//! The core NetFence design polices a regular packet with at most one rate
//! limiter (§4.3.5); when a flow crosses several `mon`-state links, the idle
//! limiters' limits decay and the flow can end up below its fair share at
//! one of the bottlenecks (reproduced in Figure 10). The appendix describes
//! two improvements, both implemented here:
//!
//! * **B.1 — multi-bottleneck feedback in one packet**
//!   ([`MultiFeedback`]): every on-path bottleneck appends its own
//!   `(link, action)` pair, protected by one chained MAC; the access router
//!   passes the packet through *all* the corresponding rate limiters
//!   ([`crate::access::AccessRouter::process_outbound_multi`]). Reproduced
//!   as Figure 13.
//! * **B.2 — rate-limiter inference** ([`InferenceCache`] and
//!   [`adjust_with_inference`]): the packet still carries one feedback, but
//!   the access router remembers which bottleneck links appear on the path
//!   to each destination prefix, polices through all of them, and infers the
//!   missing feedback (`L↑` for one link implies the others were not
//!   congested). Reproduced as Figure 14.

use std::collections::{HashMap, HashSet};

use netfence_crypto::{Cmac, Mac32, MacInput, TimeVaryingSecret};

use crate::access::{AccessRouter, AccessVerdict, DropReason};
use crate::aimd::{Adjustment, AimdState};
use crate::bottleneck::Channel;
use crate::config::Config;
use crate::feedback::Action;
use crate::regular_limiter::BucketVerdict;
use crate::types::{nanos_to_secs, FlowPair, HostId, LimiterKey, LinkId, Nanos};

// ---------------------------------------------------------------------------
// B.1: multi-bottleneck feedback in a single packet
// ---------------------------------------------------------------------------

/// Feedback from zero or more bottleneck links carried in one NetFence
/// header (Appendix B.1). All entries share a single timestamp and are
/// protected by a single chained `token`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiFeedback {
    /// Stamping time at the access router, seconds.
    pub ts: u32,
    /// One `(link, action)` entry per on-path bottleneck, in path order.
    pub entries: Vec<(LinkId, Action)>,
    /// The chained MAC: `MAC_Ka(src,dst,ts)` at the access router, then
    /// `MAC_Kai(src,dst,ts,link,action,previous_token)` at each bottleneck.
    pub token: Mac32,
}

fn origin_input(flow: FlowPair, ts: u32) -> MacInput {
    let mut m = MacInput::new("nf-multi-origin");
    m.push_u32(flow.src.0).push_u32(flow.dst.0).push_u32(ts);
    m
}

fn chain_input(flow: FlowPair, ts: u32, link: LinkId, action: Action, prev: Mac32) -> MacInput {
    let mut m = MacInput::new("nf-multi-chain");
    m.push_u32(flow.src.0)
        .push_u32(flow.dst.0)
        .push_u32(ts)
        .push_u32(link.0)
        .push_u8(matches!(action, Action::Decr) as u8)
        .push_u32(prev);
    m
}

impl MultiFeedback {
    /// Stamp the origin (nop) multi-feedback at the access router (Eq. 4 of
    /// Appendix B.1).
    pub fn origin(ka: &mut TimeVaryingSecret, now: Nanos, flow: FlowPair) -> Self {
        let ts = nanos_to_secs(now);
        MultiFeedback {
            ts,
            entries: Vec::new(),
            token: ka.mac32(now, origin_input(flow, ts).as_bytes()),
        }
    }

    /// Append a bottleneck's feedback, extending the MAC chain (Eq. 5).
    /// Existing entries for the same link are replaced only if the new
    /// action is `Decr` (a link never downgrades its own `L↓`).
    pub fn append(&mut self, kai: &Cmac, flow: FlowPair, link: LinkId, action: Action) {
        self.token = kai.mac32(chain_input(flow, self.ts, link, action, self.token).as_bytes());
        self.entries.push((link, action));
    }

    /// The action recorded for `link`, if present.
    pub fn action_for(&self, link: LinkId) -> Option<Action> {
        self.entries.iter().find(|(l, _)| *l == link).map(|(_, a)| *a)
    }

    /// Validate the whole chain at the access router by recomputing it.
    ///
    /// `kai_for_link` resolves each on-path link to the pairwise key shared
    /// with that link's AS.
    pub fn validate<'a>(
        &self,
        ka: &mut TimeVaryingSecret,
        kai_for_link: impl Fn(LinkId) -> Option<&'a Cmac>,
        now: Nanos,
        flow: FlowPair,
        w: Nanos,
    ) -> bool {
        let now_s = nanos_to_secs(now) as i64;
        if (now_s - self.ts as i64).abs() > (w / crate::types::SEC) as i64 {
            return false;
        }
        let mut token = ka.mac32(now, origin_input(flow, self.ts).as_bytes());
        for (link, action) in &self.entries {
            let Some(kai) = kai_for_link(*link) else { return false };
            token = kai.mac32(chain_input(flow, self.ts, *link, *action, token).as_bytes());
        }
        token == self.token
    }

    /// Encoded length in bytes: 8-byte common part + 4-byte token + 5 bytes
    /// per entry (link id + action), rounded to whole bytes. Used for
    /// overhead accounting; this is the "longer and variable-length header"
    /// trade-off §4.3.5 mentions.
    pub fn encoded_len(&self) -> usize {
        12 + 5 * self.entries.len()
    }
}

impl AccessRouter {
    /// Appendix B.1 regular-packet policing: pass the packet through the
    /// rate limiters of *all* the bottleneck links listed in its
    /// multi-feedback; drop it if any limiter drops it; otherwise it departs
    /// when the slowest limiter releases it.
    ///
    /// The multi-feedback is reset to the origin (nop-equivalent) stamp
    /// before forwarding, exactly as the single-feedback design resets to
    /// `L↑`/`nop`.
    pub fn process_outbound_multi(
        &mut self,
        now: Nanos,
        flow: FlowPair,
        mf: &mut MultiFeedback,
        wire_bytes: usize,
    ) -> AccessVerdict {
        // Validate the chain first; invalid chains are demoted to requests
        // by the caller (we signal that with a drop here to keep the API
        // small — the systems adapter treats it like invalid feedback).
        let valid = {
            let ka = &mut self.ka;
            let as_keys = &self.as_keys;
            let link_as = &self.link_as;
            let mf_ref = &*mf;
            mf_ref.validate(
                ka,
                |l| link_as.get(&l).and_then(|a| as_keys.get(a.0)),
                now,
                flow,
                self.cfg.feedback_expiry,
            )
        };
        if !valid {
            return AccessVerdict::Drop(DropReason::RequestRateLimited);
        }

        let mut worst: Option<Nanos> = None;
        let mut dropped = false;
        for (link, action) in mf.entries.clone() {
            let key = LimiterKey { src: flow.src, link };
            let cfg = &self.cfg;
            let limiter = self
                .limiters
                .entry(key)
                .or_insert_with(|| crate::access::RegularLimiter::new(cfg, now));
            // Feed the AIMD controller with this link's own feedback.
            let fb = crate::feedback::Feedback::Mon {
                link,
                action,
                ts: mf.ts,
                token: 0,
                token_nop: None,
            };
            limiter.aimd.observe(&fb);
            if action == Action::Decr {
                limiter.last_activity = now;
            }
            match limiter.bucket.offer(now, wire_bytes) {
                BucketVerdict::Pass => {}
                BucketVerdict::Queued { release_at } => {
                    worst = Some(worst.map_or(release_at, |w| w.max(release_at)));
                }
                BucketVerdict::Drop => {
                    limiter.last_activity = now;
                    dropped = true;
                }
            }
        }
        // Reset the feedback for the next hop.
        *mf = MultiFeedback::origin(&mut self.ka, now, flow);
        if dropped {
            return AccessVerdict::Drop(DropReason::RegularRateLimited);
        }
        match worst {
            None => AccessVerdict::Forward { channel: Channel::Regular },
            Some(release_at) => AccessVerdict::Queued { release_at },
        }
    }
}

// ---------------------------------------------------------------------------
// B.2: rate limiter inference
// ---------------------------------------------------------------------------

/// Per-destination-prefix cache of the bottleneck links seen on the path
/// toward that prefix (Appendix B.2).
#[derive(Debug, Default)]
pub struct InferenceCache {
    /// prefix -> set of mon-state links on the path toward it.
    prefix_links: HashMap<u32, HashSet<LinkId>>,
    /// prefix -> last time each link's feedback was seen (for expiry).
    last_seen: HashMap<(u32, LinkId), Nanos>,
    /// How long a link stays cached without fresh feedback.
    expiry: Nanos,
}

/// Map a destination host to its "prefix" (a /24 in this reproduction).
pub fn prefix_of(dst: HostId) -> u32 {
    dst.0 >> 8
}

impl InferenceCache {
    /// Create a cache whose entries expire after `expiry` without fresh
    /// feedback.
    pub fn new(expiry: Nanos) -> Self {
        InferenceCache { prefix_links: HashMap::new(), last_seen: HashMap::new(), expiry }
    }

    /// Record that feedback for `link` was observed on traffic toward
    /// `dst`.
    pub fn record(&mut self, now: Nanos, dst: HostId, link: LinkId) {
        let p = prefix_of(dst);
        self.prefix_links.entry(p).or_default().insert(link);
        self.last_seen.insert((p, link), now);
    }

    /// The set of bottleneck links currently believed to be on the path
    /// toward `dst` (stale entries are pruned lazily).
    pub fn links_for(&mut self, now: Nanos, dst: HostId) -> Vec<LinkId> {
        let p = prefix_of(dst);
        let expiry = self.expiry;
        let last_seen = &self.last_seen;
        let Some(set) = self.prefix_links.get_mut(&p) else { return Vec::new() };
        set.retain(|l| {
            last_seen.get(&(p, *l)).map(|t| now.saturating_sub(*t) < expiry).unwrap_or(false)
        });
        let mut v: Vec<LinkId> = set.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of prefixes cached (bounded by the BGP table size, as the
    /// appendix argues).
    pub fn prefix_count(&self) -> usize {
        self.prefix_links.len()
    }
}

/// The extra per-limiter flags the inference design tracks in addition to
/// `hasIncr` (Appendix B.2): starred flags describe *inferred* feedback from
/// other on-path links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferenceFlags {
    /// `hasIncr*`: some other on-path link reported `L↑` newer than the
    /// interval start, implying this link was not congested either.
    pub has_incr_star: bool,
    /// `isActive`: this limiter saw its own link's feedback (any age).
    pub is_active: bool,
    /// `isActive*`: another on-path link's feedback was seen, so this
    /// limiter could not have received its own.
    pub is_active_star: bool,
}

/// The Appendix B.2 end-of-interval adjustment: extends Figure 17 with the
/// starred flags. Returns what happened to the rate.
pub fn adjust_with_inference(
    aimd: &mut AimdState,
    flags: InferenceFlags,
    now: Nanos,
    throughput_bps: f64,
    cfg: &Config,
) -> Adjustment {
    // Helper: force the standard controller's hasIncr flag so its own
    // increase/keep logic applies (it resets the flag during adjust()).
    let force_incr = |aimd: &mut AimdState| {
        let ts = (aimd.interval_start() / crate::types::SEC) as u32;
        aimd.observe(&crate::feedback::Feedback::Mon {
            link: LinkId(0),
            action: Action::Incr,
            ts,
            token: 0,
            token_nop: None,
        });
    };
    if aimd.has_incr() || flags.has_incr_star {
        // Rule 1: increase if the limiter was actually utilized, otherwise
        // keep — exactly the Figure 17 rule, with hasIncr possibly inferred.
        force_incr(aimd);
        return aimd.adjust(now, throughput_bps, cfg);
    }
    if flags.is_active {
        // Rule 2: own-link feedback without incr → decrease.
        return aimd.adjust(now, throughput_bps, cfg);
    }
    if flags.is_active_star {
        // Rule 3: another link's feedback was carried → hold unchanged.
        force_incr(aimd);
        return aimd.adjust(now, 0.0, cfg);
    }
    // Rule 4: silence → decrease.
    aimd.adjust(now, throughput_bps, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AsId, SEC};
    use netfence_crypto::{full_mesh_exchange, AsKeyAgent};

    fn setup() -> (AccessRouter, Cmac, Cmac, FlowPair) {
        let agents = vec![AsKeyAgent::new(1, 11), AsKeyAgent::new(2, 22), AsKeyAgent::new(3, 33)];
        let mut tables = full_mesh_exchange(&agents);
        let t1 = tables.remove(0);
        let t2 = tables.remove(0);
        let t3 = tables.remove(0);
        let mut access = AccessRouter::new(Config::default(), AsId(1), [9; 16], t1);
        access.register_link_as(LinkId(201), AsId(2));
        access.register_link_as(LinkId(301), AsId(3));
        let kai2 = t2.get(1).unwrap().clone();
        let kai3 = t3.get(1).unwrap().clone();
        (access, kai2, kai3, FlowPair::new(HostId(0x0a0a0a01), HostId(0x14141401)))
    }

    #[test]
    fn chain_roundtrip_validates() {
        let (mut access, kai2, kai3, flow) = setup();
        let mut mf = MultiFeedback::origin(&mut access.ka, SEC, flow);
        mf.append(&kai2, flow, LinkId(201), Action::Decr);
        mf.append(&kai3, flow, LinkId(301), Action::Incr);
        assert_eq!(mf.entries.len(), 2);
        let ok = {
            let ka = &mut access.ka;
            let link_as = &access.link_as;
            let as_keys = &access.as_keys;
            mf.validate(ka, |l| link_as.get(&l).and_then(|a| as_keys.get(a.0)), SEC, flow, 4 * SEC)
        };
        assert!(ok);
    }

    #[test]
    fn tampered_chain_is_rejected() {
        let (mut access, kai2, _kai3, flow) = setup();
        let mut mf = MultiFeedback::origin(&mut access.ka, SEC, flow);
        mf.append(&kai2, flow, LinkId(201), Action::Decr);
        // A downstream attacker flips the recorded action to Incr to hide
        // upstream congestion: the chained MAC no longer verifies.
        let mut forged = mf.clone();
        forged.entries[0].1 = Action::Incr;
        let ok = {
            let ka = &mut access.ka;
            let link_as = &access.link_as;
            let as_keys = &access.as_keys;
            forged.validate(
                ka,
                |l| link_as.get(&l).and_then(|a| as_keys.get(a.0)),
                SEC,
                flow,
                4 * SEC,
            )
        };
        assert!(!ok);
    }

    #[test]
    fn multi_policing_creates_one_limiter_per_bottleneck() {
        let (mut access, kai2, kai3, flow) = setup();
        let mut mf = MultiFeedback::origin(&mut access.ka, SEC, flow);
        mf.append(&kai2, flow, LinkId(201), Action::Decr);
        mf.append(&kai3, flow, LinkId(301), Action::Decr);
        let v = access.process_outbound_multi(SEC, flow, &mut mf, 1500);
        assert!(!matches!(v, AccessVerdict::Drop(DropReason::RequestRateLimited)));
        assert_eq!(access.limiter_count(), 2);
        assert!(access.rate_limit(flow.src, LinkId(201)).is_some());
        assert!(access.rate_limit(flow.src, LinkId(301)).is_some());
        // The multi feedback was reset to an origin stamp for the next hop.
        assert!(mf.entries.is_empty());
    }

    #[test]
    fn invalid_chain_is_rejected_by_policing() {
        let (mut access, _kai2, _kai3, flow) = setup();
        let mut mf = MultiFeedback { ts: 1, entries: vec![(LinkId(201), Action::Decr)], token: 42 };
        let v = access.process_outbound_multi(SEC, flow, &mut mf, 1500);
        assert_eq!(v, AccessVerdict::Drop(DropReason::RequestRateLimited));
        assert_eq!(access.limiter_count(), 0);
    }

    #[test]
    fn encoded_len_grows_with_entries() {
        let (mut access, kai2, kai3, flow) = setup();
        let mut mf = MultiFeedback::origin(&mut access.ka, SEC, flow);
        assert_eq!(mf.encoded_len(), 12);
        mf.append(&kai2, flow, LinkId(201), Action::Decr);
        mf.append(&kai3, flow, LinkId(301), Action::Incr);
        assert_eq!(mf.encoded_len(), 22);
    }

    #[test]
    fn inference_cache_records_and_expires() {
        let mut cache = InferenceCache::new(10 * SEC);
        let dst = HostId(0x14141401);
        cache.record(SEC, dst, LinkId(201));
        cache.record(2 * SEC, dst, LinkId(301));
        assert_eq!(cache.links_for(3 * SEC, dst), vec![LinkId(201), LinkId(301)]);
        // Hosts in the same /24 share the entry.
        assert_eq!(cache.links_for(3 * SEC, HostId(0x141414ff)).len(), 2);
        assert_eq!(cache.prefix_count(), 1);
        // After expiry only the fresher link remains, then none.
        assert_eq!(cache.links_for(11 * SEC, dst), vec![LinkId(301)]);
        assert!(cache.links_for(30 * SEC, dst).is_empty());
    }

    #[test]
    fn inference_adjustment_rules() {
        let cfg = Config::default();
        // Rule 3: only another link's feedback was seen → hold.
        let mut aimd = AimdState::with_rate(100_000, 0);
        let flags = InferenceFlags { is_active_star: true, ..Default::default() };
        assert_eq!(
            adjust_with_inference(&mut aimd, flags, 2 * SEC, 90_000.0, &cfg),
            Adjustment::Kept
        );
        assert_eq!(aimd.rate(), 100_000);

        // Rule 1 via hasIncr*: inferred L↑ increases a busy limiter.
        let mut aimd = AimdState::with_rate(100_000, 0);
        let flags = InferenceFlags { has_incr_star: true, ..Default::default() };
        assert_eq!(
            adjust_with_inference(&mut aimd, flags, 2 * SEC, 90_000.0, &cfg),
            Adjustment::Increased
        );
        assert_eq!(aimd.rate(), 112_000);

        // Rule 2: own L↓ and nothing else → decrease.
        let mut aimd = AimdState::with_rate(100_000, 0);
        let flags = InferenceFlags { is_active: true, ..Default::default() };
        assert_eq!(
            adjust_with_inference(&mut aimd, flags, 2 * SEC, 90_000.0, &cfg),
            Adjustment::Decreased
        );

        // Rule 4: silence → decrease.
        let mut aimd = AimdState::with_rate(100_000, 0);
        assert_eq!(
            adjust_with_inference(&mut aimd, InferenceFlags::default(), 2 * SEC, 0.0, &cfg),
            Adjustment::Decreased
        );
    }
}
