//! Per-sender request-packet policing (§4.2, Figure 15).
//!
//! A sender may assign a priority level to its request packets. Routers
//! forward level-k packets with higher priority than lower levels, but the
//! sender's access router charges 2^(k−1) tokens for a level-k packet from a
//! per-sender token bucket that refills at one token per `l1` (1 ms). Level-0
//! packets are free but forwarded with the lowest priority. Because the
//! admitted rate halves with each priority level, the aggregate arrival rate
//! of high-priority request packets eventually drops below the request
//! channel capacity, guaranteeing that a patient legitimate sender can get a
//! request packet through (the Portcullis-style argument of §4.2).

use crate::config::Config;
use crate::types::Nanos;

/// Outcome of offering a request packet to the limiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestVerdict {
    /// The packet may be forwarded (tokens were charged unless level 0).
    Pass,
    /// Insufficient tokens for this priority level; the packet is dropped.
    Drop,
}

/// Per-sender token-bucket request limiter (Figure 15 pseudo-code).
#[derive(Debug, Clone)]
pub struct RequestLimiter {
    /// Tokens available at `last_update`.
    tokens: f64,
    /// Time of the last token accounting.
    last_update: Nanos,
    /// Token refill rate, tokens per second.
    refill_per_sec: f64,
    /// Maximum number of tokens the bucket can hold.
    depth: f64,
    /// Highest priority level accepted.
    max_priority: u8,
}

impl RequestLimiter {
    /// Create a limiter from the protocol configuration.
    ///
    /// The paper notes an access router may configure different token refill
    /// rates for different hosts (e.g. busy servers); `rate_multiplier`
    /// scales the per-`l1` refill rate for this sender.
    pub fn new(cfg: &Config, now: Nanos, rate_multiplier: f64) -> Self {
        RequestLimiter {
            tokens: cfg.request_bucket_depth,
            last_update: now,
            refill_per_sec: cfg.request_tokens_per_sec() * rate_multiplier,
            depth: cfg.request_bucket_depth,
            max_priority: cfg.max_request_priority,
        }
    }

    /// Tokens currently available (after refill up to `now`).
    pub fn available_tokens(&self, now: Nanos) -> f64 {
        let elapsed = now.saturating_sub(self.last_update) as f64 / 1e9;
        (self.tokens + elapsed * self.refill_per_sec).min(self.depth)
    }

    /// The token cost of a request packet at `priority` (2^(k−1); level 0 is
    /// free).
    pub fn cost(priority: u8) -> f64 {
        if priority == 0 {
            0.0
        } else {
            (1u64 << (priority - 1).min(62)) as f64
        }
    }

    /// Offer a request packet at `priority`. Implements Figure 15: level-0
    /// packets always pass (they are forwarded with the lowest priority
    /// instead of being rate limited); higher levels are charged
    /// exponentially many tokens.
    pub fn offer(&mut self, now: Nanos, priority: u8) -> RequestVerdict {
        if priority == 0 {
            return RequestVerdict::Pass;
        }
        let priority = priority.min(self.max_priority);
        let tokens_now = self.available_tokens(now);
        let cost = Self::cost(priority);
        if cost > tokens_now {
            return RequestVerdict::Drop;
        }
        self.tokens = (tokens_now - cost).max(0.0);
        self.last_update = now;
        RequestVerdict::Pass
    }

    /// The waiting time after which a sender can afford a level-`k` packet
    /// starting from an empty bucket. Used by end hosts to pick the priority
    /// of a retransmitted request (§4.2: a sender's waiting time sets its
    /// priority; after a 1 s backoff it can send at level 10 when `l1` is
    /// 1 ms, as in the Figure 8 experiment).
    pub fn wait_for_level(&self, priority: u8) -> Nanos {
        (Self::cost(priority) / self.refill_per_sec * 1e9) as Nanos
    }

    /// The highest priority level affordable after waiting `waited` with an
    /// initially empty bucket. This is the "waiting time sets the priority"
    /// rule senders use when backing off.
    pub fn affordable_level(&self, waited: Nanos) -> u8 {
        let tokens = (waited as f64 / 1e9 * self.refill_per_sec).min(self.depth);
        let mut level = 0u8;
        while level < self.max_priority && Self::cost(level + 1) <= tokens {
            level += 1;
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MILLI, SEC};

    fn limiter() -> RequestLimiter {
        RequestLimiter::new(&Config::default(), 0, 1.0)
    }

    /// A small bucket (depth 16) to exercise exhaustion without thousands
    /// of packets.
    fn small_limiter() -> RequestLimiter {
        let cfg = Config { request_bucket_depth: 16.0, ..Config::default() };
        RequestLimiter::new(&cfg, 0, 1.0)
    }

    #[test]
    fn level0_always_passes() {
        let mut l = limiter();
        for _ in 0..10_000 {
            assert_eq!(l.offer(0, 0), RequestVerdict::Pass);
        }
    }

    #[test]
    fn exponential_cost() {
        assert_eq!(RequestLimiter::cost(1), 1.0);
        assert_eq!(RequestLimiter::cost(2), 2.0);
        assert_eq!(RequestLimiter::cost(5), 16.0);
        assert_eq!(RequestLimiter::cost(11), 1024.0);
    }

    #[test]
    fn bucket_exhaustion_and_refill() {
        let mut l = small_limiter();
        // Depth is 16 tokens: 16 level-1 packets pass, the 17th is dropped.
        for _ in 0..16 {
            assert_eq!(l.offer(0, 1), RequestVerdict::Pass);
        }
        assert_eq!(l.offer(0, 1), RequestVerdict::Drop);
        // After 1 ms one token has refilled.
        assert_eq!(l.offer(MILLI, 1), RequestVerdict::Pass);
        assert_eq!(l.offer(MILLI, 1), RequestVerdict::Drop);
    }

    #[test]
    fn level_rate_halves_per_level() {
        // Over one second a sender can send ~1000 level-1 packets but only
        // ~500 level-2 packets: the admitted rate halves per level.
        let mut count_l1 = 0;
        let mut l = small_limiter();
        for t in 0..10_000 {
            if l.offer(t * 100 * crate::types::MICRO, 1) == RequestVerdict::Pass {
                count_l1 += 1;
            }
        }
        let mut count_l2 = 0;
        let mut l = small_limiter();
        for t in 0..10_000 {
            if l.offer(t * 100 * crate::types::MICRO, 2) == RequestVerdict::Pass {
                count_l2 += 1;
            }
        }
        // 1 s of refill at 1000 tokens/s plus the 16-token depth.
        assert!((990..=1020).contains(&count_l1), "level-1 count {count_l1}");
        assert!((495..=515).contains(&count_l2), "level-2 count {count_l2}");
    }

    #[test]
    fn waiting_time_buys_priority() {
        let l = limiter();
        // After a 1 second wait a sender can afford roughly level 10
        // (2^9 = 512 <= 1000 tokens < 2^10): matches the Figure 8
        // experiment narrative.
        assert_eq!(l.affordable_level(SEC), 10);
        assert_eq!(l.affordable_level(0), 0);
        assert_eq!(l.affordable_level(MILLI), 1);
        assert!(l.wait_for_level(10) > 500 * MILLI);
    }

    #[test]
    fn server_rate_multiplier() {
        // A server given 4x the refill rate affords level-12 after the same
        // 1 s wait (two more levels than a default host).
        let cfg = Config::default();
        let server = RequestLimiter::new(&cfg, 0, 4.0);
        assert_eq!(server.affordable_level(SEC), 12);
    }

    proptest::proptest! {
        /// Token accounting never goes negative and never exceeds the depth.
        #[test]
        fn tokens_stay_bounded(offers in proptest::collection::vec((0u64..10_000_000u64, 0u8..12), 1..200)) {
            let mut l = small_limiter();
            let mut now = 0;
            for (gap, prio) in offers {
                now += gap;
                let _ = l.offer(now, prio);
                let avail = l.available_tokens(now);
                proptest::prop_assert!(avail >= 0.0);
                proptest::prop_assert!(avail <= l.depth + 1e-9);
            }
        }
    }
}
