//! Basic identifiers and units used throughout the NetFence protocol.
//!
//! The paper identifies hosts and links by IP addresses and Autonomous
//! Systems by AS numbers. The reproduction keeps them as opaque 32-bit
//! newtypes; the simulator assigns them when it builds a topology.

/// Nanoseconds since the beginning of the simulation (or since an arbitrary
/// epoch for a real deployment). All protocol state machines take explicit
/// `now` values — nothing in `netfence-core` reads a clock.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICRO: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLI: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SEC: Nanos = 1_000_000_000;

/// Convert nanoseconds to whole seconds (the unit of the NetFence header
/// timestamp field).
#[inline]
pub fn nanos_to_secs(t: Nanos) -> u32 {
    (t / SEC) as u32
}

/// Convert a floating point number of seconds to [`Nanos`].
#[inline]
pub fn secs_f64(s: f64) -> Nanos {
    (s * SEC as f64).round() as Nanos
}

/// A transmission rate in bits per second.
pub type Bps = u64;

/// Identifier of an end host (an IP address in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Identifier of a link (the IP address of the link in the paper, carried in
/// the `LINK-ID` field of `mon` feedback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The null link identifier used by `nop` feedback (`link_null` in
    /// Eq. 1 of the paper).
    pub const NULL: LinkId = LinkId(0);
}

/// An Autonomous System number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsId(pub u32);

/// An ordered (source, destination) host pair — the granularity at which
/// congestion policing feedback is bound by its MAC (Eq. 1–3 cover both
/// addresses "to prevent an attacker from re-using valid nop feedback on a
/// different connection").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowPair {
    /// The sender.
    pub src: HostId,
    /// The receiver.
    pub dst: HostId,
}

impl FlowPair {
    /// Construct a flow pair.
    pub fn new(src: HostId, dst: HostId) -> Self {
        FlowPair { src, dst }
    }

    /// The reverse direction of this pair.
    pub fn reversed(&self) -> Self {
        FlowPair { src: self.dst, dst: self.src }
    }
}

/// Key of a per-(sender, bottleneck link) rate limiter kept by an access
/// router (§3.1, §4.3.3). `Ord` so limiter sweeps can emit in sorted
/// (deterministic) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LimiterKey {
    /// The policed sender.
    pub src: HostId,
    /// The bottleneck link the limiter protects.
    pub link: LinkId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        assert_eq!(nanos_to_secs(0), 0);
        assert_eq!(nanos_to_secs(SEC - 1), 0);
        assert_eq!(nanos_to_secs(SEC), 1);
        assert_eq!(nanos_to_secs(3 * SEC + 999_999_999), 3);
        assert_eq!(secs_f64(0.5), 500 * MILLI);
        assert_eq!(secs_f64(2.0), 2 * SEC);
    }

    #[test]
    fn flow_pair_reversal() {
        let p = FlowPair::new(HostId(1), HostId(2));
        assert_eq!(p.reversed(), FlowPair::new(HostId(2), HostId(1)));
        assert_eq!(p.reversed().reversed(), p);
    }

    #[test]
    fn null_link_is_zero() {
        assert_eq!(LinkId::NULL.0, 0);
    }
}
