//! Access-router logic (§4.2, §4.3.3, §4.3.4, Figure 18).
//!
//! The access router sits at the trust boundary between end systems and the
//! network. For every outbound packet from one of its hosts it:
//!
//! 1. validates the congestion policing feedback the sender presents;
//!    packets with missing/invalid feedback are demoted to request packets
//!    and policed by the per-sender priority token bucket (§4.2);
//! 2. polices valid regular packets: `nop` feedback passes freely, `mon`
//!    feedback sends the packet through the per-(sender, bottleneck link)
//!    leaky-bucket rate limiter (§4.3.3);
//! 3. re-stamps the feedback before forwarding (`nop` refreshed, `L↑`/`L↓`
//!    reset to `L↑`), so the bottleneck router only has to touch packets
//!    when it is actually overloaded;
//! 4. once per control interval, adjusts every rate limiter with the robust
//!    AIMD rule (§4.3.4) and garbage-collects limiters that have been idle
//!    for `Ta`.

use std::collections::HashMap;

use netfence_crypto::{AsKeyTable, TimeVaryingSecret};

use crate::aimd::{Adjustment, AimdState};
use crate::bottleneck::Channel;
use crate::config::Config;
use crate::feedback::{self, Feedback, FeedbackError};
use crate::header::{NetFenceHeader, PacketKind};
use crate::regular_limiter::{BucketVerdict, LeakyBucket};
use crate::request_limiter::{RequestLimiter, RequestVerdict};
use crate::types::{AsId, FlowPair, HostId, LimiterKey, LinkId, Nanos};

/// Why the access router dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The per-sender request limiter had insufficient tokens for the
    /// packet's priority level.
    RequestRateLimited,
    /// The per-(sender, bottleneck) regular rate limiter's queue delay
    /// exceeded the maximum.
    RegularRateLimited,
    /// A regular packet whose presented feedback failed validation was
    /// demoted to a request and then dropped by the request limiter. The
    /// drop is counted against the request limiter (it made the decision)
    /// but reported separately so operators can tell spoofed/stale
    /// feedback apart from plain request floods.
    UnverifiedFeedback,
}

/// The access router's decision for an outbound packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessVerdict {
    /// Forward immediately on the given channel.
    Forward {
        /// Which router channel the packet should use downstream.
        channel: Channel,
    },
    /// Hold the packet and release it at `release_at` (regular channel).
    Queued {
        /// Absolute release time computed by the leaky bucket.
        release_at: Nanos,
    },
    /// Drop the packet.
    Drop(DropReason),
}

/// One per-(sender, bottleneck link) rate limiter: leaky bucket + AIMD state
/// plus the bookkeeping needed for `Ta` garbage collection.
#[derive(Debug, Clone)]
pub struct RegularLimiter {
    /// The policing leaky bucket.
    pub bucket: LeakyBucket,
    /// The AIMD rate-limit controller.
    pub aimd: AimdState,
    /// Last time this limiter saw `L↓` feedback or discarded a packet; used
    /// by the `Ta` reclamation rule (§4.3.1).
    pub(crate) last_activity: Nanos,
}

impl RegularLimiter {
    pub(crate) fn new(cfg: &Config, now: Nanos) -> Self {
        let aimd = AimdState::new(cfg, now);
        RegularLimiter {
            bucket: LeakyBucket::new(now, aimd.rate(), cfg.max_limiter_delay),
            aimd,
            last_activity: now,
        }
    }

    /// Current rate limit in bits per second.
    pub fn rate(&self) -> u64 {
        self.aimd.rate()
    }
}

/// Counters exposed for benchmarking and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Packets forwarded on the regular channel.
    pub regular_forwarded: u64,
    /// Packets queued by a rate limiter.
    pub regular_queued: u64,
    /// Packets dropped by a rate limiter.
    pub regular_dropped: u64,
    /// Request packets forwarded.
    pub request_forwarded: u64,
    /// Request packets dropped by the request limiter.
    pub request_dropped: u64,
    /// Regular packets demoted to requests because their feedback did not
    /// validate.
    pub invalid_feedback: u64,
}

/// The access router core.
#[derive(Debug)]
pub struct AccessRouter {
    pub(crate) cfg: Config,
    /// This router's AS.
    my_as: AsId,
    /// The periodically-changing secret `Ka`.
    pub(crate) ka: TimeVaryingSecret,
    /// Pairwise keys shared with other ASes (needed to validate `L↓`).
    pub(crate) as_keys: AsKeyTable,
    /// IP-to-AS mapping for bottleneck link identifiers (§4.4 uses an
    /// IP-to-AS mapping tool; the simulator installs the mapping when it
    /// builds the topology).
    pub(crate) link_as: HashMap<LinkId, AsId>,
    /// Per-sender request limiters.
    request_limiters: HashMap<HostId, RequestLimiter>,
    /// Per-(sender, bottleneck link) regular rate limiters.
    pub(crate) limiters: HashMap<LimiterKey, RegularLimiter>,
    /// Per-sender request token refill multipliers (servers may be given
    /// more, §4.2).
    request_multipliers: HashMap<HostId, f64>,
    /// Counters.
    stats: AccessStats,
}

impl AccessRouter {
    /// Create an access router for AS `my_as` with secret root key
    /// `ka_root` and the pairwise AS key table `as_keys`.
    pub fn new(cfg: Config, my_as: AsId, ka_root: [u8; 16], as_keys: AsKeyTable) -> Self {
        AccessRouter {
            cfg,
            my_as,
            ka: TimeVaryingSecret::new(ka_root),
            as_keys,
            link_as: HashMap::new(),
            request_limiters: HashMap::new(),
            limiters: HashMap::new(),
            request_multipliers: HashMap::new(),
            stats: AccessStats::default(),
        }
    }

    /// This router's AS.
    pub fn my_as(&self) -> AsId {
        self.my_as
    }

    /// Register the AS that owns a (potential bottleneck) link, so `L↓`
    /// feedback referencing it can be validated.
    pub fn register_link_as(&mut self, link: LinkId, as_id: AsId) {
        self.link_as.insert(link, as_id);
    }

    /// Install the pairwise key shared with `peer` (learned from a
    /// Passport-style key announcement after construction).
    pub fn install_as_key(&mut self, peer: AsId, key: [u8; 16]) {
        self.as_keys.install(peer.0, key);
    }

    /// Remove the pairwise key shared with `peer` (its TTL lapsed without
    /// a refreshing announcement).
    pub fn remove_as_key(&mut self, peer: AsId) -> bool {
        self.as_keys.remove(peer.0)
    }

    /// Replace the router's time-varying secret `Ka` with one derived from
    /// `new_root`. Feedback stamped under the old secret immediately fails
    /// validation (§4.4 makes unverifiable feedback indistinguishable from
    /// absent feedback), so a rotation — or a fault-injected key desync —
    /// surfaces as typed `invalid-mac` demotions until freshly stamped
    /// feedback circulates back.
    pub fn rotate_secret(&mut self, new_root: [u8; 16]) {
        self.ka = TimeVaryingSecret::new(new_root);
    }

    /// Give a host a larger request-token refill rate (e.g. a busy server).
    pub fn set_request_multiplier(&mut self, host: HostId, multiplier: f64) {
        self.request_multipliers.insert(host, multiplier);
    }

    /// The current counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Number of live per-(sender, bottleneck) rate limiters.
    pub fn limiter_count(&self) -> usize {
        self.limiters.len()
    }

    /// The current rate limit of a limiter, if it exists.
    pub fn rate_limit(&self, src: HostId, link: LinkId) -> Option<u64> {
        self.limiters.get(&LimiterKey { src, link }).map(|l| l.rate())
    }

    /// Access the limiter table (used by the multi-bottleneck extension and
    /// experiments).
    pub fn limiters(&self) -> &HashMap<LimiterKey, RegularLimiter> {
        &self.limiters
    }

    /// Validate the feedback a sender presented (§4.4 "Validating
    /// feedback").
    fn validate_presented(
        &mut self,
        now: Nanos,
        flow: FlowPair,
        fb: &Feedback,
    ) -> Result<(), FeedbackError> {
        let ka = &mut self.ka;
        let as_keys = &self.as_keys;
        let link_as = &self.link_as;
        feedback::validate(
            fb,
            ka,
            |l| link_as.get(&l).and_then(|a| as_keys.get(a.0)),
            now,
            flow,
            self.cfg.feedback_expiry,
        )
    }

    /// Police an outbound packet from a local sender and re-stamp its
    /// feedback (Figure 18 `rate_limit_packet` + `update_packet`).
    ///
    /// `wire_bytes` is the total packet length used for rate accounting.
    /// The header is mutated in place: its presented feedback is replaced
    /// with the fresh feedback that will travel with the packet.
    pub fn process_outbound(
        &mut self,
        now: Nanos,
        flow: FlowPair,
        header: &mut NetFenceHeader,
        wire_bytes: usize,
    ) -> AccessVerdict {
        let treat_as_request = match header.kind {
            PacketKind::Request => true,
            PacketKind::Regular => match self.validate_presented(now, flow, &header.presented) {
                Ok(()) => false,
                Err(_) => {
                    self.stats.invalid_feedback += 1;
                    true
                }
            },
        };

        if treat_as_request {
            let demoted = header.kind == PacketKind::Regular;
            return self.process_request(now, flow, header, demoted);
        }

        match header.presented {
            Feedback::Nop { .. } => {
                // No downstream link needs policing: refresh the nop
                // feedback (new timestamp + MAC) and forward.
                header.presented = feedback::stamp_nop(&mut self.ka, now, flow);
                self.stats.regular_forwarded += 1;
                AccessVerdict::Forward { channel: Channel::Regular }
            }
            Feedback::Mon { link, .. } => {
                let key = LimiterKey { src: flow.src, link };
                let cfg = &self.cfg;
                let limiter =
                    self.limiters.entry(key).or_insert_with(|| RegularLimiter::new(cfg, now));
                limiter.aimd.observe(&header.presented);
                if header.presented.is_decr() {
                    limiter.last_activity = now;
                }
                let verdict = limiter.bucket.offer(now, wire_bytes);
                if verdict == BucketVerdict::Drop {
                    limiter.last_activity = now;
                }
                // Reset the feedback to L↑ regardless of the old action
                // (§4.3.3): the bottleneck only rewrites it if it is
                // actually overloaded.
                header.presented = feedback::stamp_incr(&mut self.ka, now, flow, link);
                match verdict {
                    BucketVerdict::Pass => {
                        self.stats.regular_forwarded += 1;
                        AccessVerdict::Forward { channel: Channel::Regular }
                    }
                    BucketVerdict::Queued { release_at } => {
                        self.stats.regular_queued += 1;
                        AccessVerdict::Queued { release_at }
                    }
                    BucketVerdict::Drop => {
                        self.stats.regular_dropped += 1;
                        AccessVerdict::Drop(DropReason::RegularRateLimited)
                    }
                }
            }
        }
    }

    /// Police a request packet (or, when `demoted` is set, a regular packet
    /// demoted because its presented feedback did not validate).
    fn process_request(
        &mut self,
        now: Nanos,
        flow: FlowPair,
        header: &mut NetFenceHeader,
        demoted: bool,
    ) -> AccessVerdict {
        let multiplier = self.request_multipliers.get(&flow.src).copied().unwrap_or(1.0);
        let cfg = &self.cfg;
        let limiter = self
            .request_limiters
            .entry(flow.src)
            .or_insert_with(|| RequestLimiter::new(cfg, now, multiplier));
        match limiter.offer(now, header.priority) {
            RequestVerdict::Drop => {
                self.stats.request_dropped += 1;
                AccessVerdict::Drop(if demoted {
                    DropReason::UnverifiedFeedback
                } else {
                    DropReason::RequestRateLimited
                })
            }
            RequestVerdict::Pass => {
                header.kind = PacketKind::Request;
                header.presented = feedback::stamp_nop(&mut self.ka, now, flow);
                self.stats.request_forwarded += 1;
                AccessVerdict::Forward { channel: Channel::Request }
            }
        }
    }

    /// Notify the router that a previously queued packet was released by the
    /// caller (keeps the leaky bucket's queue depth accurate).
    pub fn packet_released(&mut self, src: HostId, link: LinkId) {
        if let Some(l) = self.limiters.get_mut(&LimiterKey { src, link }) {
            l.bucket.released();
        }
    }

    /// Drive periodic work: AIMD adjustment at the end of each control
    /// interval and `Ta` garbage collection. Returns the adjustments made
    /// (for metrics/experiments).
    pub fn tick(&mut self, now: Nanos) -> Vec<(LimiterKey, Adjustment)> {
        let mut adjustments = Vec::new();
        // lint:allow(nondeterministic-iteration): per-limiter AIMD update is key-independent; the collected adjustments are sorted before returning
        for (key, lim) in self.limiters.iter_mut() {
            if lim.aimd.interval_elapsed(now, &self.cfg) {
                let tput = lim.bucket.throughput(now);
                let decision = lim.aimd.adjust(now, tput, &self.cfg);
                lim.bucket.set_rate(now, lim.aimd.rate());
                lim.bucket.reset_window(now);
                adjustments.push((*key, decision));
            }
        }
        // Hash order must not leak to callers: report in key order.
        adjustments.sort_unstable_by_key(|&(key, _)| key);
        // Reclaim limiters idle for Ta: no L↓ seen and no packet discarded.
        let ta = self.cfg.ta;
        // lint:allow(nondeterministic-iteration): retain's visit order is unobservable — the predicate reads only the entry it decides
        self.limiters.retain(|_, lim| {
            now.saturating_sub(lim.last_activity) < ta || lim.bucket.queued_pkts() > 0
        });
        adjustments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SEC;
    use netfence_crypto::{full_mesh_exchange, AsKeyAgent, Cmac};

    const PKT: usize = 1500;

    struct World {
        access: AccessRouter,
        bottleneck_kai: Cmac,
        flow: FlowPair,
    }

    /// Build an access router for AS 1 and the CMAC a bottleneck in AS 2
    /// would use to stamp L↓ toward AS 1 senders.
    fn world() -> World {
        let agents = vec![AsKeyAgent::new(1, 1111), AsKeyAgent::new(2, 2222)];
        let mut tables = full_mesh_exchange(&agents);
        let t1 = tables.remove(0);
        let t2 = tables.remove(0);
        let mut access = AccessRouter::new(Config::default(), AsId(1), [7; 16], t1);
        access.register_link_as(LinkId(99), AsId(2));
        let bottleneck_kai = t2.get(1).unwrap().clone();
        World { access, bottleneck_kai, flow: FlowPair::new(HostId(10), HostId(20)) }
    }

    fn request_header() -> NetFenceHeader {
        NetFenceHeader::request(6, 1, Feedback::Nop { ts: 0, token: 0 })
    }

    #[test]
    fn request_packet_gets_nop_stamp() {
        let mut w = world();
        let mut h = request_header();
        let v = w.access.process_outbound(SEC, w.flow, &mut h, 92);
        assert_eq!(v, AccessVerdict::Forward { channel: Channel::Request });
        assert!(h.presented.is_nop());
        assert_eq!(h.presented.ts(), 1);
        assert_eq!(w.access.stats().request_forwarded, 1);
    }

    #[test]
    fn nop_regular_packet_is_not_rate_limited() {
        let mut w = world();
        // Step 1: get nop feedback via a request packet.
        let mut h = request_header();
        w.access.process_outbound(SEC, w.flow, &mut h, 92);
        let echoed = h.presented;
        // Step 2: present it in a regular packet — no limiter is created.
        for i in 0..50 {
            let mut h = NetFenceHeader::regular(6, echoed, None);
            let v = w.access.process_outbound(SEC + i, w.flow, &mut h, PKT);
            assert_eq!(v, AccessVerdict::Forward { channel: Channel::Regular });
        }
        assert_eq!(w.access.limiter_count(), 0);
    }

    #[test]
    fn forged_feedback_is_demoted_to_request() {
        let mut w = world();
        let forged = Feedback::Nop { ts: 1, token: 0xbadbad };
        let mut h = NetFenceHeader::regular(6, forged, None);
        let v = w.access.process_outbound(SEC, w.flow, &mut h, PKT);
        // Priority 0 request: forwarded but on the request channel with
        // lowest priority.
        assert_eq!(v, AccessVerdict::Forward { channel: Channel::Request });
        assert_eq!(h.kind, PacketKind::Request);
        assert_eq!(w.access.stats().invalid_feedback, 1);
    }

    #[test]
    fn decr_feedback_instantiates_rate_limiter_and_polices() {
        let mut w = world();
        // Obtain valid nop, convert to L↓ as a bottleneck in AS 2 would.
        let mut h = request_header();
        w.access.process_outbound(SEC, w.flow, &mut h, 92);
        let decr =
            feedback::stamp_decr(&w.bottleneck_kai, w.flow, LinkId(99), &h.presented).unwrap();

        // Present the L↓: a limiter (src, 99) is created, the packet goes
        // through it, and the outgoing feedback is reset to L↑.
        let mut sent = 0;
        let mut dropped = 0;
        for i in 0..100 {
            let mut h2 = NetFenceHeader::regular(6, decr, None);
            match w.access.process_outbound(SEC + i, w.flow, &mut h2, PKT) {
                AccessVerdict::Forward { .. } | AccessVerdict::Queued { .. } => {
                    sent += 1;
                    assert!(h2.presented.is_incr());
                    assert_eq!(h2.presented.link(), Some(LinkId(99)));
                }
                AccessVerdict::Drop(DropReason::RegularRateLimited) => dropped += 1,
                v => panic!("unexpected verdict {v:?}"),
            }
        }
        assert_eq!(w.access.limiter_count(), 1);
        assert!(w.access.rate_limit(w.flow.src, LinkId(99)).is_some());
        // A 100-packet burst far exceeds 200 kbps * 1 s of queueing: most of
        // it must be dropped.
        assert!(dropped > 50, "dropped {dropped}, sent {sent}");
    }

    #[test]
    fn aimd_decreases_without_fresh_incr_and_increases_with_it() {
        let mut w = world();
        let mut h = request_header();
        w.access.process_outbound(SEC, w.flow, &mut h, 92);
        let decr =
            feedback::stamp_decr(&w.bottleneck_kai, w.flow, LinkId(99), &h.presented).unwrap();
        let mut h2 = NetFenceHeader::regular(6, decr, None);
        w.access.process_outbound(SEC, w.flow, &mut h2, PKT);
        let r0 = w.access.rate_limit(w.flow.src, LinkId(99)).unwrap();

        // End of first control interval: only L↓ was seen → decrease.
        let adjustments = w.access.tick(4 * SEC);
        assert_eq!(adjustments.len(), 1);
        assert_eq!(adjustments[0].1, Adjustment::Decreased);
        let r1 = w.access.rate_limit(w.flow.src, LinkId(99)).unwrap();
        assert!(r1 < r0);

        // Now the sender echoes the freshest feedback it has (as a real
        // receiver/sender pair would) and keeps the limiter busy.
        let now = 5 * SEC;
        let mut current = h2.presented; // L↑ stamped by process_outbound above
        assert!(current.is_incr());
        let mut offered = 0usize;
        for i in 0..60 {
            let mut h3 = NetFenceHeader::regular(6, current, None);
            let t = now + i * 60 * crate::types::MILLI;
            if !matches!(w.access.process_outbound(t, w.flow, &mut h3, PKT), AccessVerdict::Drop(_))
            {
                offered += 1;
                current = h3.presented;
            }
        }
        assert!(offered > 10);
        let adjustments = w.access.tick(9 * SEC);
        assert_eq!(adjustments[0].1, Adjustment::Increased);
        let r2 = w.access.rate_limit(w.flow.src, LinkId(99)).unwrap();
        assert_eq!(r2, r1 + Config::default().additive_increase);
    }

    #[test]
    fn hiding_decr_still_decreases() {
        // A malicious sender that got L↓ but keeps presenting stale nop
        // feedback: its packets are demoted to requests once the feedback
        // expires, and the limiter (created when it did present L↓ once)
        // keeps decreasing because no fresh L↑ arrives.
        let mut w = world();
        let mut h = request_header();
        w.access.process_outbound(SEC, w.flow, &mut h, 92);
        let decr =
            feedback::stamp_decr(&w.bottleneck_kai, w.flow, LinkId(99), &h.presented).unwrap();
        let mut h2 = NetFenceHeader::regular(6, decr, None);
        w.access.process_outbound(SEC, w.flow, &mut h2, PKT);
        let r0 = w.access.rate_limit(w.flow.src, LinkId(99)).unwrap();
        for k in 1..4u64 {
            w.access.tick(SEC + k * 2 * SEC);
        }
        let r1 = w.access.rate_limit(w.flow.src, LinkId(99)).unwrap();
        assert!(r1 < r0, "hiding L↓ must not prevent decreases ({r0} -> {r1})");
    }

    #[test]
    fn request_flood_is_rate_limited_per_sender() {
        let mut w = world();
        let mut passed = 0;
        for i in 0..1000 {
            let mut h = NetFenceHeader::request(17, 8, Feedback::Nop { ts: 0, token: 0 });
            // 1000 level-8 requests (128 tokens each) in 10 ms: only the
            // bucket depth (4096 tokens = 32 packets) passes.
            if matches!(
                w.access.process_outbound(SEC + i * 10_000, w.flow, &mut h, 92),
                AccessVerdict::Forward { .. }
            ) {
                passed += 1;
            }
        }
        assert!(passed <= 40, "request flood mostly dropped, passed {passed}");
        assert!(w.access.stats().request_dropped > 900);
    }

    #[test]
    fn idle_limiters_are_garbage_collected_after_ta() {
        let mut cfg = Config::short_timers();
        cfg.ta = 10 * SEC;
        let agents = vec![AsKeyAgent::new(1, 1111), AsKeyAgent::new(2, 2222)];
        let mut tables = full_mesh_exchange(&agents);
        let t1 = tables.remove(0);
        let t2 = tables.remove(0);
        let mut access = AccessRouter::new(cfg, AsId(1), [7; 16], t1);
        access.register_link_as(LinkId(99), AsId(2));
        let flow = FlowPair::new(HostId(10), HostId(20));

        let mut h = NetFenceHeader::request(6, 1, Feedback::Nop { ts: 0, token: 0 });
        access.process_outbound(SEC, flow, &mut h, 92);
        let decr =
            feedback::stamp_decr(t2.get(1).unwrap(), flow, LinkId(99), &h.presented).unwrap();
        let mut h2 = NetFenceHeader::regular(6, decr, None);
        if let AccessVerdict::Queued { .. } = access.process_outbound(SEC, flow, &mut h2, PKT) {
            access.packet_released(flow.src, LinkId(99));
        }
        assert_eq!(access.limiter_count(), 1);
        // 5 s later it is still there; 20 s later (beyond Ta) it is gone.
        access.tick(6 * SEC);
        assert_eq!(access.limiter_count(), 1);
        access.tick(21 * SEC);
        assert_eq!(access.limiter_count(), 0);
    }

    #[test]
    fn feedback_from_another_sender_is_rejected() {
        let mut w = world();
        let mut h = request_header();
        w.access.process_outbound(SEC, w.flow, &mut h, 92);
        let stolen = h.presented;
        // Another sender (host 11) tries to use host 10's feedback.
        let thief = FlowPair::new(HostId(11), HostId(20));
        let mut h2 = NetFenceHeader::regular(6, stolen, None);
        let v = w.access.process_outbound(SEC, thief, &mut h2, PKT);
        assert_eq!(v, AccessVerdict::Forward { channel: Channel::Request });
        assert_eq!(w.access.stats().invalid_feedback, 1);
    }
}
