//! End-host shim logic: how senders choose between request and regular
//! packets, how receivers echo feedback, and the priority back-off rule for
//! request packets (§3.1, §4.2, §4.3.4).
//!
//! The shim sits between IP and TCP/UDP on NetFence-ready hosts (§6.2). It
//! is deliberately untrusted: everything here can be ignored or subverted by
//! a malicious host without breaking the NetFence guarantees — the access
//! router enforces policing, the shim merely makes legitimate hosts behave
//! efficiently.

use std::collections::HashMap;

use crate::config::Config;
use crate::feedback::Feedback;
use crate::header::NetFenceHeader;
use crate::types::{HostId, Nanos, SEC};

/// Per-destination sender state: which feedback to present next.
#[derive(Debug, Clone, Default)]
struct PerDestination {
    /// The freshest `L↑` or `nop` feedback received back from the receiver.
    best_incr: Option<Feedback>,
    /// The freshest feedback of any kind received back from the receiver.
    latest: Option<Feedback>,
    /// When the sender first started (re)requesting without valid feedback —
    /// drives the priority back-off of §4.2.
    requesting_since: Option<Nanos>,
}

/// Sender-side shim: tracks returned feedback per destination and builds
/// NetFence headers for outgoing packets.
#[derive(Debug, Default)]
pub struct SenderShim {
    dests: HashMap<HostId, PerDestination>,
}

impl SenderShim {
    /// Create an empty shim.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record feedback returned by the receiver `dst` (piggybacked in the
    /// echoed-feedback field of a packet from `dst`, or carried by a
    /// dedicated feedback packet for one-way transports).
    pub fn feedback_returned(&mut self, dst: HostId, fb: Feedback) {
        let entry = self.dests.entry(dst).or_default();
        let newer = |old: &Option<Feedback>| old.is_none_or(|o| fb.ts() >= o.ts());
        if newer(&entry.latest) {
            entry.latest = Some(fb);
        }
        if (fb.is_incr() || fb.is_nop()) && newer(&entry.best_incr) {
            entry.best_incr = Some(fb);
        }
        entry.requesting_since = None;
    }

    /// The feedback the sender will present for its next packet to `dst`,
    /// following §4.3.4: always present un-expired `L↑` (or `nop`) feedback
    /// if available — even if newer `L↓` feedback exists — otherwise the
    /// newest feedback of any kind. Returns `None` when nothing un-expired
    /// is held (a request packet must be sent).
    pub fn presentable_feedback(&self, now: Nanos, dst: HostId, cfg: &Config) -> Option<Feedback> {
        let entry = self.dests.get(&dst)?;
        let fresh = |fb: &Option<Feedback>| fb.filter(|f| !f.is_expired(now, cfg.feedback_expiry));
        fresh(&entry.best_incr).or_else(|| fresh(&entry.latest))
    }

    /// The priority level the sender should use for a request packet to
    /// `dst`, based on how long it has been waiting without valid feedback
    /// (§4.2: the waiting time sets the priority; after a 1 s back-off a
    /// default host can afford level 10).
    pub fn request_priority(&mut self, now: Nanos, dst: HostId, cfg: &Config) -> u8 {
        let entry = self.dests.entry(dst).or_default();
        let since = *entry.requesting_since.get_or_insert(now);
        let waited = now.saturating_sub(since);
        // The access router's token bucket can hold at most
        // `request_bucket_depth` tokens, so asking for a level the bucket
        // can never afford would get the request dropped at the access
        // router forever.
        let tokens = (waited as f64 / SEC as f64 * cfg.request_tokens_per_sec())
            .min(cfg.request_bucket_depth);
        let mut level = 0u8;
        while level < cfg.max_request_priority
            && crate::request_limiter::RequestLimiter::cost(level + 1) <= tokens
        {
            level += 1;
        }
        level
    }

    /// Build the NetFence header for the next packet to `dst`.
    ///
    /// Returns a regular header presenting held feedback when possible, or a
    /// request header at the appropriate back-off priority otherwise.
    /// `echo` is the feedback to piggyback for the reverse direction (from
    /// [`ReceiverShim::echo_for`]).
    pub fn make_header(
        &mut self,
        now: Nanos,
        dst: HostId,
        proto: u8,
        echo: Option<Feedback>,
        cfg: &Config,
    ) -> NetFenceHeader {
        match self.presentable_feedback(now, dst, cfg) {
            Some(fb) => NetFenceHeader::regular(proto, fb, echo),
            None => {
                let priority = self.request_priority(now, dst, cfg);
                let mut h = NetFenceHeader::request(
                    proto,
                    priority,
                    Feedback::Nop { ts: (now / SEC) as u32, token: 0 },
                );
                h.echoed = echo;
                h
            }
        }
    }

    /// Whether the sender currently holds presentable feedback for `dst`.
    pub fn has_feedback(&self, now: Nanos, dst: HostId, cfg: &Config) -> bool {
        self.presentable_feedback(now, dst, cfg).is_some()
    }
}

/// How a receiver treats a given sender (§3.3: congestion feedback as
/// capability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReceiverPolicy {
    /// Echo feedback back to the sender (normal operation, and what a
    /// colluding receiver does for its attackers).
    #[default]
    Echo,
    /// Never return feedback: the sender is unwanted and can at most send
    /// strictly rate-limited request packets.
    Suppress,
}

/// Receiver-side shim: remembers the latest feedback observed from each
/// sender and decides whether to echo it.
#[derive(Debug, Default)]
pub struct ReceiverShim {
    latest: HashMap<HostId, Feedback>,
    policies: HashMap<HostId, ReceiverPolicy>,
    default_policy: ReceiverPolicy,
}

impl ReceiverShim {
    /// Create a receiver shim that echoes feedback to everyone by default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a receiver that suppresses feedback by default (a victim that
    /// whitelists known-good senders).
    pub fn deny_by_default() -> Self {
        ReceiverShim { default_policy: ReceiverPolicy::Suppress, ..Default::default() }
    }

    /// Set the policy for a specific sender (e.g. classify it as attack
    /// traffic and suppress it).
    pub fn set_policy(&mut self, sender: HostId, policy: ReceiverPolicy) {
        self.policies.insert(sender, policy);
    }

    /// The policy applied to `sender`.
    pub fn policy(&self, sender: HostId) -> ReceiverPolicy {
        self.policies.get(&sender).copied().unwrap_or(self.default_policy)
    }

    /// Record the presented feedback of a packet received from `sender`.
    pub fn packet_received(&mut self, sender: HostId, presented: Feedback) {
        let newer = self
            .latest
            .get(&sender)
            .is_none_or(|old| presented.ts() >= old.ts() || presented.is_decr());
        if newer {
            self.latest.insert(sender, presented);
        }
    }

    /// The feedback to echo back to `sender`, if policy allows.
    pub fn echo_for(&self, sender: HostId) -> Option<Feedback> {
        if self.policy(sender) == ReceiverPolicy::Suppress {
            return None;
        }
        self.latest.get(&sender).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::Action;
    use crate::header::PacketKind;
    use crate::types::LinkId;

    fn nop(ts: u32) -> Feedback {
        Feedback::Nop { ts, token: 1 }
    }
    fn incr(ts: u32) -> Feedback {
        Feedback::Mon { link: LinkId(7), action: Action::Incr, ts, token: 2, token_nop: Some(3) }
    }
    fn decr(ts: u32) -> Feedback {
        Feedback::Mon { link: LinkId(7), action: Action::Decr, ts, token: 4, token_nop: None }
    }

    #[test]
    fn sender_without_feedback_sends_requests_with_backoff() {
        let cfg = Config::default();
        let mut s = SenderShim::new();
        let dst = HostId(9);
        let h0 = s.make_header(10 * SEC, dst, 6, None, &cfg);
        assert_eq!(h0.kind, PacketKind::Request);
        assert_eq!(h0.priority, 0, "first attempt goes out at the lowest priority");
        // One second later (the first TCP SYN retransmission in the Figure 8
        // experiment) the affordable priority is 10.
        let h1 = s.make_header(11 * SEC, dst, 6, None, &cfg);
        assert_eq!(h1.kind, PacketKind::Request);
        assert_eq!(h1.priority, 10);
        // Even later the priority keeps growing but stays bounded.
        let h2 = s.make_header(200 * SEC, dst, 6, None, &cfg);
        assert!(h2.priority <= cfg.max_request_priority);
    }

    #[test]
    fn returned_feedback_switches_sender_to_regular_packets() {
        let cfg = Config::default();
        let mut s = SenderShim::new();
        let dst = HostId(9);
        s.make_header(10 * SEC, dst, 6, None, &cfg);
        s.feedback_returned(dst, nop(10));
        let h = s.make_header(11 * SEC, dst, 6, None, &cfg);
        assert_eq!(h.kind, PacketKind::Regular);
        assert_eq!(h.presented, nop(10));
        assert!(s.has_feedback(11 * SEC, dst, &cfg));
    }

    #[test]
    fn expired_feedback_forces_new_request_cycle() {
        let cfg = Config::default();
        let mut s = SenderShim::new();
        let dst = HostId(9);
        s.feedback_returned(dst, nop(10));
        assert!(s.has_feedback(12 * SEC, dst, &cfg));
        // w = 4 s: at t = 15 s the feedback is still valid, at 15 s + it is
        // not.
        assert!(s.has_feedback(14 * SEC, dst, &cfg));
        assert!(!s.has_feedback(20 * SEC, dst, &cfg));
        let h = s.make_header(20 * SEC, dst, 6, None, &cfg);
        assert_eq!(h.kind, PacketKind::Request);
        // The back-off clock restarts from the new request.
        assert_eq!(h.priority, 0);
    }

    #[test]
    fn sender_prefers_unexpired_incr_over_newer_decr() {
        // §4.3.4: a legitimate sender mimics the aggressive strategy and
        // keeps presenting L↑ while it is fresh, even after receiving L↓.
        let cfg = Config::default();
        let mut s = SenderShim::new();
        let dst = HostId(9);
        s.feedback_returned(dst, incr(10));
        s.feedback_returned(dst, decr(11));
        assert_eq!(s.presentable_feedback(12 * SEC, dst, &cfg), Some(incr(10)));
        // Once the L↑ expires, the newer L↓ is presented (still within w).
        assert_eq!(s.presentable_feedback(15 * SEC, dst, &cfg), Some(decr(11)));
    }

    #[test]
    fn receiver_echoes_latest_feedback() {
        let mut r = ReceiverShim::new();
        let sender = HostId(3);
        assert_eq!(r.echo_for(sender), None);
        r.packet_received(sender, nop(5));
        assert_eq!(r.echo_for(sender), Some(nop(5)));
        r.packet_received(sender, decr(6));
        assert_eq!(r.echo_for(sender), Some(decr(6)));
    }

    #[test]
    fn victim_suppresses_unwanted_senders() {
        // §3.3: by returning no feedback the victim turns feedback into a
        // capability the attacker cannot obtain.
        let mut r = ReceiverShim::new();
        let good = HostId(1);
        let bad = HostId(666);
        r.set_policy(bad, ReceiverPolicy::Suppress);
        r.packet_received(good, nop(5));
        r.packet_received(bad, nop(5));
        assert_eq!(r.echo_for(good), Some(nop(5)));
        assert_eq!(r.echo_for(bad), None);
    }

    #[test]
    fn deny_by_default_receiver() {
        let mut r = ReceiverShim::deny_by_default();
        let known = HostId(1);
        let unknown = HostId(2);
        r.set_policy(known, ReceiverPolicy::Echo);
        r.packet_received(known, nop(5));
        r.packet_received(unknown, nop(5));
        assert_eq!(r.echo_for(known), Some(nop(5)));
        assert_eq!(r.echo_for(unknown), None);
    }

    #[test]
    fn header_carries_echoed_feedback() {
        let cfg = Config::default();
        let mut s = SenderShim::new();
        let dst = HostId(9);
        s.feedback_returned(dst, nop(10));
        let h = s.make_header(11 * SEC, dst, 6, Some(incr(9)), &cfg);
        assert_eq!(h.echoed, Some(incr(9)));
    }
}
