//! Attack detection, monitoring cycles, and congestion-stamping hysteresis
//! at a bottleneck link (§4.3.1, §4.3.4, Figures 4 and 19).
//!
//! A NetFence router periodically examines each output link. It infers an
//! attack from the link's utilization and/or the regular packets' loss rate
//! (both tracked with EWMAs). When an attack is detected the link enters a
//! *monitoring cycle* (`mon` state): congestion policing feedback is stamped
//! into passing packets and access routers start rate-limiting senders. The
//! cycle ends only after the link has been quiet for a long time `Tb`
//! (hours), which defeats macroscopic on-off attacks.
//!
//! Within a cycle, the router stamps `L↓` whenever the link is *overloaded*,
//! and — crucially for robustness — keeps stamping `L↓` for two extra
//! control intervals after congestion abates (Figure 4). This hysteresis is
//! what makes the access router's AIMD robust: a sender that congested the
//! link in one control interval cannot obtain `L↑` feedback covering the
//! following interval.

use crate::config::Config;
use crate::types::{Bps, Nanos};

/// Utilization/loss measurements and EWMA state for one link direction.
#[derive(Debug, Clone)]
pub struct AttackDetector {
    /// EWMA of the regular-packet loss rate (Figure 19 `drop_rate`).
    ewma_loss: f64,
    /// EWMA of link utilization.
    ewma_util: f64,
    /// Bytes transmitted (dequeued) since the last tick.
    delivered_bytes: u64,
    /// Regular packets dropped since the last tick.
    dropped_pkts: u64,
    /// Regular packets handled (dequeued + dropped) since the last tick.
    total_pkts: u64,
    /// Time of the last tick.
    last_tick: Nanos,
}

impl AttackDetector {
    /// Create a detector; `now` anchors the first measurement interval.
    pub fn new(now: Nanos) -> Self {
        AttackDetector {
            ewma_loss: 0.0,
            ewma_util: 0.0,
            delivered_bytes: 0,
            dropped_pkts: 0,
            total_pkts: 0,
            last_tick: now,
        }
    }

    /// Record a regular packet handled by the link: either transmitted
    /// (`dropped == false`) or discarded by the queue.
    pub fn record(&mut self, bytes: usize, dropped: bool) {
        self.total_pkts += 1;
        if dropped {
            self.dropped_pkts += 1;
        } else {
            self.delivered_bytes += bytes as u64;
        }
    }

    /// Current EWMA loss estimate.
    pub fn loss_rate(&self) -> f64 {
        self.ewma_loss
    }

    /// Current EWMA utilization estimate.
    pub fn utilization(&self) -> f64 {
        self.ewma_util
    }

    /// Fold the measurements since the previous tick into the EWMAs
    /// (Figure 19 `check_packet_loss`) and return whether they indicate an
    /// attack.
    pub fn tick(&mut self, now: Nanos, capacity: Bps, cfg: &Config) -> bool {
        let elapsed = now.saturating_sub(self.last_tick);
        if elapsed == 0 {
            return self.is_attack(cfg);
        }
        let inst_loss = if self.total_pkts > 0 {
            self.dropped_pkts as f64 / self.total_pkts as f64
        } else {
            0.0
        };
        let inst_util = if capacity > 0 {
            (self.delivered_bytes as f64 * 8.0) / (capacity as f64 * elapsed as f64 / 1e9)
        } else {
            0.0
        };
        let w = cfg.detection_ewma;
        self.ewma_loss = self.ewma_loss * (1.0 - w) + inst_loss * w;
        self.ewma_util = self.ewma_util * (1.0 - w) + inst_util.min(1.5) * w;
        self.delivered_bytes = 0;
        self.dropped_pkts = 0;
        self.total_pkts = 0;
        self.last_tick = now;
        self.is_attack(cfg)
    }

    /// Whether the current EWMAs exceed the attack thresholds.
    pub fn is_attack(&self, cfg: &Config) -> bool {
        self.ewma_loss > cfg.loss_threshold || self.ewma_util > cfg.utilization_threshold
    }
}

/// Events produced by [`BottleneckMonitor::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorEvent {
    /// Nothing changed.
    None,
    /// The link just entered a monitoring cycle.
    CycleStarted,
    /// The monitoring cycle ended (the link was quiet for `Tb`).
    CycleEnded,
}

/// The complete per-link monitoring state machine: attack detection,
/// monitoring cycle lifetime, and `L↓` stamping hysteresis.
#[derive(Debug, Clone)]
pub struct BottleneckMonitor {
    detector: AttackDetector,
    /// When the current monitoring cycle started, if one is active.
    mon_since: Option<Nanos>,
    /// The last time an attack indication was observed.
    last_attack: Nanos,
    /// Stamp `L↓` until this time (congestion time + 2·Ilim hysteresis).
    stamp_decr_until: Nanos,
    /// Count of monitoring cycles started (metrics).
    cycles_started: u64,
}

impl BottleneckMonitor {
    /// Create the monitor.
    pub fn new(now: Nanos) -> Self {
        BottleneckMonitor {
            detector: AttackDetector::new(now),
            mon_since: None,
            last_attack: 0,
            stamp_decr_until: 0,
            cycles_started: 0,
        }
    }

    /// Access the underlying detector for recording packet outcomes.
    pub fn detector_mut(&mut self) -> &mut AttackDetector {
        &mut self.detector
    }

    /// Read-only access to the detector (metrics).
    pub fn detector(&self) -> &AttackDetector {
        &self.detector
    }

    /// Whether the link is currently in a monitoring cycle (`mon` state).
    pub fn in_mon(&self) -> bool {
        self.mon_since.is_some()
    }

    /// Number of monitoring cycles started so far.
    pub fn cycles_started(&self) -> u64 {
        self.cycles_started
    }

    /// Record that the link is congested *right now* (e.g. RED dropped or
    /// marked a regular packet, or the average queue exceeded `min_thresh`).
    /// Extends the `L↓` stamping hysteresis to `now + 2·Ilim` (§4.3.4,
    /// Figure 4).
    pub fn note_congestion(&mut self, now: Nanos, cfg: &Config) {
        let horizon = now + u64::from(cfg.hysteresis_intervals) * cfg.ilim;
        if horizon > self.stamp_decr_until {
            self.stamp_decr_until = horizon;
        }
        // Congestion is also an attack indication keeping the cycle alive.
        if self.in_mon() {
            self.last_attack = now;
        }
    }

    /// Whether the router should stamp `L↓` into packets dequeued at `now`
    /// (i.e. the link is overloaded or within the hysteresis window).
    pub fn should_stamp_decr(&self, now: Nanos) -> bool {
        self.in_mon() && now <= self.stamp_decr_until
    }

    /// Periodic evaluation (Figure 19): update the EWMAs, start a cycle if
    /// an attack is detected, end it if the link has been quiet for `Tb`.
    pub fn tick(&mut self, now: Nanos, capacity: Bps, cfg: &Config) -> MonitorEvent {
        let attack = self.detector.tick(now, capacity, cfg);
        if attack {
            self.last_attack = now;
            if self.mon_since.is_none() {
                self.mon_since = Some(now);
                self.cycles_started += 1;
                // Entering mon because of an attack: the link is overloaded,
                // so start stamping L↓ immediately.
                self.note_congestion(now, cfg);
                return MonitorEvent::CycleStarted;
            }
        } else if self.mon_since.is_some() && now.saturating_sub(self.last_attack) >= cfg.tb {
            self.mon_since = None;
            self.stamp_decr_until = 0;
            return MonitorEvent::CycleEnded;
        }
        MonitorEvent::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SEC;

    fn cfg() -> Config {
        let mut c = Config::short_timers();
        c.tb = 30 * SEC;
        c
    }

    #[test]
    fn loss_above_threshold_triggers_attack() {
        let cfg = cfg();
        let mut d = AttackDetector::new(0);
        // 10% loss sustained for a few seconds pushes the EWMA over 2%.
        let mut now = 0;
        let mut attack = false;
        for _ in 0..10 {
            now += SEC;
            for i in 0..100 {
                d.record(1500, i % 10 == 0);
            }
            attack = d.tick(now, 10_000_000, &cfg);
        }
        assert!(attack);
        assert!(d.loss_rate() > 0.02);
    }

    #[test]
    fn low_loss_is_not_an_attack() {
        let cfg = cfg();
        let mut d = AttackDetector::new(0);
        let mut now = 0;
        for _ in 0..20 {
            now += SEC;
            for i in 0..1000 {
                d.record(1500, i % 200 == 0); // 0.5% loss
            }
            assert!(!d.tick(now, 1_000_000_000, &cfg));
        }
    }

    #[test]
    fn high_utilization_triggers_attack() {
        let cfg = cfg();
        let mut d = AttackDetector::new(0);
        // 10 Mbps link fully utilized, no losses.
        let mut now = 0;
        let mut attack = false;
        for _ in 0..30 {
            now += SEC;
            for _ in 0..833 {
                d.record(1500, false); // ~10 Mbps
            }
            attack = d.tick(now, 10_000_000, &cfg);
        }
        assert!(attack);
        assert!(d.utilization() > 0.95);
    }

    #[test]
    fn cycle_starts_and_ends() {
        let cfg = cfg();
        let mut m = BottleneckMonitor::new(0);
        // Drive loss for 5 seconds -> cycle starts.
        let mut now = 0;
        let mut started = false;
        for _ in 0..10 {
            now += SEC;
            for i in 0..100 {
                m.detector_mut().record(1500, i % 5 == 0);
            }
            if m.tick(now, 10_000_000, &cfg) == MonitorEvent::CycleStarted {
                started = true;
                break;
            }
        }
        assert!(started);
        assert!(m.in_mon());
        assert_eq!(m.cycles_started(), 1);

        // Quiet traffic: the cycle persists until Tb (30 s here) elapses.
        let quiet_start = now;
        let mut ended_at = None;
        for _ in 0..60 {
            now += SEC;
            for _ in 0..10 {
                m.detector_mut().record(1500, false);
            }
            if m.tick(now, 10_000_000, &cfg) == MonitorEvent::CycleEnded {
                ended_at = Some(now);
                break;
            }
        }
        let ended_at = ended_at.expect("cycle should end after Tb of quiet");
        assert!(ended_at - quiet_start >= cfg.tb);
        assert!(!m.in_mon());
    }

    #[test]
    fn renewed_attack_prolongs_cycle() {
        // Macroscopic on-off attacks: a new attack indication during the
        // quiet period pushes the cycle end out (§5.2.1).
        let cfg = cfg();
        let mut m = BottleneckMonitor::new(0);
        let mut now = 0;
        // Start the cycle.
        while !m.in_mon() {
            now += SEC;
            for i in 0..100 {
                m.detector_mut().record(1500, i % 5 == 0);
            }
            m.tick(now, 10_000_000, &cfg);
        }
        // 20 s quiet (less than Tb = 30 s), then congestion again.
        for _ in 0..20 {
            now += SEC;
            m.tick(now, 10_000_000, &cfg);
        }
        assert!(m.in_mon());
        m.note_congestion(now, &cfg);
        // Another 25 s of quiet: still within Tb of the renewed attack.
        for _ in 0..25 {
            now += SEC;
            m.tick(now, 10_000_000, &cfg);
        }
        assert!(m.in_mon(), "renewed congestion must keep the cycle alive");
    }

    #[test]
    fn hysteresis_lasts_two_control_intervals() {
        let cfg = cfg();
        let mut m = BottleneckMonitor::new(0);
        // Force mon state.
        let mut now = 0;
        while !m.in_mon() {
            now += SEC;
            for i in 0..100 {
                m.detector_mut().record(1500, i % 5 == 0);
            }
            m.tick(now, 10_000_000, &cfg);
        }
        let t1 = now + 10 * SEC;
        m.note_congestion(t1, &cfg);
        // Within 2*Ilim (4 s) of the last congestion: still stamping.
        assert!(m.should_stamp_decr(t1 + 2 * cfg.ilim));
        // Beyond the hysteresis: no longer stamping.
        assert!(!m.should_stamp_decr(t1 + 2 * cfg.ilim + 1));
    }

    #[test]
    fn not_in_mon_never_stamps() {
        let cfg = cfg();
        let mut m = BottleneckMonitor::new(0);
        m.note_congestion(SEC, &cfg);
        assert!(!m.should_stamp_decr(SEC));
    }
}
