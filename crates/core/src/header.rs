//! The NetFence shim header wire format (Figure 6 of the paper).
//!
//! The header sits between IP and the upper-layer protocol. It carries two
//! pieces of congestion policing feedback:
//!
//! * the **presented** (forward) feedback — what the sender presents to its
//!   access router, which the access router validates, uses for policing,
//!   and then rewrites (`nop` → refreshed `nop`, `L↑`/`L↓` → fresh `L↑`),
//!   and which a bottleneck router in the `mon` state may overwrite with
//!   `L↓` (§4.3.2–4.3.3);
//! * the optional **echoed** (return) feedback — the latest feedback this
//!   packet's sender observed as the *receiver* of the reverse direction,
//!   piggybacked so the remote endpoint can present it to its own access
//!   router (§3.1 step 4, §6.1).
//!
//! To save space the echoed feedback carries only the two low bits of its
//! timestamp; the remote access router reconstructs the full timestamp under
//! the assumption that it is less than four seconds old (§6.1).
//!
//! Sizes match the paper's accounting: 12 bytes with `nop` forward feedback
//! and no return header, 20 bytes with `mon` forward feedback (worst-case
//! forward), and 28 bytes in the worst case of `mon` feedback in both
//! directions. The paper quotes "20 bytes in the common case" for nop/nop;
//! with the `LINK-ID_return` omission the same case encodes to 16 bytes
//! here, and [`NetFenceHeader::nominal_len`] reports the paper's
//! conservative figure for overhead accounting.

use netfence_crypto::Mac32;

use crate::feedback::{Action, Feedback};
use crate::types::LinkId;

/// Protocol version encoded in the VER field.
pub const VERSION: u8 = 1;

/// The NetFence packet type: request or regular (§3.1). Legacy packets do
/// not carry a NetFence header at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A request packet: sent when the sender holds no valid feedback, rate
    /// limited per-sender by priority level (§4.2).
    Request,
    /// A regular packet: carries valid congestion policing feedback.
    Regular,
}

/// A fully-parsed NetFence header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFenceHeader {
    /// Request or regular packet.
    pub kind: PacketKind,
    /// Upper-layer protocol number (e.g. 6 = TCP, 17 = UDP).
    pub proto: u8,
    /// Request packet priority level (0 = lowest priority, not rate
    /// limited; level k is forwarded with higher priority but costs
    /// 2^(k−1) rate-limiter tokens).
    pub priority: u8,
    /// The presented / forward-path congestion policing feedback.
    pub presented: Feedback,
    /// The echoed feedback for the reverse direction, if any.
    pub echoed: Option<Feedback>,
}

/// Errors from [`NetFenceHeader::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// The buffer is shorter than the encoded header claims.
    Truncated,
    /// Unknown protocol version.
    BadVersion(u8),
}

impl NetFenceHeader {
    /// Construct a request header with the given priority carrying fresh
    /// `nop`-less state (the access router will stamp feedback into it).
    pub fn request(proto: u8, priority: u8, presented: Feedback) -> Self {
        NetFenceHeader { kind: PacketKind::Request, proto, priority, presented, echoed: None }
    }

    /// Construct a regular header presenting `presented` feedback.
    pub fn regular(proto: u8, presented: Feedback, echoed: Option<Feedback>) -> Self {
        NetFenceHeader { kind: PacketKind::Regular, proto, priority: 0, presented, echoed }
    }

    /// Exact encoded length in bytes of this header.
    pub fn encoded_len(&self) -> usize {
        let fwd = match self.presented {
            Feedback::Nop { .. } => 12,
            Feedback::Mon { .. } => 20,
        };
        let ret = match &self.echoed {
            None => 0,
            Some(Feedback::Nop { .. }) => 4,
            Some(Feedback::Mon { .. }) => 8,
        };
        fwd + ret
    }

    /// The header length used for overhead accounting in the simulator:
    /// matches the figures quoted in §6.1 of the paper (20 bytes common
    /// case, 28 bytes worst case) by always counting a full 8-byte return
    /// header when echoed feedback is present.
    pub fn nominal_len(&self) -> usize {
        let fwd = match self.presented {
            Feedback::Nop { .. } => 12,
            Feedback::Mon { .. } => 20,
        };
        fwd + if self.echoed.is_some() { 8 } else { 0 }
    }

    /// Encode the header to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        let mut type_bits = 0u8;
        if self.kind == PacketKind::Request {
            type_bits |= 0b1000;
        }
        if matches!(self.presented, Feedback::Mon { .. }) {
            type_bits |= 0b0100;
        }
        if self.echoed.is_some() {
            type_bits |= 0b0001;
        }
        buf.push((VERSION << 4) | type_bits);
        buf.push(self.proto);
        buf.push(self.priority);

        let mut flags = 0u8;
        if matches!(self.presented, Feedback::Mon { action: Action::Decr, .. }) {
            flags |= 0b1000_0000;
        }
        if let Some(e) = &self.echoed {
            if e.is_decr() {
                flags |= 0b0100_0000;
            }
            if matches!(e, Feedback::Mon { .. }) {
                flags |= 0b0010_0000;
            }
            flags |= (e.ts() & 0b11) as u8;
        }
        buf.push(flags);

        buf.extend_from_slice(&self.presented.ts().to_be_bytes());
        match self.presented {
            Feedback::Nop { token, .. } => buf.extend_from_slice(&token.to_be_bytes()),
            Feedback::Mon { link, token, token_nop, .. } => {
                buf.extend_from_slice(&link.0.to_be_bytes());
                buf.extend_from_slice(&token_nop.unwrap_or(0).to_be_bytes());
                buf.extend_from_slice(&token.to_be_bytes());
            }
        }
        if let Some(e) = &self.echoed {
            match e {
                Feedback::Nop { token, .. } => buf.extend_from_slice(&token.to_be_bytes()),
                Feedback::Mon { link, token, .. } => {
                    buf.extend_from_slice(&token.to_be_bytes());
                    buf.extend_from_slice(&link.0.to_be_bytes());
                }
            }
        }
        debug_assert_eq!(buf.len(), self.encoded_len());
        buf
    }

    /// Decode a header from bytes.
    ///
    /// `now_secs` is the decoder's current time in seconds, used to
    /// reconstruct the echoed feedback's full timestamp from its two low
    /// bits ("assuming that the timestamp is less than four seconds older
    /// than its current time", §6.1).
    ///
    /// Returns the header and the number of bytes consumed.
    pub fn decode(buf: &[u8], now_secs: u32) -> Result<(Self, usize), HeaderError> {
        if buf.len() < 8 {
            return Err(HeaderError::Truncated);
        }
        let ver = buf[0] >> 4;
        if ver != VERSION {
            return Err(HeaderError::BadVersion(ver));
        }
        let type_bits = buf[0] & 0x0f;
        let kind = if type_bits & 0b1000 != 0 { PacketKind::Request } else { PacketKind::Regular };
        let fwd_mon = type_bits & 0b0100 != 0;
        let has_echo = type_bits & 0b0001 != 0;
        let proto = buf[1];
        let priority = buf[2];
        let flags = buf[3];
        let fwd_decr = flags & 0b1000_0000 != 0;
        let echo_decr = flags & 0b0100_0000 != 0;
        let echo_mon = flags & 0b0010_0000 != 0;
        let echo_ts_low = (flags & 0b11) as u32;
        let ts = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);

        let mut off = 8;
        let read_u32 = |buf: &[u8], off: usize| -> Result<u32, HeaderError> {
            buf.get(off..off + 4)
                .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
                .ok_or(HeaderError::Truncated)
        };

        let presented = if fwd_mon {
            let link = LinkId(read_u32(buf, off)?);
            let token_nop = read_u32(buf, off + 4)?;
            let token = read_u32(buf, off + 8)?;
            off += 12;
            Feedback::Mon {
                link,
                action: if fwd_decr { Action::Decr } else { Action::Incr },
                ts,
                token,
                token_nop: if token_nop == 0 { None } else { Some(token_nop) },
            }
        } else {
            let token = read_u32(buf, off)?;
            off += 4;
            Feedback::Nop { ts, token }
        };

        let echoed = if has_echo {
            let token: Mac32 = read_u32(buf, off)?;
            off += 4;
            let ets = reconstruct_ts(now_secs, echo_ts_low);
            Some(if echo_mon {
                let link = LinkId(read_u32(buf, off)?);
                off += 4;
                Feedback::Mon {
                    link,
                    action: if echo_decr { Action::Decr } else { Action::Incr },
                    ts: ets,
                    token,
                    token_nop: None,
                }
            } else {
                Feedback::Nop { ts: ets, token }
            })
        } else {
            None
        };

        Ok((NetFenceHeader { kind, proto, priority, presented, echoed }, off))
    }
}

/// Reconstruct a full timestamp from its two low bits, assuming it is at
/// most 3 seconds older than `now_secs`.
fn reconstruct_ts(now_secs: u32, low2: u32) -> u32 {
    for age in 0..4u32 {
        let candidate = now_secs.wrapping_sub(age);
        if candidate & 0b11 == low2 {
            return candidate;
        }
    }
    unreachable!("one of four consecutive values must match any 2-bit residue")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop(ts: u32) -> Feedback {
        Feedback::Nop { ts, token: 0xaabbccdd }
    }
    fn incr(ts: u32, link: u32) -> Feedback {
        Feedback::Mon {
            link: LinkId(link),
            action: Action::Incr,
            ts,
            token: 0x11223344,
            token_nop: Some(0x55667788),
        }
    }
    fn decr(ts: u32, link: u32) -> Feedback {
        Feedback::Mon {
            link: LinkId(link),
            action: Action::Decr,
            ts,
            token: 0x99aabbcc,
            token_nop: None,
        }
    }

    #[test]
    fn sizes_match_paper() {
        // Worst case: mon feedback on both paths = 28 bytes (§6.1).
        let worst = NetFenceHeader::regular(6, decr(100, 7), Some(incr(100, 9)));
        assert_eq!(worst.encoded_len(), 28);
        assert_eq!(worst.nominal_len(), 28);
        // Common case quoted in the paper: nop on both paths = 20 bytes
        // nominal (16 bytes with the LINK-ID_return omission).
        let common = NetFenceHeader::regular(6, nop(100), Some(nop(100)));
        assert_eq!(common.nominal_len(), 20);
        assert_eq!(common.encoded_len(), 16);
        // A bare request packet before any feedback is returned: 12 bytes.
        let req = NetFenceHeader::request(17, 3, nop(100));
        assert_eq!(req.encoded_len(), 12);
    }

    #[test]
    fn request_packet_size_estimate() {
        // §4.6 estimates a 92-byte request packet: 40 B TCP/IP + 28 B
        // NetFence + 24 B Passport. The 28 B case is a full mon/mon header.
        let h = NetFenceHeader::regular(6, decr(1, 2), Some(decr(1, 3)));
        assert_eq!(40 + h.encoded_len() + crate::passport::PASSPORT_HEADER_LEN, 92);
    }

    /// Echoed feedback never carries `token_nop` on the wire: the token only
    /// matters between the access router and the bottleneck on the forward
    /// path. This helper builds the echoed-side mon/incr fixture.
    fn incr_echo(ts: u32, link: u32) -> Feedback {
        Feedback::Mon {
            link: LinkId(link),
            action: Action::Incr,
            ts,
            token: 0x11223344,
            token_nop: None,
        }
    }

    #[test]
    fn roundtrip_all_shapes() {
        let now = 1000;
        let shapes = vec![
            NetFenceHeader::request(17, 5, nop(now)),
            NetFenceHeader::regular(6, nop(now), None),
            NetFenceHeader::regular(6, nop(now), Some(nop(now - 2))),
            NetFenceHeader::regular(6, incr(now, 42), Some(decr(now - 1, 77))),
            NetFenceHeader::regular(17, decr(now, 42), Some(incr_echo(now - 3, 77))),
            NetFenceHeader::regular(6, incr(now, 1), None),
        ];
        for h in shapes {
            let bytes = h.encode();
            assert_eq!(bytes.len(), h.encoded_len());
            let (decoded, used) = NetFenceHeader::decode(&bytes, now).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, h, "round trip failed for {h:?}");
        }
    }

    #[test]
    fn echoed_timestamp_reconstruction() {
        for age in 0..4u32 {
            let now = 123_456;
            let ts = now - age;
            let h = NetFenceHeader::regular(6, nop(now), Some(nop(ts)));
            let (decoded, _) = NetFenceHeader::decode(&h.encode(), now).unwrap();
            assert_eq!(decoded.echoed.unwrap().ts(), ts);
        }
    }

    #[test]
    fn truncated_and_bad_version_rejected() {
        let h = NetFenceHeader::regular(6, incr(9, 3), Some(incr(9, 4)));
        let bytes = h.encode();
        for len in 0..bytes.len() {
            assert_eq!(
                NetFenceHeader::decode(&bytes[..len], 9),
                Err(HeaderError::Truncated),
                "length {len} should be truncated"
            );
        }
        let mut bad = bytes.clone();
        bad[0] = 0xf0 | (bad[0] & 0x0f);
        assert_eq!(NetFenceHeader::decode(&bad, 9), Err(HeaderError::BadVersion(0xf)));
    }

    proptest::proptest! {
        #[test]
        fn roundtrip_arbitrary(kind_req in proptest::prelude::any::<bool>(),
                               proto in proptest::prelude::any::<u8>(),
                               prio in 0u8..16,
                               fwd_mon in proptest::prelude::any::<bool>(),
                               fwd_decr in proptest::prelude::any::<bool>(),
                               link in 1u32..,
                               token in proptest::prelude::any::<u32>(),
                               tnop in 1u32..,
                               ts in 4u32..1_000_000,
                               echo in 0usize..3,
                               echo_age in 0u32..4) {
            let presented = if fwd_mon {
                Feedback::Mon {
                    link: LinkId(link),
                    action: if fwd_decr { Action::Decr } else { Action::Incr },
                    ts, token,
                    token_nop: if fwd_decr { None } else { Some(tnop) },
                }
            } else {
                Feedback::Nop { ts, token }
            };
            let echoed = match echo {
                0 => None,
                1 => Some(Feedback::Nop { ts: ts - echo_age, token }),
                _ => Some(Feedback::Mon {
                    link: LinkId(link), action: Action::Decr, ts: ts - echo_age,
                    token, token_nop: None }),
            };
            let h = NetFenceHeader {
                kind: if kind_req { PacketKind::Request } else { PacketKind::Regular },
                proto, priority: prio, presented, echoed,
            };
            let bytes = h.encode();
            proptest::prop_assert!(bytes.len() <= 28);
            let (decoded, used) = NetFenceHeader::decode(&bytes, ts).unwrap();
            proptest::prop_assert_eq!(used, bytes.len());
            proptest::prop_assert_eq!(decoded, h);
        }
    }
}
