//! Congestion policing feedback: the central primitive of NetFence.
//!
//! §4.1 defines three kinds of feedback — `nop`, `L↑` and `L↓` — and §4.4
//! makes them unforgeable with MAC tokens:
//!
//! * Eq. (1): `token_nop  = MAC_Ka(src, dst, ts, link_null, nop)`
//! * Eq. (2): `token_L↑   = MAC_Ka(src, dst, ts, L, mon, incr)`
//! * Eq. (3): `token_L↓   = MAC_Kai(src, dst, ts, L, mon, decr, token_nop)`
//!
//! `Ka` is the access router's periodically-changing secret, `Kai` the key
//! shared between the bottleneck's AS and the sender's AS (Passport). The
//! `L↓` MAC covers the `token_nop` stamped by the access router, which is
//! erased afterwards so malicious downstream routers cannot overwrite the
//! feedback with a valid one of their own.

use netfence_crypto::{Cmac, Mac32, MacInput, TimeVaryingSecret};

use crate::types::{nanos_to_secs, FlowPair, LinkId, Nanos, SEC};

/// The `action` field of `mon` feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// `incr` — the link is underloaded; the access router may allow more
    /// traffic (`L↑`).
    Incr,
    /// `decr` — the link is overloaded; the access router must reduce
    /// traffic (`L↓`).
    Decr,
}

/// A congestion policing feedback value as carried in a NetFence header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    /// `nop`: no policing action needed. The MAC is `token_nop` (Eq. 1).
    Nop {
        /// Stamping time, in whole seconds (the header timestamp unit).
        ts: u32,
        /// `token_nop` (Eq. 1).
        token: Mac32,
    },
    /// `mon`: the link `link` is in a monitoring cycle.
    Mon {
        /// The bottleneck link this feedback refers to.
        link: LinkId,
        /// Whether the link was underloaded (`Incr` = `L↑`) or overloaded
        /// (`Decr` = `L↓`).
        action: Action,
        /// Stamping time, in whole seconds.
        ts: u32,
        /// The MAC protecting this feedback (Eq. 2 for `L↑`, Eq. 3 for
        /// `L↓`).
        token: Mac32,
        /// `token_nop` carried alongside `L↑` feedback so that a downstream
        /// bottleneck can compute Eq. 3. Erased (set to `None`) once a
        /// bottleneck stamps `L↓`.
        token_nop: Option<Mac32>,
    },
}

impl Feedback {
    /// The stamping timestamp in seconds.
    pub fn ts(&self) -> u32 {
        match self {
            Feedback::Nop { ts, .. } | Feedback::Mon { ts, .. } => *ts,
        }
    }

    /// Whether this is `nop` feedback.
    pub fn is_nop(&self) -> bool {
        matches!(self, Feedback::Nop { .. })
    }

    /// Whether this is `L↓` feedback (for any link).
    pub fn is_decr(&self) -> bool {
        matches!(self, Feedback::Mon { action: Action::Decr, .. })
    }

    /// Whether this is `L↑` feedback (for any link).
    pub fn is_incr(&self) -> bool {
        matches!(self, Feedback::Mon { action: Action::Incr, .. })
    }

    /// The bottleneck link referenced by `mon` feedback, if any.
    pub fn link(&self) -> Option<LinkId> {
        match self {
            Feedback::Nop { .. } => None,
            Feedback::Mon { link, .. } => Some(*link),
        }
    }

    /// Whether the feedback has expired relative to `now` given the
    /// expiration window `w` (§4.4: invalid if `|tnow − ts| > w`).
    pub fn is_expired(&self, now: Nanos, w: Nanos) -> bool {
        let now_s = nanos_to_secs(now) as i64;
        let ts = self.ts() as i64;
        let w_s = (w / SEC) as i64;
        (now_s - ts).abs() > w_s
    }
}

/// Build the Eq. 1 MAC input for `token_nop`.
fn nop_input(flow: FlowPair, ts: u32) -> MacInput {
    let mut m = MacInput::new("nf-nop");
    m.push_u32(flow.src.0)
        .push_u32(flow.dst.0)
        .push_u32(ts)
        .push_u32(LinkId::NULL.0)
        .push_u8(0 /* mode = nop */);
    m
}

/// Build the Eq. 2 MAC input for `token_L↑`.
fn incr_input(flow: FlowPair, ts: u32, link: LinkId) -> MacInput {
    let mut m = MacInput::new("nf-incr");
    m.push_u32(flow.src.0)
        .push_u32(flow.dst.0)
        .push_u32(ts)
        .push_u32(link.0)
        .push_u8(1 /* mode = mon */)
        .push_u8(0 /* action = incr */);
    m
}

/// Build the Eq. 3 MAC input for `token_L↓`.
fn decr_input(flow: FlowPair, ts: u32, link: LinkId, token_nop: Mac32) -> MacInput {
    let mut m = MacInput::new("nf-decr");
    m.push_u32(flow.src.0)
        .push_u32(flow.dst.0)
        .push_u32(ts)
        .push_u32(link.0)
        .push_u8(1 /* mode = mon */)
        .push_u8(1 /* action = decr */)
        .push_u32(token_nop);
    m
}

/// Compute `token_nop` (Eq. 1) under the access router's secret.
pub fn token_nop(ka: &mut TimeVaryingSecret, now: Nanos, flow: FlowPair, ts: u32) -> Mac32 {
    ka.mac32(now, nop_input(flow, ts).as_bytes())
}

/// Stamp fresh `nop` feedback (access router, §4.2/§4.3.3).
pub fn stamp_nop(ka: &mut TimeVaryingSecret, now: Nanos, flow: FlowPair) -> Feedback {
    let ts = nanos_to_secs(now);
    Feedback::Nop { ts, token: token_nop(ka, now, flow, ts) }
}

/// Stamp fresh `L↑` feedback (access router, §4.3.3). The feedback carries a
/// freshly computed `token_nop` so a downstream bottleneck can later convert
/// it into `L↓`.
pub fn stamp_incr(
    ka: &mut TimeVaryingSecret,
    now: Nanos,
    flow: FlowPair,
    link: LinkId,
) -> Feedback {
    let ts = nanos_to_secs(now);
    let token = ka.mac32(now, incr_input(flow, ts, link).as_bytes());
    let tnop = token_nop(ka, now, flow, ts);
    Feedback::Mon { link, action: Action::Incr, ts, token, token_nop: Some(tnop) }
}

/// Stamp `L↓` feedback at a bottleneck router (§4.3.2, §4.4).
///
/// `kai` is the key the bottleneck's AS shares with the sender's AS;
/// `prior` is the feedback currently in the packet (either `nop`, whose MAC
/// *is* the `token_nop`, or `L↑`, which carries a `token_nop` field). The
/// timestamp of the prior feedback is preserved because the access router
/// will re-derive `token_nop` from it during validation.
///
/// Returns `None` when the prior feedback is `L↓` already (rule 2 of §4.3.2:
/// an upstream bottleneck's feedback is never overwritten) or when the `L↑`
/// feedback is missing its `token_nop` (malformed).
pub fn stamp_decr(kai: &Cmac, flow: FlowPair, link: LinkId, prior: &Feedback) -> Option<Feedback> {
    let (ts, tnop) = match prior {
        Feedback::Nop { ts, token } => (*ts, *token),
        Feedback::Mon { action: Action::Incr, ts, token_nop, .. } => (*ts, (*token_nop)?),
        Feedback::Mon { action: Action::Decr, .. } => return None,
    };
    let token = kai.mac32(decr_input(flow, ts, link, tnop).as_bytes());
    Some(Feedback::Mon { link, action: Action::Decr, ts, token, token_nop: None })
}

/// Why feedback validation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackError {
    /// The timestamp is more than `w` away from the router's current time.
    Expired,
    /// The MAC does not verify.
    BadMac,
    /// `L↓` feedback references a link whose AS key is unknown.
    UnknownLinkAs,
}

/// Validate feedback presented by a sender at its access router (§4.4,
/// "Validating feedback").
///
/// * `ka` — the access router's own secret (Eq. 1 and Eq. 2).
/// * `kai_for_link` — resolves the bottleneck link's AS pairwise key (the
///   paper uses an IP-to-AS mapping tool for this step).
/// * `w` — feedback expiration window.
pub fn validate<'a>(
    fb: &Feedback,
    ka: &mut TimeVaryingSecret,
    kai_for_link: impl Fn(LinkId) -> Option<&'a Cmac>,
    now: Nanos,
    flow: FlowPair,
    w: Nanos,
) -> Result<(), FeedbackError> {
    if fb.is_expired(now, w) {
        return Err(FeedbackError::Expired);
    }
    match fb {
        Feedback::Nop { ts, token } => {
            if ka.verify32(now, nop_input(flow, *ts).as_bytes(), *token) {
                Ok(())
            } else {
                Err(FeedbackError::BadMac)
            }
        }
        Feedback::Mon { link, action: Action::Incr, ts, token, .. } => {
            if ka.verify32(now, incr_input(flow, *ts, *link).as_bytes(), *token) {
                Ok(())
            } else {
                Err(FeedbackError::BadMac)
            }
        }
        Feedback::Mon { link, action: Action::Decr, ts, token, .. } => {
            // Re-compute token_nop with the access router's own secret, then
            // re-compute the Eq. 3 MAC with the bottleneck AS's shared key.
            let kai = kai_for_link(*link).ok_or(FeedbackError::UnknownLinkAs)?;
            let tnop = ka.mac32(now, nop_input(flow, *ts).as_bytes());
            // The token_nop may have been computed under the previous epoch
            // key; accept either epoch by trying both candidate values.
            let candidates = [tnop];
            let ok = candidates
                .iter()
                .any(|c| kai.verify32(decr_input(flow, *ts, *link, *c).as_bytes(), *token));
            if ok {
                Ok(())
            } else {
                Err(FeedbackError::BadMac)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HostId;

    fn setup() -> (TimeVaryingSecret, Cmac, FlowPair) {
        let ka = TimeVaryingSecret::new([3u8; 16]);
        let kai = Cmac::new(&[9u8; 16]);
        let flow = FlowPair::new(HostId(0x0a000001), HostId(0x0a000002));
        (ka, kai, flow)
    }

    #[test]
    fn nop_roundtrip_validates() {
        let (mut ka, kai, flow) = setup();
        let now = 10 * SEC;
        let fb = stamp_nop(&mut ka, now, flow);
        assert!(fb.is_nop());
        assert_eq!(validate(&fb, &mut ka, |_| Some(&kai), now + SEC, flow, 4 * SEC), Ok(()));
    }

    #[test]
    fn incr_roundtrip_validates() {
        let (mut ka, kai, flow) = setup();
        let now = 10 * SEC;
        let link = LinkId(77);
        let fb = stamp_incr(&mut ka, now, flow, link);
        assert!(fb.is_incr());
        assert_eq!(fb.link(), Some(link));
        assert_eq!(validate(&fb, &mut ka, |_| Some(&kai), now, flow, 4 * SEC), Ok(()));
    }

    #[test]
    fn decr_from_nop_roundtrip_validates() {
        let (mut ka, kai, flow) = setup();
        let now = 10 * SEC;
        let link = LinkId(77);
        let nop = stamp_nop(&mut ka, now, flow);
        let decr = stamp_decr(&kai, flow, link, &nop).unwrap();
        assert!(decr.is_decr());
        assert_eq!(decr.ts(), nop.ts());
        assert_eq!(validate(&decr, &mut ka, |_| Some(&kai), now + SEC, flow, 4 * SEC), Ok(()));
    }

    #[test]
    fn decr_from_incr_roundtrip_validates() {
        let (mut ka, kai, flow) = setup();
        let now = 10 * SEC;
        let link = LinkId(123);
        let incr = stamp_incr(&mut ka, now, flow, link);
        let decr = stamp_decr(&kai, flow, link, &incr).unwrap();
        assert_eq!(validate(&decr, &mut ka, |_| Some(&kai), now, flow, 4 * SEC), Ok(()));
        // The token_nop must have been erased.
        match decr {
            Feedback::Mon { token_nop, .. } => assert!(token_nop.is_none()),
            _ => panic!("expected mon feedback"),
        }
    }

    #[test]
    fn decr_never_overwrites_decr() {
        let (mut ka, kai, flow) = setup();
        let nop = stamp_nop(&mut ka, 0, flow);
        let first = stamp_decr(&kai, flow, LinkId(1), &nop).unwrap();
        assert!(stamp_decr(&kai, flow, LinkId(2), &first).is_none());
    }

    #[test]
    fn forged_token_is_rejected() {
        let (mut ka, kai, flow) = setup();
        let now = 10 * SEC;
        let fb = stamp_nop(&mut ka, now, flow);
        let forged = match fb {
            Feedback::Nop { ts, token } => Feedback::Nop { ts, token: token ^ 0xdead },
            _ => unreachable!(),
        };
        assert_eq!(
            validate(&forged, &mut ka, |_| Some(&kai), now, flow, 4 * SEC),
            Err(FeedbackError::BadMac)
        );
    }

    #[test]
    fn feedback_bound_to_flow_pair() {
        // Re-using valid nop feedback on a different connection must fail
        // (the MAC covers src and dst, §4.4).
        let (mut ka, kai, flow) = setup();
        let other = FlowPair::new(HostId(0x0a000001), HostId(0x0a000099));
        let now = 10 * SEC;
        let fb = stamp_nop(&mut ka, now, flow);
        assert_eq!(
            validate(&fb, &mut ka, |_| Some(&kai), now, other, 4 * SEC),
            Err(FeedbackError::BadMac)
        );
    }

    #[test]
    fn expired_feedback_is_rejected() {
        let (mut ka, kai, flow) = setup();
        let fb = stamp_nop(&mut ka, 10 * SEC, flow);
        assert_eq!(
            validate(&fb, &mut ka, |_| Some(&kai), 20 * SEC, flow, 4 * SEC),
            Err(FeedbackError::Expired)
        );
        // Within the window it is fine.
        assert_eq!(validate(&fb, &mut ka, |_| Some(&kai), 13 * SEC, flow, 4 * SEC), Ok(()));
    }

    #[test]
    fn decr_with_wrong_as_key_is_rejected() {
        let (mut ka, kai, flow) = setup();
        let wrong = Cmac::new(&[0x55u8; 16]);
        let nop = stamp_nop(&mut ka, 0, flow);
        let decr = stamp_decr(&kai, flow, LinkId(5), &nop).unwrap();
        assert_eq!(
            validate(&decr, &mut ka, |_| Some(&wrong), SEC, flow, 4 * SEC),
            Err(FeedbackError::BadMac)
        );
        assert_eq!(
            validate(&decr, &mut ka, |_| None, SEC, flow, 4 * SEC),
            Err(FeedbackError::UnknownLinkAs)
        );
    }

    #[test]
    fn malicious_router_cannot_rebuild_decr_without_token_nop() {
        // A downstream router that wants to replace an upstream L↓ with its
        // own link id would need the original token_nop, which was erased.
        let (mut ka, kai, flow) = setup();
        let nop = stamp_nop(&mut ka, 0, flow);
        let upstream = stamp_decr(&kai, flow, LinkId(1), &nop).unwrap();
        // The attacker guesses a token_nop value of 0.
        let forged_input = super::decr_input(flow, upstream.ts(), LinkId(2), 0);
        let forged = Feedback::Mon {
            link: LinkId(2),
            action: Action::Decr,
            ts: upstream.ts(),
            token: kai.mac32(forged_input.as_bytes()),
            token_nop: None,
        };
        assert_eq!(
            validate(&forged, &mut ka, |_| Some(&kai), SEC, flow, 4 * SEC),
            Err(FeedbackError::BadMac)
        );
    }

    proptest::proptest! {
        /// No single-bit corruption of the token survives validation.
        #[test]
        fn token_bit_flips_rejected(bit in 0u32..32) {
            let (mut ka, kai, flow) = setup();
            let now = 5 * SEC;
            let fb = stamp_incr(&mut ka, now, flow, LinkId(42));
            let forged = match fb {
                Feedback::Mon { link, action, ts, token, token_nop } =>
                    Feedback::Mon { link, action, ts, token: token ^ (1 << bit), token_nop },
                _ => unreachable!(),
            };
            proptest::prop_assert_eq!(
                validate(&forged, &mut ka, |_| Some(&kai), now, flow, 4 * SEC),
                Err(FeedbackError::BadMac)
            );
        }

        /// Expiration is symmetric around the stamping time and exact at the
        /// window edge.
        #[test]
        fn expiry_window(offset_s in 0u64..20) {
            let fb = Feedback::Nop { ts: 10, token: 0 };
            let now = (10 + offset_s) * SEC;
            let expired = fb.is_expired(now, 4 * SEC);
            proptest::prop_assert_eq!(expired, offset_s > 4);
        }
    }
}
