//! The leaky-bucket regular-packet rate limiter (§4.3.3, Figure 16).
//!
//! The paper implements a rate limiter as "a queue whose de-queuing rate is
//! the rate limit, similar to a leaky bucket". A queue — rather than a token
//! bucket — is used deliberately: a token bucket would let a sender burst
//! above its rate limit, and synchronized bursts from many attackers could
//! congest a link (the microscopic on-off attack of §5.2.1).
//!
//! The core type here is time-based and sans-I/O: it never holds packets.
//! [`LeakyBucket::offer`] tells the caller whether a packet may depart now,
//! must be held until a computed release time, or must be dropped because
//! the queueing delay would be too long. The simulator (or a real
//! forwarding engine) owns the actual packet buffer and schedules the
//! release.

use crate::types::{Bps, Nanos, SEC};

/// Decision for a packet offered to the leaky bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketVerdict {
    /// The packet conforms and may be forwarded immediately.
    Pass,
    /// The packet must be buffered and released at the given time.
    Queued {
        /// Absolute time at which the packet may depart.
        release_at: Nanos,
    },
    /// The packet would wait longer than the configured maximum caching
    /// delay (Figure 16 `caching_delay_too_long`) and is dropped.
    Drop,
}

/// A leaky-bucket rate limiter with throughput accounting.
#[derive(Debug, Clone)]
pub struct LeakyBucket {
    /// Current dequeue rate (the rate limit), bits per second.
    rate: Bps,
    /// Departure time of the most recently departed/scheduled packet.
    last_departure: Nanos,
    /// Number of packets currently scheduled but not yet released.
    queued_pkts: usize,
    /// Maximum tolerated queueing delay before dropping.
    max_delay: Nanos,
    /// Bytes offered (passed or queued, not dropped) since the throughput
    /// accounting window started — used by the robust AIMD increase rule.
    bytes_since_reset: u64,
    /// Start of the throughput accounting window.
    window_start: Nanos,
    /// Bytes dropped since the limiter was created (used by the access
    /// router's `Ta` garbage-collection rule: a limiter that has not
    /// discarded packets and has seen no `L↓` can be reclaimed).
    dropped_pkts: u64,
}

impl LeakyBucket {
    /// Create a bucket with an initial rate limit.
    pub fn new(now: Nanos, rate: Bps, max_delay: Nanos) -> Self {
        LeakyBucket {
            rate: rate.max(1),
            last_departure: now,
            queued_pkts: 0,
            max_delay,
            bytes_since_reset: 0,
            window_start: now,
            dropped_pkts: 0,
        }
    }

    /// The current rate limit in bits per second.
    pub fn rate(&self) -> Bps {
        self.rate
    }

    /// Number of packets currently queued (scheduled but not yet released).
    pub fn queued_pkts(&self) -> usize {
        self.queued_pkts
    }

    /// Total packets dropped by this limiter.
    pub fn dropped_pkts(&self) -> u64 {
        self.dropped_pkts
    }

    /// Time to transmit `bytes` at the current rate.
    fn service_time(&self, bytes: usize) -> Nanos {
        (bytes as u128 * 8 * SEC as u128 / self.rate as u128) as Nanos
    }

    /// Offer a packet of `bytes` at time `now` (Figure 16
    /// `rate_limit_regular_packet` + `cache_packet`).
    pub fn offer(&mut self, now: Nanos, bytes: usize) -> BucketVerdict {
        let service = self.service_time(bytes);
        if self.queued_pkts == 0 && now.saturating_sub(self.last_departure) >= service {
            // The inter-departure gap already covers this packet's service
            // time: it conforms and departs immediately.
            self.last_departure = now;
            self.bytes_since_reset += bytes as u64;
            return BucketVerdict::Pass;
        }
        // Otherwise the packet departs one service time after the previous
        // departure (or now, whichever is later).
        let release_at = self.last_departure.saturating_add(service).max(now);
        if release_at.saturating_sub(now) > self.max_delay {
            self.dropped_pkts += 1;
            return BucketVerdict::Drop;
        }
        self.last_departure = release_at;
        self.queued_pkts += 1;
        self.bytes_since_reset += bytes as u64;
        BucketVerdict::Queued { release_at }
    }

    /// Tell the bucket that a previously queued packet has actually been
    /// released by the caller.
    pub fn released(&mut self) {
        debug_assert!(self.queued_pkts > 0, "released() without a queued packet");
        self.queued_pkts = self.queued_pkts.saturating_sub(1);
    }

    /// Average throughput (bits per second) since the accounting window
    /// started. This is the value the robust AIMD rule compares against
    /// `rlim/2` before increasing the limit (Figure 17), preventing a
    /// malicious sender from inflating its limit by sending slowly.
    pub fn throughput(&self, now: Nanos) -> f64 {
        let elapsed = now.saturating_sub(self.window_start);
        if elapsed == 0 {
            return 0.0;
        }
        self.bytes_since_reset as f64 * 8.0 * SEC as f64 / elapsed as f64
    }

    /// Reset the throughput accounting window (called at the end of each
    /// control interval).
    pub fn reset_window(&mut self, now: Nanos) {
        self.bytes_since_reset = 0;
        self.window_start = now;
    }

    /// Change the rate limit. Pending departures are rescaled so that the
    /// backlog drains at the new rate (Figure 17 `update_packet_cache`).
    pub fn set_rate(&mut self, now: Nanos, new_rate: Bps) {
        let new_rate = new_rate.max(1);
        if self.last_departure > now && self.rate != new_rate {
            let backlog = self.last_departure - now;
            let rescaled = (backlog as u128 * self.rate as u128 / new_rate as u128) as Nanos;
            self.last_departure = now + rescaled;
        }
        self.rate = new_rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MILLI;

    const PKT: usize = 1500;

    #[test]
    fn first_packet_passes() {
        let mut b = LeakyBucket::new(SEC, 100_000, SEC);
        // At creation last_departure == now, so the gap is zero and the
        // packet is queued one service time out rather than passed.
        match b.offer(SEC, PKT) {
            BucketVerdict::Queued { release_at } => {
                assert_eq!(release_at, SEC + b.service_time(PKT));
            }
            v => panic!("unexpected verdict {v:?}"),
        }
        // After an idle period longer than the service time, packets pass
        // immediately.
        let mut b = LeakyBucket::new(0, 100_000, SEC);
        assert_eq!(b.offer(SEC, PKT), BucketVerdict::Pass);
    }

    #[test]
    fn spacing_matches_rate() {
        // 120 kbps, 1500 B packets => service time 100 ms.
        let mut b = LeakyBucket::new(0, 120_000, 10 * SEC);
        let mut releases = Vec::new();
        for _ in 0..5 {
            match b.offer(SEC, PKT) {
                BucketVerdict::Pass => releases.push(SEC),
                BucketVerdict::Queued { release_at } => {
                    b.released();
                    releases.push(release_at)
                }
                BucketVerdict::Drop => panic!("unexpected drop"),
            }
        }
        // The first departs immediately (1 s of idle credit only covers the
        // gap check, not accumulation), subsequent ones are spaced 100 ms.
        for w in releases.windows(2) {
            assert_eq!(w[1] - w[0], 100 * MILLI, "departures must be spaced by the service time");
        }
    }

    #[test]
    fn no_burst_credit_accumulates() {
        // Unlike a token bucket, a long idle period does not allow a burst:
        // back-to-back packets are still spaced at the service rate.
        let mut b = LeakyBucket::new(0, 120_000, 10 * SEC);
        let now = 100 * SEC;
        assert_eq!(b.offer(now, PKT), BucketVerdict::Pass);
        match b.offer(now, PKT) {
            BucketVerdict::Queued { release_at } => assert_eq!(release_at, now + 100 * MILLI),
            v => panic!("expected queued, got {v:?}"),
        }
    }

    #[test]
    fn excessive_delay_drops() {
        // Max delay 1 s at 120 kbps = at most ~10 queued 1500 B packets.
        let mut b = LeakyBucket::new(0, 120_000, SEC);
        let mut dropped = 0;
        for _ in 0..20 {
            if b.offer(SEC, PKT) == BucketVerdict::Drop {
                dropped += 1;
            }
        }
        assert!(dropped >= 9, "expected most of the burst to be dropped, got {dropped}");
        assert_eq!(b.dropped_pkts(), dropped);
    }

    #[test]
    fn throughput_accounting() {
        let mut b = LeakyBucket::new(0, 1_000_000, SEC);
        b.reset_window(0);
        // Offer 10 x 1500 B over 1 second => 120 kbps measured.
        for i in 0..10 {
            let _ = b.offer(i * 100 * MILLI, PKT);
        }
        let tput = b.throughput(SEC);
        assert!((tput - 120_000.0).abs() < 1_000.0, "throughput {tput}");
        b.reset_window(SEC);
        assert_eq!(b.throughput(2 * SEC), 0.0);
    }

    #[test]
    fn rate_change_rescales_backlog() {
        let mut b = LeakyBucket::new(0, 120_000, 10 * SEC);
        let now = SEC;
        assert_eq!(b.offer(now, PKT), BucketVerdict::Pass);
        let r1 = match b.offer(now, PKT) {
            BucketVerdict::Queued { release_at } => release_at,
            v => panic!("{v:?}"),
        };
        assert_eq!(r1, now + 100 * MILLI);
        // Halving the rate doubles the remaining backlog drain time.
        b.set_rate(now, 60_000);
        let r2 = match b.offer(now, PKT) {
            BucketVerdict::Queued { release_at } => release_at,
            v => panic!("{v:?}"),
        };
        assert_eq!(r2, now + 200 * MILLI + 200 * MILLI);
    }

    proptest::proptest! {
        /// Long-run released throughput never exceeds the configured rate
        /// (the property that defeats on-off burst attacks).
        #[test]
        fn never_exceeds_rate(pkts in proptest::collection::vec((0u64..50 * MILLI, 200usize..1500), 10..200),
                              rate in 50_000u64..2_000_000) {
            let mut b = LeakyBucket::new(0, rate, 10 * SEC);
            let mut now = 0u64;
            let mut last_release = 0u64;
            let mut sent_bits = 0u64;
            for (gap, len) in pkts {
                now += gap;
                match b.offer(now, len) {
                    BucketVerdict::Pass => { sent_bits += len as u64 * 8; last_release = last_release.max(now); }
                    BucketVerdict::Queued { release_at } => {
                        b.released();
                        sent_bits += len as u64 * 8;
                        last_release = last_release.max(release_at);
                    }
                    BucketVerdict::Drop => {}
                }
            }
            if last_release > 0 && sent_bits > 8 * 1500 {
                // Allow one MTU of slack for the first packet.
                let achieved = (sent_bits - 8 * 1500) as f64 * SEC as f64 / last_release as f64;
                proptest::prop_assert!(achieved <= rate as f64 * 1.01,
                    "achieved {achieved} exceeds rate {rate}");
            }
        }
    }
}
