//! Congestion quota (§7 of the paper, an extension borrowed from re-ECN).
//!
//! If legitimate users have limited traffic demand at attack times while
//! attackers persistently congest a bottleneck, the damage of an attack can
//! be weakened further by charging each sender a *congestion quota* per
//! bottleneck link: only a bounded amount of "congestion traffic" — traffic
//! that passes a rate limiter while its rate limit is decreasing — is
//! admitted per accounting period. A persistent flooder exhausts its quota
//! and is throttled; a sender whose traffic avoids links under attack is
//! never charged (the quota is per (sender, bottleneck link), unlike
//! re-ECN's per-sender quota).

use std::collections::HashMap;

use crate::types::{LimiterKey, Nanos};

/// Per-(sender, bottleneck link) congestion-quota accounting.
#[derive(Debug, Clone)]
struct QuotaState {
    /// Congestion bytes charged in the current period.
    used: u64,
    /// Start of the current accounting period.
    period_start: Nanos,
}

/// The congestion-quota policer an access router can stack on top of the
/// per-(sender, bottleneck) rate limiters.
#[derive(Debug)]
pub struct CongestionQuota {
    /// Maximum congestion bytes admitted per period.
    quota_bytes: u64,
    /// Accounting period length.
    period: Nanos,
    state: HashMap<LimiterKey, QuotaState>,
}

impl CongestionQuota {
    /// Create a quota policer: at most `quota_bytes` of congestion traffic
    /// per `period` for each (sender, bottleneck link).
    pub fn new(quota_bytes: u64, period: Nanos) -> Self {
        CongestionQuota { quota_bytes, period, state: HashMap::new() }
    }

    /// Account a packet of `bytes` for `key`.
    ///
    /// `limit_decreasing` is true when the packet passed its rate limiter
    /// while the limiter's rate was being decreased (i.e. while the
    /// bottleneck kept reporting `L↓`) — that is the definition of
    /// congestion traffic in §7. Returns `true` if the packet is admitted,
    /// `false` if the sender has exhausted its quota for this link.
    pub fn admit(
        &mut self,
        now: Nanos,
        key: LimiterKey,
        bytes: usize,
        limit_decreasing: bool,
    ) -> bool {
        let st = self.state.entry(key).or_insert(QuotaState { used: 0, period_start: now });
        if now.saturating_sub(st.period_start) >= self.period {
            st.used = 0;
            st.period_start = now;
        }
        if !limit_decreasing {
            return true;
        }
        if st.used + bytes as u64 > self.quota_bytes {
            return false;
        }
        st.used += bytes as u64;
        true
    }

    /// Remaining quota for a key in the current period.
    pub fn remaining(&self, now: Nanos, key: LimiterKey) -> u64 {
        match self.state.get(&key) {
            None => self.quota_bytes,
            Some(st) => {
                if now.saturating_sub(st.period_start) >= self.period {
                    self.quota_bytes
                } else {
                    self.quota_bytes.saturating_sub(st.used)
                }
            }
        }
    }

    /// Number of (sender, link) pairs currently tracked.
    pub fn tracked(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{HostId, LinkId, SEC};

    fn key(src: u32, link: u32) -> LimiterKey {
        LimiterKey { src: HostId(src), link: LinkId(link) }
    }

    #[test]
    fn non_congestion_traffic_is_never_charged() {
        let mut q = CongestionQuota::new(10_000, 60 * SEC);
        for i in 0..1000 {
            assert!(q.admit(i * SEC / 100, key(1, 9), 1500, false));
        }
        assert_eq!(q.remaining(10 * SEC, key(1, 9)), 10_000);
    }

    #[test]
    fn persistent_flooder_exhausts_quota() {
        let mut q = CongestionQuota::new(10_000, 60 * SEC);
        let mut admitted = 0;
        for i in 0..100 {
            if q.admit(i, key(1, 9), 1500, true) {
                admitted += 1;
            }
        }
        // 10 kB quota / 1500 B packets = 6 packets.
        assert_eq!(admitted, 6);
        assert_eq!(q.remaining(0, key(1, 9)), 10_000 - 6 * 1500);
    }

    #[test]
    fn quota_resets_each_period() {
        let mut q = CongestionQuota::new(3_000, 10 * SEC);
        assert!(q.admit(0, key(1, 9), 1500, true));
        assert!(q.admit(1, key(1, 9), 1500, true));
        assert!(!q.admit(2, key(1, 9), 1500, true));
        // Next period: quota restored.
        assert!(q.admit(11 * SEC, key(1, 9), 1500, true));
        assert_eq!(q.remaining(11 * SEC, key(1, 9)), 1_500);
    }

    #[test]
    fn quota_is_per_sender_and_per_link() {
        let mut q = CongestionQuota::new(1_500, 60 * SEC);
        assert!(q.admit(0, key(1, 9), 1500, true));
        assert!(!q.admit(1, key(1, 9), 1500, true));
        // A different link of the same sender, and a different sender on the
        // same link, are unaffected.
        assert!(q.admit(2, key(1, 10), 1500, true));
        assert!(q.admit(3, key(2, 9), 1500, true));
        assert_eq!(q.tracked(), 3);
    }
}
