//! Offline stand-in for the subset of the [proptest](https://docs.rs/proptest)
//! API used by the netfence test suites.
//!
//! The build environment has no network access to crates.io, so the real
//! proptest crate cannot be fetched. This shim keeps the property tests
//! compiling and running with the same source code: each `proptest!` test
//! runs a fixed number of deterministic pseudo-random cases (seeded from the
//! test's module path, so failures reproduce across runs). It implements:
//!
//! * the [`proptest!`] macro with `pat in strategy` and `ident: Type`
//!   parameters;
//! * range strategies (`lo..hi`, `lo..` for the integer types and `f64`),
//!   tuple strategies, [`prelude::any`] and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! No shrinking is performed — a failing case panics with the generated
//! values bound in scope, which the deterministic seeding makes
//! reproducible.

#![forbid(unsafe_code)]

/// Deterministic case generation driving the [`proptest!`] macro.
pub mod test_runner {
    /// Cases per property (the real proptest's default).
    pub const CASES: u64 = 256;

    /// A small deterministic RNG (xorshift64*), seeded per (test, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one named test.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1 };
            // Warm up so nearby seeds decorrelate.
            rng.next_u64();
            rng.next_u64();
            rng
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies (a tiny subset of proptest's `Strategy`).
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeFrom};

    /// Something that can generate values for a property test case.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Wrapping: for a 64-bit-wide type starting at 0 the span
                    // (MAX - 0 + 1) does not fit in u64 and wraps to exactly
                    // 0, which the fallback below handles.
                    let span =
                        (<$t>::MAX as u64).wrapping_sub(self.start as u64).wrapping_add(1);
                    if span == 0 {
                        rng.next_u64() as $t
                    } else {
                        self.start.wrapping_add(rng.below(span) as $t)
                    }
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, usize);

    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.below(self.end - self.start)
        }
    }
    impl Strategy for RangeFrom<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            let span = u64::MAX - self.start;
            if span == u64::MAX {
                rng.next_u64()
            } else {
                self.start + rng.below(span + 1)
            }
        }
    }

    impl Strategy for Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty range");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add(rng.below(span) as i64)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit()
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    /// The strategy returned by [`any`](super::prelude::any).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// The `any::<T>()` strategy.
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly imported names.
pub mod prelude {
    pub use super::strategy::{Any, Arbitrary, Strategy};

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

/// Assert inside a property (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Only usable directly inside a `proptest!` body (which runs in a closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests. Each function runs
/// [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::__proptest_parse!{
            meta=[$(#[$meta])*] name=$name bindings=[] params=[$($params)*] body=$body
        }
        $crate::proptest!{ $($rest)* }
    };
}

/// Internal parameter-list muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    // `pat in strategy, rest…`
    (meta=[$($meta:tt)*] name=$name:ident bindings=[$($b:tt)*]
     params=[$pat:pat_param in $strat:expr, $($rest:tt)*] body=$body:tt) => {
        $crate::__proptest_parse!{
            meta=[$($meta)*] name=$name bindings=[$($b)* [$pat, ($strat)]]
            params=[$($rest)*] body=$body
        }
    };
    // `pat in strategy` (final)
    (meta=[$($meta:tt)*] name=$name:ident bindings=[$($b:tt)*]
     params=[$pat:pat_param in $strat:expr] body=$body:tt) => {
        $crate::__proptest_parse!{
            meta=[$($meta)*] name=$name bindings=[$($b)* [$pat, ($strat)]]
            params=[] body=$body
        }
    };
    // `ident: Type, rest…` — sugar for `ident in any::<Type>()`
    (meta=[$($meta:tt)*] name=$name:ident bindings=[$($b:tt)*]
     params=[$id:ident : $ty:ty, $($rest:tt)*] body=$body:tt) => {
        $crate::__proptest_parse!{
            meta=[$($meta)*] name=$name
            bindings=[$($b)* [$id, ($crate::prelude::any::<$ty>())]]
            params=[$($rest)*] body=$body
        }
    };
    // `ident: Type` (final)
    (meta=[$($meta:tt)*] name=$name:ident bindings=[$($b:tt)*]
     params=[$id:ident : $ty:ty] body=$body:tt) => {
        $crate::__proptest_parse!{
            meta=[$($meta)*] name=$name
            bindings=[$($b)* [$id, ($crate::prelude::any::<$ty>())]]
            params=[] body=$body
        }
    };
    // Done: emit the test function.
    (meta=[$($meta:tt)*] name=$name:ident bindings=[$([$pat:pat_param, $strat:expr])*]
     params=[] body=$body:block) => {
        $($meta)*
        fn $name() {
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..$crate::test_runner::CASES {
                let mut __rng = $crate::test_runner::TestRng::for_case(__test_name, __case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                )*
                // The closure gives `prop_assume!` an early-exit for this
                // case without aborting the whole loop.
                let mut __one_case = || -> () { $body };
                __one_case();
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    crate::proptest! {
        /// Ranges stay in bounds; typed args generate; tuples and vecs work.
        #[test]
        fn shim_generates_in_bounds(x in 5u64..50, flag: bool,
                                    pair in (0u32..4, 0.0f64..1.0),
                                    bytes in crate::collection::vec(any::<u8>(), 1..16)) {
            crate::prop_assert!((5..50).contains(&x));
            crate::prop_assert!(pair.0 < 4);
            crate::prop_assert!((0.0..1.0).contains(&pair.1));
            crate::prop_assert!(!bytes.is_empty() && bytes.len() < 16);
            let _ = flag;
        }

        #[test]
        fn assume_skips_cases(v in 0u32..10) {
            crate::prop_assume!(v % 2 == 0);
            crate::prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let a = TestRng::for_case("t", 3).next_u64();
        let b = TestRng::for_case("t", 3).next_u64();
        let c = TestRng::for_case("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_from_generates_at_or_above_start() {
        let mut rng = TestRng::for_case("range_from", 0);
        use crate::strategy::Strategy;
        for _ in 0..1000 {
            assert!((1u32..).generate(&mut rng) >= 1);
            assert!((1u64..).generate(&mut rng) >= 1);
            // Full-width ranges must not overflow the span computation even
            // in debug builds (usize is 64-bit here, u64 always).
            let _ = (0usize..).generate(&mut rng);
            let _ = (0u64..).generate(&mut rng);
        }
    }
}
