//! The declarative strategy vocabulary.

use netfence_sim::flow::Flow;
use netfence_sim::packet::{FlowId, HostAddr};
use netfence_sim::time::{Nanos, SEC};

use crate::agent::AdversaryFlow;
use crate::ctx::StrategyCtx;

/// A fixed attack load — the legacy `TrafficSpec` attacker behaviors,
/// wrapped so [`AttackStrategy::Static`] can reproduce them byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackLoad {
    /// Constant-bit-rate UDP flood.
    Cbr {
        /// Sending rate, bits per second.
        rate_bps: u64,
    },
    /// Synchronized on-off UDP bursts (§5.2.1).
    OnOff {
        /// Burst rate, bits per second.
        rate_bps: u64,
        /// Burst length.
        on: Nanos,
        /// Silence length.
        off: Nanos,
    },
}

/// How a [`AttackStrategy::Shrew`] agent times its pulses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShrewTiming {
    /// Tune the duty cycle to the defense's AIMD control interval from the
    /// [`StrategyCtx`]: one burst of `Ilim/4` per control interval, so
    /// every interval observes congestion (and decreases the rate limit)
    /// while the attacker's average rate stays at a quarter of its burst
    /// rate.
    Tuned,
    /// Explicit pulse timing — the degenerate wrapper for figure scenarios
    /// that sweep `Ton`/`Toff` themselves.
    Fixed {
        /// Burst length.
        on: Nanos,
        /// Silence length.
        off: Nanos,
    },
}

impl ShrewTiming {
    /// Resolve to a concrete `(on, off)` pair against `aimd_interval`.
    pub fn resolve(&self, aimd_interval: Nanos) -> (Nanos, Nanos) {
        match *self {
            ShrewTiming::Tuned => {
                let ilim = aimd_interval.max(4);
                (ilim / 4, ilim - ilim / 4)
            }
            ShrewTiming::Fixed { on, off } => (on, off),
        }
    }
}

/// One attacker strategy: what a stateful attack agent does over the run.
///
/// Strategies are pure descriptions (`Copy`, comparable, hashable into
/// sweep grids); [`AttackStrategy::build_flow`] instantiates the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStrategy {
    /// A fixed load for the whole run — exactly the legacy attacker spec.
    Static(AttackLoad),
    /// Low-rate shrew pulses tuned to the rate limiter's AIMD period.
    Shrew {
        /// Burst rate, bits per second.
        rate_bps: u64,
        /// Pulse timing.
        timing: ShrewTiming,
    },
    /// Shift the flood across the scenario's attack-target ring — on a
    /// multi-bottleneck mesh that moves the full attack force from one
    /// bottleneck to the next every `dwell`, faster than a per-bottleneck
    /// defense converges.
    Rolling {
        /// Flood rate, bits per second.
        rate_bps: u64,
        /// Time spent on each target before moving on.
        dwell: Nanos,
    },
    /// Probe the deployed defense: cycle through candidate loads for one
    /// `epoch` each while measuring own delivered bytes, then commit to the
    /// candidate the defense handled worst (most attacker bytes through) —
    /// colluding flood vs NetFence, filter churn vs TTL'd StopIt filters,
    /// plain flood when nothing engages.
    Probe {
        /// Flood rate of every candidate, bits per second.
        rate_bps: u64,
        /// Measurement window per candidate.
        epoch: Nanos,
    },
    /// Mimic a legitimate flash crowd: a staircase ramp up to `peak_bps`,
    /// a hold, and a symmetric decay, repeating, with per-agent start
    /// jitter drawn from the agent's dedicated RNG stream.
    FlashMimic {
        /// Peak surge rate, bits per second.
        peak_bps: u64,
        /// Ramp-up (and ramp-down) duration.
        ramp: Nanos,
        /// Time spent at the peak (and in the trough).
        hold: Nanos,
    },
}

impl AttackStrategy {
    /// A static constant-bit-rate flood at `rate_bps`.
    pub fn static_cbr(rate_bps: u64) -> Self {
        AttackStrategy::Static(AttackLoad::Cbr { rate_bps })
    }

    /// A static synchronized on-off load.
    pub fn static_on_off(rate_bps: u64, on: Nanos, off: Nanos) -> Self {
        AttackStrategy::Static(AttackLoad::OnOff { rate_bps, on, off })
    }

    /// A shrew tuned to the defense's AIMD interval.
    pub fn shrew_tuned(rate_bps: u64) -> Self {
        AttackStrategy::Shrew { rate_bps, timing: ShrewTiming::Tuned }
    }

    /// A shrew with explicit pulse timing.
    pub fn shrew_fixed(rate_bps: u64, on: Nanos, off: Nanos) -> Self {
        AttackStrategy::Shrew { rate_bps, timing: ShrewTiming::Fixed { on, off } }
    }

    /// The canonical tournament lineup: one representative of each
    /// strategy family at a common per-attacker rate.
    pub fn lineup(rate_bps: u64) -> Vec<AttackStrategy> {
        vec![
            AttackStrategy::static_cbr(rate_bps),
            AttackStrategy::shrew_tuned(rate_bps),
            AttackStrategy::Rolling { rate_bps, dwell: 5 * SEC },
            AttackStrategy::Probe { rate_bps, epoch: 3 * SEC },
            AttackStrategy::FlashMimic { peak_bps: 4 * rate_bps, ramp: 4 * SEC, hold: 4 * SEC },
        ]
    }

    /// Short display name for tables and bench ids.
    pub fn label(&self) -> &'static str {
        match self {
            AttackStrategy::Static(AttackLoad::Cbr { .. }) => "static-cbr",
            AttackStrategy::Static(AttackLoad::OnOff { .. }) => "static-onoff",
            AttackStrategy::Shrew { .. } => "shrew",
            AttackStrategy::Rolling { .. } => "rolling",
            AttackStrategy::Probe { .. } => "probe",
            AttackStrategy::FlashMimic { .. } => "flash-mimic",
        }
    }

    /// Instantiate the stateful agent for one attacker: `src` floods `dst`
    /// (the scenario's resolved target for this member) under this
    /// strategy, with everything else resolved from `ctx`.
    pub fn build_flow(
        &self,
        id: FlowId,
        src: HostAddr,
        dst: HostAddr,
        ctx: StrategyCtx,
    ) -> Box<dyn Flow> {
        Box::new(AdversaryFlow::new(id, src, dst, *self, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_shrew_fits_one_burst_per_control_interval() {
        let (on, off) = ShrewTiming::Tuned.resolve(2 * SEC);
        assert_eq!(on, SEC / 2);
        assert_eq!(on + off, 2 * SEC);
        let (on, off) = ShrewTiming::Fixed { on: SEC, off: 3 * SEC }.resolve(2 * SEC);
        assert_eq!((on, off), (SEC, 3 * SEC));
    }

    #[test]
    fn lineup_covers_all_five_families() {
        let lineup = AttackStrategy::lineup(1_000_000);
        let labels: Vec<&str> = lineup.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["static-cbr", "shrew", "rolling", "probe", "flash-mimic"]);
    }
}
