//! The stateful attack agent: a [`Flow`] that retunes an inner UDP sender
//! from control timers driven by the simulation clock.

use netfence_sim::flow::{Flow, FlowActions, FlowProgress};
use netfence_sim::packet::{FlowId, HostAddr, Packet};
use netfence_sim::rng::SimRng;
use netfence_sim::time::Nanos;
use netfence_sim::udp::{UdpFlow, UdpPattern};

use crate::ctx::StrategyCtx;
use crate::strategy::{AttackLoad, AttackStrategy};

/// Control-timer token space. The inner [`UdpFlow`] uses small tokens
/// (send/echo); everything at or above this value belongs to the agent.
const TOKEN_CTRL: u64 = 1_000;

/// Staircase steps of a flash-mimic ramp.
const FLASH_STEPS: u64 = 8;

/// One probing candidate: a load the [`AttackStrategy::Probe`] agent tries
/// for an epoch before committing to the most effective one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeMode {
    /// Plain constant flood at the victim — wins when no closed loop
    /// engages (or only stateless fair queuing does).
    FloodVictim,
    /// Constant flood at the paired colluding receiver — NetFence's worst
    /// case: the colluder keeps echoing feedback, so only congestion
    /// policing limits the flow.
    FloodColluder,
    /// On-off churn at the victim, paced by the AIMD interval — exercises
    /// TTL'd filter stores (StopIt) that must re-install state after every
    /// quiet period.
    ChurnVictim,
}

/// Where a flash-mimic surge currently is in its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlashStage {
    /// Waiting out the per-agent start jitter.
    Jitter,
    /// Step `k` of the ramp up.
    RampUp(u64),
    /// Holding at the peak.
    Hold,
    /// Step `k` of the ramp down.
    RampDown(u64),
    /// Resting at the trough rate.
    Trough,
}

/// The strategy-specific agent state.
#[derive(Debug)]
enum Plan {
    /// The inner flow already implements the whole strategy (static loads,
    /// fixed shrew pulses): pure delegation, no control timers, and
    /// therefore byte-identical behavior to the legacy flow spec.
    Passive,
    /// Walk the target ring every `dwell`.
    Rolling { dwell: Nanos, pos: usize },
    /// Try each candidate for `epoch`, then commit to the best.
    Probe {
        epoch: Nanos,
        candidates: Vec<ProbeMode>,
        phase: usize,
        scores: Vec<u64>,
        /// Delivered-bytes watermark at the start of the current epoch.
        mark: u64,
    },
    /// Ramp → hold → decay → trough, repeating.
    Flash { peak_bps: u64, ramp: Nanos, hold: Nanos, stage: FlashStage },
}

/// An adaptive attacker: wraps an inner [`UdpFlow`] and retunes its rate,
/// duty cycle and destination from control timers, per the chosen
/// [`AttackStrategy`]. All randomness comes from the agent's own [`SimRng`]
/// stream seeded via [`StrategyCtx::seed`].
#[derive(Debug)]
pub struct AdversaryFlow {
    inner: UdpFlow,
    plan: Plan,
    rng: SimRng,
    ctx: StrategyCtx,
    /// Nominal per-attacker rate (burst rate for pulsed strategies).
    rate_bps: u64,
}

impl AdversaryFlow {
    /// Build the agent for one attacker flow: `src` attacks `dst` (the
    /// scenario's resolved target for this member) under `strategy`.
    pub fn new(
        id: FlowId,
        src: HostAddr,
        dst: HostAddr,
        strategy: AttackStrategy,
        ctx: StrategyCtx,
    ) -> Self {
        let rng = SimRng::new(ctx.seed);
        let (inner, plan, rate_bps) = match strategy {
            AttackStrategy::Static(AttackLoad::Cbr { rate_bps }) => {
                (UdpFlow::cbr(id, src, dst, rate_bps), Plan::Passive, rate_bps)
            }
            AttackStrategy::Static(AttackLoad::OnOff { rate_bps, on, off }) => (
                UdpFlow::new(id, src, dst, rate_bps, UdpPattern::OnOff { on, off }),
                Plan::Passive,
                rate_bps,
            ),
            AttackStrategy::Shrew { rate_bps, timing } => {
                let (on, off) = timing.resolve(ctx.aimd_interval);
                (
                    UdpFlow::new(id, src, dst, rate_bps, UdpPattern::OnOff { on, off }),
                    Plan::Passive,
                    rate_bps,
                )
            }
            AttackStrategy::Rolling { rate_bps, dwell } => (
                UdpFlow::cbr(id, src, dst, rate_bps),
                Plan::Rolling { dwell: dwell.max(1), pos: ctx.ring_position(dst) },
                rate_bps,
            ),
            AttackStrategy::Probe { rate_bps, epoch } => {
                let mut candidates = vec![ProbeMode::FloodVictim];
                if ctx.colluder.is_some() {
                    candidates.push(ProbeMode::FloodColluder);
                }
                candidates.push(ProbeMode::ChurnVictim);
                let scores = vec![0; candidates.len()];
                (
                    UdpFlow::cbr(id, src, ctx.victim, rate_bps),
                    Plan::Probe { epoch: epoch.max(1), candidates, phase: 0, scores, mark: 0 },
                    rate_bps,
                )
            }
            AttackStrategy::FlashMimic { peak_bps, ramp, hold } => {
                let peak_bps = peak_bps.max(FLASH_STEPS);
                (
                    UdpFlow::cbr(id, src, dst, trough_rate(peak_bps)),
                    Plan::Flash {
                        peak_bps,
                        ramp: ramp.max(FLASH_STEPS),
                        hold: hold.max(1),
                        stage: FlashStage::Jitter,
                    },
                    peak_bps,
                )
            }
        };
        AdversaryFlow { inner, plan, rng, ctx, rate_bps }
    }

    /// Retune the inner flow to one probing candidate.
    fn apply_probe_mode(&mut self, now: Nanos, mode: ProbeMode) {
        let rate = self.rate_bps;
        match mode {
            ProbeMode::FloodVictim => {
                self.inner.set_dst(self.ctx.victim);
                self.inner.set_pattern(now, UdpPattern::Constant);
                self.inner.set_rate_bps(rate);
            }
            ProbeMode::FloodColluder => {
                let colluder = self.ctx.colluder.unwrap_or(self.ctx.victim);
                self.inner.set_dst(colluder);
                self.inner.set_pattern(now, UdpPattern::Constant);
                self.inner.set_rate_bps(rate);
            }
            ProbeMode::ChurnVictim => {
                let ilim = self.ctx.aimd_interval.max(2);
                self.inner.set_dst(self.ctx.victim);
                self.inner.set_pattern(now, UdpPattern::OnOff { on: ilim / 2, off: 2 * ilim });
                self.inner.set_rate_bps(rate);
            }
        }
    }

    /// Handle one control tick; returns the follow-up timer, if any.
    fn control_tick(&mut self, now: Nanos) -> Option<Nanos> {
        match &mut self.plan {
            Plan::Passive => None,
            Plan::Rolling { dwell, pos } => {
                *pos = (*pos + 1) % self.ctx.ring.len();
                let next = self.ctx.ring[*pos];
                let again = now + *dwell;
                self.inner.set_dst(next);
                Some(again)
            }
            Plan::Probe { epoch, candidates, phase, scores, mark } => {
                let delivered = self.inner.progress().delivered_bytes;
                scores[*phase] = delivered.saturating_sub(*mark);
                *mark = delivered;
                *phase += 1;
                if *phase < candidates.len() {
                    let (mode, epoch) = (candidates[*phase], *epoch);
                    self.apply_probe_mode(now, mode);
                    Some(now + epoch)
                } else {
                    // Commit: the candidate that pushed the most attacker
                    // bytes through is the one this defense handles worst.
                    // Ties break toward the earliest candidate, so the
                    // decision is deterministic.
                    let best = scores
                        .iter()
                        .enumerate()
                        .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    let mode = candidates[best];
                    self.apply_probe_mode(now, mode);
                    None
                }
            }
            Plan::Flash { peak_bps, ramp, hold, stage } => {
                let step = (*ramp / FLASH_STEPS).max(1);
                let (rate, next_stage, delay) = match *stage {
                    FlashStage::Jitter | FlashStage::Trough => {
                        (*peak_bps / FLASH_STEPS, FlashStage::RampUp(1), step)
                    }
                    FlashStage::RampUp(k) if k < FLASH_STEPS => {
                        (*peak_bps * (k + 1) / FLASH_STEPS, FlashStage::RampUp(k + 1), step)
                    }
                    FlashStage::RampUp(_) => (*peak_bps, FlashStage::Hold, *hold),
                    FlashStage::Hold => {
                        (*peak_bps * (FLASH_STEPS - 1) / FLASH_STEPS, FlashStage::RampDown(1), step)
                    }
                    FlashStage::RampDown(k) if k < FLASH_STEPS - 1 => (
                        *peak_bps * (FLASH_STEPS - 1 - k) / FLASH_STEPS,
                        FlashStage::RampDown(k + 1),
                        step,
                    ),
                    FlashStage::RampDown(_) => (trough_rate(*peak_bps), FlashStage::Trough, *hold),
                };
                *stage = next_stage;
                self.inner.set_rate_bps(rate);
                Some(now + delay)
            }
        }
    }
}

/// The resting rate between flash surges.
fn trough_rate(peak_bps: u64) -> u64 {
    (peak_bps / 16).max(1)
}

impl Flow for AdversaryFlow {
    fn id(&self) -> FlowId {
        self.inner.id()
    }
    fn src(&self) -> HostAddr {
        self.inner.src()
    }
    fn dst(&self) -> HostAddr {
        self.inner.dst()
    }

    fn start(&mut self, now: Nanos) -> FlowActions {
        let mut actions = self.inner.start(now);
        match &self.plan {
            Plan::Passive => {}
            Plan::Rolling { dwell, .. } => {
                actions.timers.push((now + *dwell, TOKEN_CTRL));
            }
            Plan::Probe { epoch, candidates, .. } => {
                let (mode, epoch) = (candidates[0], *epoch);
                self.apply_probe_mode(now, mode);
                actions.timers.push((now + epoch, TOKEN_CTRL));
            }
            Plan::Flash { ramp, .. } => {
                // Per-agent start jitter from the dedicated RNG stream:
                // real flash crowds do not surge in lockstep.
                let jitter = self.rng.uniform_time(0, (*ramp / 4).max(1));
                actions.timers.push((now + jitter, TOKEN_CTRL));
            }
        }
        actions
    }

    fn on_packet(&mut self, now: Nanos, pkt: &Packet, at_host: HostAddr) -> FlowActions {
        self.inner.on_packet(now, pkt, at_host)
    }

    fn on_timer(&mut self, now: Nanos, token: u64) -> FlowActions {
        if token >= TOKEN_CTRL {
            let mut actions = FlowActions::none();
            if let Some(at) = self.control_tick(now) {
                actions.timers.push((at, TOKEN_CTRL));
            }
            actions
        } else {
            self.inner.on_timer(now, token)
        }
    }

    fn progress(&self) -> FlowProgress {
        self.inner.progress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::time::SEC;

    /// Drive an agent's own timers without a network, recording every
    /// emitted packet as `(time, dst, size)` and, optionally, looping each
    /// packet straight back to its destination ("ideal delivery").
    fn drive(f: &mut AdversaryFlow, until: Nanos, deliver: bool) -> Vec<(Nanos, HostAddr, usize)> {
        let mut timers = f.start(0).timers;
        let mut sent = Vec::new();
        while let Some(pos) = timers.iter().enumerate().min_by_key(|(_, (t, _))| *t).map(|(i, _)| i)
        {
            let (now, tok) = timers.remove(pos);
            if now > until {
                break;
            }
            let acts = f.on_timer(now, tok);
            for pkt in &acts.packets {
                // Record only forward packets; the receiver-side feedback
                // echo travels dst→src and is not attack traffic.
                if pkt.src != f.src() {
                    continue;
                }
                sent.push((now, pkt.dst, pkt.size));
                if deliver {
                    let echo = f.on_packet(now, pkt, pkt.dst);
                    timers.extend(echo.timers);
                }
            }
            timers.extend(acts.timers);
        }
        sent
    }

    fn ctx(seed: u64) -> StrategyCtx {
        let mut c = StrategyCtx::for_victim(seed, 100);
        c.colluder = Some(200);
        c.ring = vec![100, 300, 400];
        c
    }

    #[test]
    fn static_cbr_matches_plain_udpflow_exactly() {
        let mut plain = UdpFlow::cbr(0, 1, 100, 1_000_000);
        let mut agent =
            AdversaryFlow::new(0, 1, 100, AttackStrategy::static_cbr(1_000_000), ctx(7));
        // Same timers, same packets, no control timers at all.
        let mut t_plain = plain.start(0).timers;
        let t_agent = agent.start(0).timers;
        assert_eq!(t_plain, t_agent);
        for _ in 0..50 {
            let (at, tok) = t_plain.remove(0);
            let a = plain.on_timer(at, tok);
            let b = agent.on_timer(at, tok);
            assert_eq!(a.packets.len(), b.packets.len());
            assert_eq!(a.timers, b.timers);
            t_plain = a.timers;
        }
        assert_eq!(plain.progress(), agent.progress());
    }

    #[test]
    fn shrew_tuned_pulses_once_per_aimd_interval() {
        let mut agent = AdversaryFlow::new(0, 1, 100, AttackStrategy::shrew_tuned(1_000_000), {
            let mut c = ctx(7);
            c.aimd_interval = 2 * SEC;
            c
        });
        let sent = drive(&mut agent, 10 * SEC, false);
        assert!(!sent.is_empty());
        // Every packet lands in the first quarter of a 2 s cycle.
        for (at, _, _) in &sent {
            assert!(at % (2 * SEC) < SEC / 2, "packet outside the tuned burst at {at}");
        }
    }

    #[test]
    fn rolling_walks_the_target_ring() {
        let strategy = AttackStrategy::Rolling { rate_bps: 1_000_000, dwell: SEC };
        let mut agent = AdversaryFlow::new(0, 1, 100, strategy, ctx(7));
        let sent = drive(&mut agent, (3 * SEC) + SEC / 2, false);
        let dsts: Vec<HostAddr> = sent.iter().map(|&(_, d, _)| d).collect();
        // First second at the spawn target, then one ring hop per dwell,
        // wrapping back to the start.
        assert!(dsts.contains(&100) && dsts.contains(&300) && dsts.contains(&400));
        let last = sent.last().unwrap();
        assert_eq!(last.1, 100, "the ring wraps around");
    }

    #[test]
    fn probe_commits_to_the_highest_scoring_candidate() {
        let strategy = AttackStrategy::Probe { rate_bps: 1_000_000, epoch: SEC };
        let mut agent = AdversaryFlow::new(0, 1, 100, strategy, ctx(7));
        // Ideal delivery: every candidate scores, the plain victim flood
        // delivers the most (churn idles 80% of the time), so the agent
        // commits to flooding the victim.
        let sent = drive(&mut agent, 20 * SEC, true);
        let tail: Vec<&(Nanos, HostAddr, usize)> =
            sent.iter().filter(|&&(at, _, _)| at > 10 * SEC).collect();
        assert!(!tail.is_empty());
        assert!(tail.iter().all(|&&(_, d, _)| d == 100), "committed to the victim flood");
        // During probing the colluder was tried too.
        assert!(sent.iter().any(|&(_, d, _)| d == 200));
    }

    #[test]
    fn flash_mimic_ramps_to_peak_and_decays() {
        let strategy = AttackStrategy::FlashMimic { peak_bps: 8_000_000, ramp: 2 * SEC, hold: SEC };
        let mut agent = AdversaryFlow::new(0, 1, 100, strategy, ctx(7));
        let sent = drive(&mut agent, 8 * SEC, false);
        // Bucket packet counts per half second: the surge makes some
        // buckets far denser than the trough ones.
        let mut buckets = [0u32; 16];
        for &(at, _, _) in &sent {
            buckets[(at / (SEC / 2)).min(15) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        assert!(max >= 8 * min.max(1), "no surge shape: buckets {buckets:?}");
    }

    #[test]
    fn flash_jitter_comes_from_the_dedicated_stream() {
        let strategy = AttackStrategy::FlashMimic { peak_bps: 8_000_000, ramp: 4 * SEC, hold: SEC };
        let a = AdversaryFlow::new(0, 1, 100, strategy, ctx(1)).start(0).timers;
        let b = AdversaryFlow::new(0, 1, 100, strategy, ctx(2)).start(0).timers;
        let c = AdversaryFlow::new(0, 1, 100, strategy, ctx(1)).start(0).timers;
        let ctrl = |ts: &Vec<(Nanos, u64)>| {
            ts.iter().find(|(_, tok)| *tok >= TOKEN_CTRL).map(|&(at, _)| at).unwrap()
        };
        assert_eq!(ctrl(&a), ctrl(&c), "same seed, same jitter");
        assert_ne!(ctrl(&a), ctrl(&b), "different seeds jitter differently");
    }
}
