//! # netfence-adversary
//!
//! The adaptive attacker strategy library: attackers as *stateful agents*
//! driven by the simulation clock, instead of fixed-rate flow specs.
//!
//! The paper's robustness claims (§5, §6.3) are only as strong as the
//! attackers a defense faces. This crate upgrades the evaluation's attack
//! vocabulary from "flood, on-off, collude" to a library of strategies
//! ([`AttackStrategy`]) that adapt over the run:
//!
//! * [`AttackStrategy::Static`] — wraps the legacy fixed loads (CBR /
//!   synchronized on-off) with byte-identical behavior, so every pre-existing
//!   scenario is a degenerate strategy;
//! * [`AttackStrategy::Shrew`] — on-off pulses tuned to the rate limiter's
//!   AIMD control interval (`Ilim`), the classic low-rate shrew attack;
//! * [`AttackStrategy::Rolling`] — shifts the flood across the chained
//!   bottlenecks of a multi-bottleneck mesh on a fixed schedule;
//! * [`AttackStrategy::Probe`] — observes its *own* goodput, infers which
//!   closed-loop defense engaged, and commits to the candidate load the
//!   defense handled worst (colluding flood vs NetFence, filter churn vs
//!   TTL'd StopIt filters);
//! * [`AttackStrategy::FlashMimic`] — ramps like a legitimate flash crowd,
//!   with per-flow jitter from the agent's dedicated RNG stream.
//!
//! Every agent draws randomness only from its own [`SimRng`] stream (the
//! seed arrives via [`StrategyCtx`]), so the choice of attacker strategy can
//! never perturb legitimate-flow arrivals.
//!
//! The agent itself is [`AdversaryFlow`]: a [`Flow`] wrapping an inner
//! [`UdpFlow`] it retunes (rate, duty cycle, destination) from control
//! timers. A strategy that never retunes — `Static`, fixed-timing `Shrew` —
//! is pure delegation and reproduces the legacy records byte-for-byte.
//!
//! [`Flow`]: netfence_sim::flow::Flow
//! [`UdpFlow`]: netfence_sim::udp::UdpFlow
//! [`SimRng`]: netfence_sim::rng::SimRng

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod ctx;
pub mod strategy;

pub use agent::AdversaryFlow;
pub use ctx::StrategyCtx;
pub use strategy::{AttackLoad, AttackStrategy, ShrewTiming};

/// Commonly used re-exports.
pub mod prelude {
    pub use crate::agent::AdversaryFlow;
    pub use crate::ctx::StrategyCtx;
    pub use crate::strategy::{AttackLoad, AttackStrategy, ShrewTiming};
}
