//! The per-agent context a strategy is instantiated with.

use netfence_sim::packet::HostAddr;
use netfence_sim::time::{Nanos, SEC};

/// Everything one attack agent knows about the scenario it runs in,
/// resolved by the experiment runner at spawn time.
///
/// The context is what makes strategies *portable* across topologies: a
/// strategy never hard-codes addresses or defense parameters — it reads the
/// victim, its assigned colluder, the ring of per-group attack targets (for
/// rolling across bottlenecks) and the defense's AIMD control interval (for
/// shrew tuning) from here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyCtx {
    /// Seed of this agent's dedicated RNG stream. Derived by the runner
    /// from an attacker-only substream of the scenario seed, so attacker
    /// count and strategy choice never perturb legitimate flows.
    pub seed: u64,
    /// This agent's index within its role group (drives per-member
    /// assignments such as colluder pairing).
    pub member: usize,
    /// The victim destination of the agent's group.
    pub victim: HostAddr,
    /// The colluding receiver paired with this agent, when the topology
    /// provides one.
    pub colluder: Option<HostAddr>,
    /// The attack destinations of *all* groups in spawn order, deduplicated
    /// — the ring a [`Rolling`](crate::AttackStrategy::Rolling) agent walks
    /// to shift the flood across bottlenecks. Always non-empty.
    pub ring: Vec<HostAddr>,
    /// The rate limiter's AIMD control interval (`Ilim` in the paper's
    /// Figure 3), the period shrew pulses tune themselves to.
    pub aimd_interval: Nanos,
}

impl StrategyCtx {
    /// A minimal context targeting only `victim` — used by tests and by
    /// callers outside the experiment runner.
    pub fn for_victim(seed: u64, victim: HostAddr) -> Self {
        StrategyCtx {
            seed,
            member: 0,
            victim,
            colluder: None,
            ring: vec![victim],
            aimd_interval: 2 * SEC,
        }
    }

    /// The ring position of `dst`, or 0 when `dst` is not a ring member.
    pub fn ring_position(&self, dst: HostAddr) -> usize {
        self.ring.iter().position(|&t| t == dst).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_context_targets_the_victim() {
        let ctx = StrategyCtx::for_victim(7, 42);
        assert_eq!(ctx.victim, 42);
        assert_eq!(ctx.ring, vec![42]);
        assert_eq!(ctx.colluder, None);
        assert_eq!(ctx.aimd_interval, 2 * SEC);
    }

    #[test]
    fn ring_position_defaults_to_zero() {
        let mut ctx = StrategyCtx::for_victim(7, 42);
        ctx.ring = vec![10, 20, 30];
        assert_eq!(ctx.ring_position(20), 1);
        assert_eq!(ctx.ring_position(99), 0);
    }
}
