//! Offline stand-in for the subset of the [criterion](https://docs.rs/criterion)
//! 0.5 API that `netfence-bench` uses.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion crate cannot be fetched. This shim keeps every bench target
//! compiling and runnable (`cargo bench` prints a mean-time table) with the
//! same source code, so swapping the workspace dependency back to the real
//! criterion needs no bench changes. It implements:
//!
//! * [`Criterion`], [`Criterion::benchmark_group`];
//! * [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::measurement_time`],
//!   [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::finish`];
//! * [`Criterion::bench_function`];
//! * [`Bencher::iter`];
//! * the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each bench function is warmed up once, then timed over
//! `sample_size` samples (default 10) or until `measurement_time` elapses,
//! whichever comes first; the mean ns/iter is printed. This is deliberately
//! much cheaper than real criterion (no outlier analysis, no HTML reports) —
//! good enough for the relative comparisons the figures need.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (shim).
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10, default_measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        };
        println!("\n{}", group.name);
        group
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        run_one("", id, sample_size, measurement_time, f);
        self
    }
}

/// A group of related benchmarks sharing sampling settings (shim).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Cap the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, self.measurement_time, f);
        self
    }

    /// End the group (no-op in the shim; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Times the closure handed to [`Bencher::iter`] (shim).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up + calibration: one iteration tells us roughly how expensive the
    // routine is so we can pick an iteration count per sample.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target_sample =
        (measurement_time / (sample_size as u32 * 2)).max(Duration::from_micros(10));
    let iters_per_sample =
        (target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let deadline = Instant::now() + measurement_time;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for s in 0..sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
        if s + 1 < sample_size && Instant::now() > deadline {
            break;
        }
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("  {label:<48} {:>14} ns/iter ({total_iters} iters)", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1000.0 {
        format!("{:.1}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Shim for criterion's `criterion_group!`: collects bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Shim for criterion's `criterion_main!`: generates `main` running each
/// group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_timing_work() {
        benches();
    }

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert!(b.elapsed > Duration::ZERO);
    }
}
