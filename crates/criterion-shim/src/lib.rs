//! Offline stand-in for the subset of the [criterion](https://docs.rs/criterion)
//! 0.5 API that `netfence-bench` uses.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion crate cannot be fetched. This shim keeps every bench target
//! compiling and runnable (`cargo bench` prints a mean-time table) with the
//! same source code, so swapping the workspace dependency back to the real
//! criterion needs no bench changes. It implements:
//!
//! * [`Criterion`], [`Criterion::benchmark_group`];
//! * [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::measurement_time`],
//!   [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::finish`];
//! * [`Criterion::bench_function`];
//! * [`Bencher::iter`];
//! * the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each bench function is warmed up once, then timed over
//! `sample_size` samples (default 10) or until `measurement_time` elapses,
//! whichever comes first; the mean ns/iter is printed. This is deliberately
//! much cheaper than real criterion (no outlier analysis, no HTML reports) —
//! good enough for the relative comparisons the figures need.
//!
//! In addition to the console table, every bench process appends its
//! results to a machine-readable **`BENCH_results.json`** (override the
//! path with the `BENCH_RESULTS_PATH` environment variable): a JSON array
//! of `{"group", "id", "mean_ns", "iters"}` objects, merged by
//! `(group, id)` across bench binaries so one `cargo bench` run leaves one
//! consolidated file for the perf trajectory. [`criterion_main!`] writes
//! the file when the process's groups finish.

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (shim).
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10, default_measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        };
        println!("\n{}", group.name);
        group
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        run_one("", id, sample_size, measurement_time, f);
        self
    }
}

/// A group of related benchmarks sharing sampling settings (shim).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Cap the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, self.measurement_time, f);
        self
    }

    /// End the group (no-op in the shim; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Times the closure handed to [`Bencher::iter`] (shim).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up + calibration: one iteration tells us roughly how expensive the
    // routine is so we can pick an iteration count per sample.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target_sample =
        (measurement_time / (sample_size as u32 * 2)).max(Duration::from_micros(10));
    let iters_per_sample =
        (target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let deadline = Instant::now() + measurement_time;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for s in 0..sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
        if s + 1 < sample_size && Instant::now() > deadline {
            break;
        }
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("  {label:<48} {:>14} ns/iter ({total_iters} iters)", format_ns(mean_ns));
    record_result(BenchResult {
        group: group.to_string(),
        id: id.to_string(),
        mean_ns,
        iters: total_iters,
    });
}

/// One measured benchmark, as written to `BENCH_results.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark group ("" outside any group).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());
    &RESULTS
}

fn record_result(r: BenchResult) {
    results().lock().unwrap().push(r);
}

/// Record an externally measured scalar — e.g. a *simulated* duration such
/// as a defense reaction time, expressed in nanoseconds — as a result row.
/// It is merged into `BENCH_results.json` exactly like a timed benchmark,
/// so derived metrics ride the same file and merge logic as wall-clock
/// measurements. Negative values are conventionally sentinels (e.g.
/// "never recovered").
pub fn record_value(group: &str, id: &str, value_ns: f64, iters: u64) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("  {label:<48} {:>14} ns (recorded)", format_ns(value_ns));
    record_result(BenchResult {
        group: group.to_string(),
        id: id.to_string(),
        mean_ns: value_ns,
        iters,
    });
}

/// Serialize one result as a JSON object (our own fixed format; no serde in
/// the offline workspace).
fn to_json_line(r: &BenchResult) -> String {
    // Group/id are bench-source identifiers; escape the characters that
    // could break the string literal.
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    format!(
        "{{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{:.3},\"iters\":{}}}",
        esc(&r.group),
        esc(&r.id),
        r.mean_ns,
        r.iters
    )
}

/// Parse one line previously written by [`to_json_line`] (used to merge
/// results across bench binaries; unknown lines are ignored).
fn from_json_line(line: &str) -> Option<BenchResult> {
    let line = line.trim().trim_end_matches(',');
    let field = |key: &str| -> Option<String> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        if let Some(stripped) = rest.strip_prefix('"') {
            // Scan to the closing quote, honoring the \" and \\ escapes
            // `to_json_line` produces.
            let mut out = String::new();
            let mut chars = stripped.chars();
            while let Some(c) = chars.next() {
                match c {
                    '"' => return Some(out),
                    '\\' => out.push(chars.next()?),
                    _ => out.push(c),
                }
            }
            None
        } else {
            let end = rest.find([',', '}'])?;
            Some(rest[..end].to_string())
        }
    };
    Some(BenchResult {
        group: field("group")?,
        id: field("id")?,
        mean_ns: field("mean_ns")?.parse().ok()?,
        iters: field("iters")?.parse().ok()?,
    })
}

/// The output path: `$BENCH_RESULTS_PATH` or `BENCH_results.json` in the
/// working directory (the package root under `cargo bench`).
pub fn results_path() -> std::path::PathBuf {
    std::env::var_os("BENCH_RESULTS_PATH")
        .map(Into::into)
        .unwrap_or_else(|| "BENCH_results.json".into())
}

/// Write (merging with any existing file) the results collected by this
/// process to [`results_path`]. Called automatically by
/// [`criterion_main!`]; harmless to call again.
pub fn write_results() {
    write_results_to(&results_path());
}

/// Write (merging with any existing file) the collected results to an
/// explicit path.
pub fn write_results_to(path: &std::path::Path) {
    let mine = results().lock().unwrap().clone();
    if mine.is_empty() {
        return;
    }
    // Merge with results from other bench binaries of the same run, keyed
    // by (group, id): the newest measurement wins.
    let mut merged: Vec<BenchResult> = std::fs::read_to_string(path)
        .map(|text| text.lines().filter_map(from_json_line).collect())
        .unwrap_or_default();
    for r in mine {
        if let Some(slot) = merged.iter_mut().find(|m| m.group == r.group && m.id == r.id) {
            *slot = r;
        } else {
            merged.push(r);
        }
    }
    let mut out = String::from("[\n");
    for (i, r) in merged.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&to_json_line(r));
        out.push_str(if i + 1 < merged.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("\nwrote {} ({} benchmarks)", path.display(), merged.len());
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1000.0 {
        format!("{:.1}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Shim for criterion's `criterion_group!`: collects bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Shim for criterion's `criterion_main!`: generates `main` running each
/// group, then writes `BENCH_results.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_timing_work() {
        benches();
    }

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn json_roundtrip_and_merge() {
        let r = BenchResult {
            group: "fig8".into(),
            id: "NetFence \"quick\"".into(),
            mean_ns: 1234.5,
            iters: 42,
        };
        let line = to_json_line(&r);
        let back = from_json_line(&line).unwrap();
        assert_eq!(back.group, r.group);
        assert_eq!(back.id, r.id);
        assert_eq!(back.iters, 42);
        assert!((back.mean_ns - 1234.5).abs() < 1e-6);
        // Array wrappers and garbage lines are ignored by the parser.
        assert!(from_json_line("[").is_none());
        assert!(from_json_line("]").is_none());
    }

    #[test]
    fn results_file_is_written_and_merged() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        let prior = "[\n  {\"group\":\"old\",\"id\":\"kept\",\"mean_ns\":1.0,\"iters\":1}\n]\n";
        std::fs::write(&path, prior).unwrap();
        record_result(BenchResult { group: "g".into(), id: "new".into(), mean_ns: 2.0, iters: 3 });
        write_results_to(&path);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<BenchResult> = text.lines().filter_map(from_json_line).collect();
        assert!(parsed.iter().any(|r| r.id == "kept"), "prior results survive: {text}");
        assert!(parsed.iter().any(|r| r.id == "new" && r.iters == 3));
        std::fs::remove_dir_all(&dir).ok();
    }
}
