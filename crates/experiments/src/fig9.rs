//! Figure 9: colluding (regular-packet) flooding attacks.
//!
//! Malicious sender–receiver pairs flood regular packets through the
//! bottleneck; 25% of each source AS's hosts are legitimate users sending
//! TCP traffic (long-running in 9a, web-like in 9b) to the victim. The
//! metric is the throughput ratio between the average legitimate user and
//! the average attacker (ideal = 1), plus the Jain fairness index among
//! users and the bottleneck utilization.

use netfence_sim::prelude::*;

use crate::scenario::{build_dumbbell, collect_outcome, make_defense, DefenseKind, Scale};

/// User traffic model of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserTraffic {
    /// Figure 9(a): a single long-running TCP flow per user.
    LongRunning,
    /// Figure 9(b): web-like traffic (Pareto/exponential mixture sizes).
    WebLike,
}

/// One point of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Number of senders represented.
    pub represented_senders: u64,
    /// The defense system.
    pub system: DefenseKind,
    /// User traffic model.
    pub traffic: UserTraffic,
    /// Throughput ratio (avg user / avg attacker).
    pub throughput_ratio: f64,
    /// Jain fairness index among legitimate users.
    pub fairness_index: f64,
    /// Bottleneck utilization.
    pub utilization: f64,
}

/// The Figure 9 sweep (same scaling as Figure 8).
pub const FIG9_SWEEP: [(u64, u64); 4] =
    [(25_000, 400_000), (50_000, 200_000), (100_000, 100_000), (200_000, 50_000)];

/// Run one (system, point) cell of Figure 9.
pub fn run_fig9_cell(
    scale: &Scale,
    system: DefenseKind,
    traffic: UserTraffic,
    represented: u64,
    fair_share: u64,
) -> Fig9Point {
    let bottleneck_bps = fair_share * scale.senders() as u64;
    // 25% legitimate users per AS (at least one), 9 colluder ASes.
    let legit_per_as = (scale.hosts_per_as / 4).max(1);
    let colluders = 9.min(scale.senders() / 4).max(1);
    let d = build_dumbbell(scale, legit_per_as, bottleneck_bps, colluders);
    let defense = make_defense(system, &d, false);
    let mut sim = Simulator::new(
        build_dumbbell(scale, legit_per_as, bottleneck_bps, colluders).net,
        defense,
        SimConfig { end_time: scale.sim_time, seed: scale.seed, ..Default::default() },
    );
    let mut user_flows = Vec::new();
    let mut attacker_flows = Vec::new();
    for (i, &u) in d.users.iter().enumerate() {
        let victim = d.victim;
        let seed = scale.seed ^ (i as u64 + 1);
        let workload = match traffic {
            UserTraffic::LongRunning => TcpWorkload::LongRunning,
            UserTraffic::WebLike => TcpWorkload::WebLike(WebWorkload::default()),
        };
        user_flows.push(sim.add_flow((i as u64 % 20) * 50 * MILLI, |id| {
            Box::new(TcpFlow::new(id, u, victim, workload, TcpConfig::default(), SimRng::new(seed)))
        }));
    }
    for (i, &a) in d.attackers.iter().enumerate() {
        let colluder = d.colluders[i % d.colluders.len()];
        attacker_flows.push(sim.add_flow((i as u64 % 100) * MILLI, |id| {
            Box::new(UdpFlow::cbr(id, a, colluder, 1_000_000))
        }));
    }
    sim.run();
    let outcome = collect_outcome(&sim, &user_flows, &attacker_flows, d.bottleneck, bottleneck_bps);
    Fig9Point {
        represented_senders: represented,
        system,
        traffic,
        throughput_ratio: outcome.throughput_ratio(scale.sim_time),
        fairness_index: outcome.user_fairness(scale.sim_time),
        utilization: outcome.bottleneck_utilization,
    }
}

/// Run the full Figure 9 sweep (one traffic model) for the given systems.
pub fn run_fig9(scale: &Scale, systems: &[DefenseKind], traffic: UserTraffic) -> Vec<Fig9Point> {
    let mut points = Vec::new();
    for &(represented, fair_share) in &FIG9_SWEEP {
        for &system in systems {
            points.push(run_fig9_cell(scale, system, traffic, represented, fair_share));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netfence_throughput_ratio_is_near_one_for_long_running_tcp() {
        let mut scale = Scale::tiny();
        scale.sim_time = 120 * SEC;
        let p = run_fig9_cell(&scale, DefenseKind::NetFence, UserTraffic::LongRunning, 100_000, 100_000);
        assert!(
            p.throughput_ratio > 0.5,
            "NetFence should give users a comparable share, got ratio {}",
            p.throughput_ratio
        );
        assert!(p.fairness_index > 0.6, "fairness {}", p.fairness_index);
        assert!(p.utilization > 0.5, "utilization {}", p.utilization);
    }

    #[test]
    fn no_defense_ratio_is_poor() {
        let mut scale = Scale::tiny();
        scale.sim_time = 60 * SEC;
        let p = run_fig9_cell(&scale, DefenseKind::None, UserTraffic::LongRunning, 100_000, 100_000);
        assert!(
            p.throughput_ratio < 0.5,
            "without defense the attackers should dominate, got {}",
            p.throughput_ratio
        );
    }
}
