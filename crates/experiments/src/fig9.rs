//! Figure 9: colluding (regular-packet) flooding attacks.
//!
//! Malicious sender–receiver pairs flood regular packets through the
//! bottleneck; 25% of each source AS's hosts are legitimate users sending
//! TCP traffic (long-running in 9a, web-like in 9b) to the victim. The
//! metric is the throughput ratio between the average legitimate user and
//! the average attacker (ideal = 1), plus the Jain fairness index among
//! users and the bottleneck utilization.

use netfence_sim::prelude::*;

use crate::prelude::*;

/// User traffic model of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserTraffic {
    /// Figure 9(a): a single long-running TCP flow per user.
    LongRunning,
    /// Figure 9(b): web-like traffic (Pareto/exponential mixture sizes).
    WebLike,
}

impl UserTraffic {
    fn traffic_spec(self) -> TrafficSpec {
        match self {
            UserTraffic::LongRunning => TrafficSpec::LongRunningTcp,
            UserTraffic::WebLike => TrafficSpec::WebLike,
        }
    }
}

/// One point of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Number of senders represented.
    pub represented_senders: u64,
    /// The defense system.
    pub system: DefenseKind,
    /// User traffic model.
    pub traffic: UserTraffic,
    /// Throughput ratio (avg user / avg attacker).
    pub throughput_ratio: f64,
    /// Jain fairness index among legitimate users.
    pub fairness_index: f64,
    /// Bottleneck utilization.
    pub utilization: f64,
}

/// The Figure 9 sweep (same scaling as Figure 8).
pub const FIG9_SWEEP: [(u64, u64); 4] =
    [(25_000, 400_000), (50_000, 200_000), (100_000, 100_000), (200_000, 50_000)];

/// The Figure 9 scenario: 25% legitimate users per AS (at least one), the
/// rest flooding colluding receivers behind the bottleneck.
pub fn fig9_spec(
    scale: &Scale,
    system: DefenseKind,
    traffic: UserTraffic,
    fair_share: u64,
) -> ScenarioSpec {
    let colluders = 9.min(scale.senders() / 4).max(1);
    ScenarioSpec::dumbbell(*scale)
        .named("fig9-colluding-flood")
        .defense(system)
        .fair_share(fair_share)
        .legit_fraction(0.25)
        .users(traffic.traffic_spec())
        .user_start(StartSchedule::staggered(20, 50 * MILLI))
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Colluders { ases: colluders })
        .attacker_start(StartSchedule::staggered(100, MILLI))
}

fn to_point(represented: u64, system: DefenseKind, traffic: UserTraffic, r: &Record) -> Fig9Point {
    Fig9Point {
        represented_senders: represented,
        system,
        traffic,
        throughput_ratio: r.throughput_ratio(),
        fairness_index: r.user_fairness(),
        utilization: r.bottleneck_utilization(),
    }
}

/// Run one (system, point) cell of Figure 9.
pub fn run_fig9_cell(
    scale: &Scale,
    system: DefenseKind,
    traffic: UserTraffic,
    represented: u64,
    fair_share: u64,
) -> Fig9Point {
    let r = Runner::new(fig9_spec(scale, system, traffic, fair_share)).run();
    to_point(represented, system, traffic, &r)
}

/// Run the full Figure 9 sweep (one traffic model) for the given systems
/// (cells in parallel).
pub fn run_fig9(scale: &Scale, systems: &[DefenseKind], traffic: UserTraffic) -> Vec<Fig9Point> {
    SweepGrid::new(systems.to_vec(), FIG9_SWEEP.to_vec())
        .run_auto(|system, &(_, fair_share)| fig9_spec(scale, system, traffic, fair_share))
        .iter()
        .map(|c| to_point(c.point.0, c.system, traffic, &c.record))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netfence_throughput_ratio_is_near_one_for_long_running_tcp() {
        let mut scale = Scale::tiny();
        scale.sim_time = 120 * SEC;
        let p = run_fig9_cell(
            &scale,
            DefenseKind::NetFence,
            UserTraffic::LongRunning,
            100_000,
            100_000,
        );
        assert!(
            p.throughput_ratio > 0.5,
            "NetFence should give users a comparable share, got ratio {}",
            p.throughput_ratio
        );
        assert!(p.fairness_index > 0.6, "fairness {}", p.fairness_index);
        assert!(p.utilization > 0.5, "utilization {}", p.utilization);
    }

    #[test]
    fn no_defense_ratio_is_poor() {
        let mut scale = Scale::tiny();
        scale.sim_time = 60 * SEC;
        let p =
            run_fig9_cell(&scale, DefenseKind::None, UserTraffic::LongRunning, 100_000, 100_000);
        assert!(
            p.throughput_ratio < 0.5,
            "without defense the attackers should dominate, got {}",
            p.throughput_ratio
        );
    }
}
