//! The chaos sweep: defense × fault kind × severity, on the dumbbell and
//! internet topologies.
//!
//! Each cell runs a standard attacked scenario (demand-bounded users,
//! CBR flood) with one deterministic [`FaultPlan`] injected mid-run —
//! link failure, router reboot, key desync, clock skew or memory
//! pressure, at a mild or severe dose — and folds the record's fault
//! metrics into a [`ChaosOutcome`]: the worst-case time back to a
//! sustained 90% of pre-fault goodput ([`Record::worst_fault_recovery_secs`])
//! and the availability fraction under the fault
//! ([`Record::availability`]). NetFence runs with a key TTL so its
//! routers keep re-announcing keys — the refresh traffic a rebooted or
//! desynced router recovers through; defenses that keep no distributed
//! state (FQ) calibrate the pure data-path recovery floor.

use netfence_ctrl::prelude::*;
use netfence_faults::{FaultPlan, FaultTarget};
use netfence_sim::prelude::*;

use crate::prelude::*;

/// When the fault hits: late enough that users, attackers and the defense
/// have all reached steady state, so a clean pre-fault baseline exists.
pub const FAULT_AT: Nanos = 10 * SEC;

/// The key TTL every NetFence chaos cell runs with — the re-announcement
/// cadence (TTL/2) bounds how long a rebooted router waits for the key
/// table it re-bootstraps from.
pub const KEY_TTL: Nanos = 4 * SEC;

/// Which topology a chaos cell runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosTopology {
    /// The paper's dumbbell.
    Dumbbell,
    /// The generated transit-stub internet.
    Internet,
}

impl ChaosTopology {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosTopology::Dumbbell => "dumbbell",
            ChaosTopology::Internet => "internet",
        }
    }
}

/// The fault families the sweep injects (parameter-free names; the dose
/// comes from [`Severity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosFault {
    /// An inter-router link goes dark, both directions.
    LinkFailure,
    /// A router loses all volatile defense state.
    RouterReboot,
    /// A router's time-varying secret rotates out from under held stamps.
    KeyDesync,
    /// A router's protocol clock runs off engine time.
    ClockSkew,
    /// A forced eviction burst in a router's policy store.
    MemoryPressure,
}

impl ChaosFault {
    /// Every fault family.
    pub const ALL: [ChaosFault; 5] = [
        ChaosFault::LinkFailure,
        ChaosFault::RouterReboot,
        ChaosFault::KeyDesync,
        ChaosFault::ClockSkew,
        ChaosFault::MemoryPressure,
    ];

    /// Display label (matches the fault plan's telemetry labels).
    pub fn label(&self) -> &'static str {
        match self {
            ChaosFault::LinkFailure => "link-failure",
            ChaosFault::RouterReboot => "reboot",
            ChaosFault::KeyDesync => "key-desync",
            ChaosFault::ClockSkew => "clock-skew",
            ChaosFault::MemoryPressure => "memory-pressure",
        }
    }
}

/// How hard the fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A single short event.
    Mild,
    /// Longer outages / repeated hits / larger doses.
    Severe,
}

impl Severity {
    /// Both doses.
    pub const ALL: [Severity; 2] = [Severity::Mild, Severity::Severe];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Mild => "mild",
            Severity::Severe => "severe",
        }
    }
}

/// One sweep point: where, what, how hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChaosPoint {
    /// The topology the cell runs on.
    pub topology: ChaosTopology,
    /// The fault family injected.
    pub fault: ChaosFault,
    /// The dose.
    pub severity: Severity,
}

/// The deterministic fault plan of one `(fault, severity)` dose. Targets
/// are [`FaultTarget::Random`]: seeded by the scenario, drawn from the
/// dedicated fault substream, valid on any topology with routers.
pub fn chaos_plan(fault: ChaosFault, severity: Severity) -> FaultPlan {
    let mut p = FaultPlan::empty();
    let t = FaultTarget::Random;
    match (fault, severity) {
        (ChaosFault::LinkFailure, Severity::Mild) => {
            p.link_failure(t, FAULT_AT, FAULT_AT + 2 * SEC);
        }
        (ChaosFault::LinkFailure, Severity::Severe) => {
            p.link_failure(t, FAULT_AT, FAULT_AT + 8 * SEC);
        }
        (ChaosFault::RouterReboot, Severity::Mild) => {
            p.router_reboot(t, FAULT_AT);
        }
        (ChaosFault::RouterReboot, Severity::Severe) => {
            p.router_reboot(t, FAULT_AT).router_reboot(t, FAULT_AT + 4 * SEC);
        }
        (ChaosFault::KeyDesync, Severity::Mild) => {
            p.key_desync(t, FAULT_AT);
        }
        (ChaosFault::KeyDesync, Severity::Severe) => {
            p.key_desync(t, FAULT_AT)
                .key_desync(t, FAULT_AT + 2 * SEC)
                .key_desync(t, FAULT_AT + 4 * SEC);
        }
        (ChaosFault::ClockSkew, Severity::Mild) => {
            p.clock_skew(t, 100 * MILLI as i64, FAULT_AT, FAULT_AT + 4 * SEC);
        }
        (ChaosFault::ClockSkew, Severity::Severe) => {
            p.clock_skew(t, 5 * SEC as i64, FAULT_AT, FAULT_AT + 8 * SEC);
        }
        (ChaosFault::MemoryPressure, Severity::Mild) => {
            p.memory_pressure(t, 4, FAULT_AT);
        }
        (ChaosFault::MemoryPressure, Severity::Severe) => {
            p.memory_pressure(t, 10_000, FAULT_AT);
        }
    }
    p
}

/// The chaos scenario: demand-bounded users (50 kbps each, flat baseline),
/// the remaining hosts 1 Mbps CBR attackers from the start, the defense at
/// a 100 kbps per-sender fair share, the point's fault plan injected at
/// [`FAULT_AT`], goodput sampled every second. NetFence keys carry
/// [`KEY_TTL`] and all control messages ride the asynchronous (ideal)
/// control-plane transport — the channel a rebooted router re-bootstraps
/// through.
pub fn chaos_spec(scale: &Scale, system: DefenseKind, point: &ChaosPoint) -> ScenarioSpec {
    let base = match point.topology {
        ChaosTopology::Dumbbell => ScenarioSpec::dumbbell(*scale),
        ChaosTopology::Internet => ScenarioSpec::internet(*scale, InternetShape::default()),
    };
    base.named(format!(
        "chaos-{}-{}-{}",
        point.topology.label(),
        point.fault.label(),
        point.severity.label()
    ))
    .defense(system)
    .key_ttl(KEY_TTL)
    .fair_share(100_000)
    .legit_per_as(1)
    .users(TrafficSpec::cbr(50_000))
    .user_start(StartSchedule::staggered(10, 100 * MILLI))
    .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Victim)
    .control(CtrlConfig::ideal())
    .fault_plan(chaos_plan(point.fault, point.severity))
    .sampled(SEC)
}

/// One measured cell of the chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The defense system.
    pub system: DefenseKind,
    /// Where, what, how hard.
    pub point: ChaosPoint,
    /// Worst-case recovery across the plan's fault windows, seconds
    /// (censored at the end of the run when a window never recovers).
    pub worst_recovery_secs: Option<f64>,
    /// Fraction of post-fault sample windows holding ≥ 90% of the
    /// pre-fault goodput baseline.
    pub availability: Option<f64>,
    /// Average legitimate-user goodput over the whole run, bits/second.
    pub avg_user_bps: f64,
    /// Average attacker goodput over the whole run, bits/second.
    pub avg_attacker_bps: f64,
}

/// The systems the sweep compares (all four deployed defenses).
pub const SYSTEMS: [DefenseKind; 4] = DefenseKind::ALL;

/// The full point grid: both topologies × every fault × both severities.
pub fn default_points() -> Vec<ChaosPoint> {
    let mut v = Vec::new();
    for topology in [ChaosTopology::Dumbbell, ChaosTopology::Internet] {
        for fault in ChaosFault::ALL {
            for severity in Severity::ALL {
                v.push(ChaosPoint { topology, fault, severity });
            }
        }
    }
    v
}

/// A short smoke grid (CI): dumbbell only, mild doses only.
pub fn quick_points() -> Vec<ChaosPoint> {
    ChaosFault::ALL
        .iter()
        .map(|&fault| ChaosPoint {
            topology: ChaosTopology::Dumbbell,
            fault,
            severity: Severity::Mild,
        })
        .collect()
}

fn to_outcome(system: DefenseKind, point: ChaosPoint, r: &Record) -> ChaosOutcome {
    ChaosOutcome {
        system,
        point,
        worst_recovery_secs: r.worst_fault_recovery_secs(),
        availability: r.availability(),
        avg_user_bps: r.avg_user_bps(),
        avg_attacker_bps: r.avg_attacker_bps(),
    }
}

/// Run one (system × point) cell.
pub fn run_chaos_cell(scale: &Scale, system: DefenseKind, point: ChaosPoint) -> ChaosOutcome {
    let r = Runner::new(chaos_spec(scale, system, &point)).run();
    to_outcome(system, point, &r)
}

/// Run a chaos sweep (cells in parallel; point-major order).
pub fn run_chaos_sweep(
    scale: &Scale,
    systems: &[DefenseKind],
    points: &[ChaosPoint],
) -> Vec<ChaosOutcome> {
    SweepGrid::new(systems.to_vec(), points.to_vec())
        .run_auto(|system, p| chaos_spec(scale, system, p))
        .iter()
        .map(|c| to_outcome(c.system, c.point, &c.record))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { src_ases: 3, hosts_per_as: 3, sim_time: 25 * SEC, seed: 7 }
    }

    #[test]
    fn chaos_records_carry_their_fault_windows() {
        let point = ChaosPoint {
            topology: ChaosTopology::Dumbbell,
            fault: ChaosFault::LinkFailure,
            severity: Severity::Mild,
        };
        let r = Runner::new(chaos_spec(&tiny(), DefenseKind::Fq, &point)).run();
        assert_eq!(r.faults.len(), 1);
        assert_eq!(r.faults[0].kind, "link-failure");
        assert_eq!(r.faults[0].at, FAULT_AT);
        assert_eq!(r.faults[0].clear_at, FAULT_AT + 2 * SEC);
        assert!(r.worst_fault_recovery_secs().is_some());
        assert!(r.availability().is_some());
    }

    #[test]
    fn every_fault_dose_compiles_into_a_nonempty_plan() {
        for fault in ChaosFault::ALL {
            for severity in Severity::ALL {
                let plan = chaos_plan(fault, severity);
                assert!(!plan.is_empty(), "{}-{} plan is empty", fault.label(), severity.label());
            }
        }
    }

    #[test]
    fn a_mild_reboot_cell_runs_on_every_defense() {
        let point = ChaosPoint {
            topology: ChaosTopology::Dumbbell,
            fault: ChaosFault::RouterReboot,
            severity: Severity::Mild,
        };
        for system in SYSTEMS {
            let out = run_chaos_cell(&tiny(), system, point);
            assert!(out.avg_user_bps >= 0.0, "{} cell ran", system.label());
            assert!(out.worst_recovery_secs.is_some());
        }
    }
}
